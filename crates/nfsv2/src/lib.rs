//! NFSv2 + MOUNT: protocol types, a generic user-level server loop, a
//! typed client, and a plain export of the `ffs` volume.
//!
//! The paper's prototype is "a modified user-level NFS server" (§1);
//! this crate supplies the unmodified parts of that stack so `cfs` and
//! `discfs` can layer their behavior on the same protocol plumbing:
//!
//! * [`proto`] — RFC 1094 wire types, including the 32-byte file handle
//!   carrying `(fsid, inode, generation)`.
//! * [`NfsService`] — the dispatch trait servers implement.
//! * [`server`] — the per-connection RPC loop over any
//!   [`ipsec::SecureTransport`] (plain or IPsec).
//! * [`engine`] — the event-driven request engine multiplexing
//!   thousands of connections onto a fixed worker pool.
//! * [`NfsClient`] / [`RemoteFs`] — typed stubs and path helpers used
//!   by examples and the Bonnie benchmarks as the "mounted" filesystem
//!   (no kernel VFS exists in a pure-userspace reproduction).
//! * [`FfsService`] — the plain export backing the baselines.
//!
//! # Example: full client/server round trip
//!
//! ```
//! use std::sync::Arc;
//! use ffs::{Ffs, FsConfig};
//! use ipsec::PlainChannel;
//! use netsim::{Link, SimClock};
//! use nfsv2::{FfsService, NfsClient, RemoteFs};
//!
//! let clock = SimClock::new();
//! let (client_end, server_end) = Link::loopback(&clock);
//! let fs = Arc::new(Ffs::format_in_memory(FsConfig::small()));
//! let service = Arc::new(FfsService::new(fs, 1));
//! nfsv2::server::spawn(service, Box::new(PlainChannel::new(server_end)));
//!
//! let client = NfsClient::new(Box::new(PlainChannel::new(client_end)));
//! let remote = RemoteFs::mount(client, "/").unwrap();
//! remote.write_file("hello.txt", b"over the wire").unwrap();
//! assert_eq!(remote.read_file("hello.txt").unwrap(), b"over the wire");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod engine;
mod ffs_service;
pub mod proto;
pub mod server;
mod service;

pub use client::{ClientError, NfsClient, RemoteFs};
pub use engine::{Engine, EngineConfig, EngineStats};
pub use ffs_service::FfsService;
pub use proto::{
    DirOpArgs, FHandle, FType, Fattr, NfsStat, ReaddirEntry, Sattr, StatfsRes, TimeVal, MAX_DATA,
    MOUNT_PROGRAM, NFS_PROGRAM,
};
pub use service::{NfsService, RequestCtx};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use discfs_crypto::ed25519::SigningKey;
    use discfs_crypto::rng::DetRng;
    use ffs::{Ffs, FsConfig};
    use ipsec::PlainChannel;
    use netsim::{Link, SimClock};

    use crate::proto::{FHandle, NfsStat, Sattr};
    use crate::{ClientError, FfsService, NfsClient, RemoteFs};

    fn setup() -> (RemoteFs, Arc<FfsService>) {
        let clock = SimClock::new();
        let (client_end, server_end) = Link::loopback(&clock);
        let fs = Arc::new(Ffs::format_in_memory(FsConfig::small()));
        let service = Arc::new(FfsService::new(fs, 1));
        crate::server::spawn(service.clone(), Box::new(PlainChannel::new(server_end)));
        let client = NfsClient::new(Box::new(PlainChannel::new(client_end)));
        (RemoteFs::mount(client, "/").unwrap(), service)
    }

    #[test]
    fn mount_and_null() {
        let (remote, _) = setup();
        remote.client().null().unwrap();
        let attr = remote.client().getattr(&remote.root()).unwrap();
        assert_eq!(attr.fileid, 1);
    }

    #[test]
    fn create_write_read() {
        let (remote, _) = setup();
        let (fh, attr) = remote
            .client()
            .create(&remote.root(), "f.txt", &Sattr::with_mode(0o640))
            .unwrap();
        assert_eq!(attr.mode & 0o777, 0o640);
        remote.client().write(&fh, 0, b"abc").unwrap();
        let (attr, data) = remote.client().read(&fh, 0, 100).unwrap();
        assert_eq!(data, b"abc");
        assert_eq!(attr.size, 3);
    }

    #[test]
    fn large_transfer_chunks_at_8k() {
        let (remote, _) = setup();
        let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        remote.write_file("big.bin", &payload).unwrap();
        assert_eq!(remote.read_file("big.bin").unwrap(), payload);
    }

    #[test]
    fn lookup_missing_is_noent() {
        let (remote, _) = setup();
        match remote.client().lookup(&remote.root(), "ghost") {
            Err(ClientError::Status(NfsStat::NoEnt)) => {}
            other => panic!("expected NoEnt, got {other:?}"),
        }
    }

    #[test]
    fn mkdir_and_nested_resolve() {
        let (remote, _) = setup();
        remote.mkdir_path("a").unwrap();
        remote.mkdir_path("a/b").unwrap();
        remote.write_file("a/b/c.txt", b"deep").unwrap();
        assert_eq!(remote.read_file("a/b/c.txt").unwrap(), b"deep");
        let (_, attr) = remote.resolve("a/b").unwrap();
        assert_eq!(attr.ftype, crate::proto::FType::Directory);
    }

    #[test]
    fn readdir_pagination() {
        let (remote, _) = setup();
        for i in 0..40 {
            remote
                .client()
                .create(
                    &remote.root(),
                    &format!("f{i:02}"),
                    &Sattr::with_mode(0o644),
                )
                .unwrap();
        }
        // Small count forces multiple READDIR round trips.
        let (first_page, eof) = remote.client().readdir(&remote.root(), 0, 200).unwrap();
        assert!(!eof);
        assert!(!first_page.is_empty() && first_page.len() < 42);
        let all = remote.client().readdir_all(&remote.root()).unwrap();
        assert_eq!(all.len(), 42); // 40 files + . + ..
    }

    #[test]
    fn rename_remove() {
        let (remote, _) = setup();
        remote.write_file("old", b"x").unwrap();
        remote
            .client()
            .rename(&remote.root(), "old", &remote.root(), "new")
            .unwrap();
        assert!(remote.read_file("new").is_ok());
        remote.client().remove(&remote.root(), "new").unwrap();
        assert!(matches!(
            remote.read_file("new"),
            Err(ClientError::Status(NfsStat::NoEnt))
        ));
    }

    #[test]
    fn symlink_readlink() {
        let (remote, _) = setup();
        remote
            .client()
            .symlink(&remote.root(), "ln", "/target/path", &Sattr::unchanged())
            .unwrap();
        let (fh, _) = remote.resolve("ln").unwrap();
        assert_eq!(remote.client().readlink(&fh).unwrap(), "/target/path");
    }

    #[test]
    fn hard_link_via_protocol() {
        let (remote, _) = setup();
        let fh = remote.write_file("orig", b"data").unwrap();
        remote.client().link(&fh, &remote.root(), "alias").unwrap();
        assert_eq!(remote.read_file("alias").unwrap(), b"data");
        let attr = remote.client().getattr(&fh).unwrap();
        assert_eq!(attr.nlink, 2);
    }

    #[test]
    fn setattr_truncate() {
        let (remote, _) = setup();
        let fh = remote.write_file("f", b"0123456789").unwrap();
        let mut sattr = Sattr::unchanged();
        sattr.size = 4;
        let attr = remote.client().setattr(&fh, &sattr).unwrap();
        assert_eq!(attr.size, 4);
        assert_eq!(remote.read_file("f").unwrap(), b"0123");
    }

    #[test]
    fn statfs_sane() {
        let (remote, _) = setup();
        let info = remote.client().statfs(&remote.root()).unwrap();
        assert_eq!(info.bsize, 8192);
        assert!(info.bfree <= info.blocks);
    }

    #[test]
    fn stale_handle_detected_across_wire() {
        let (remote, _) = setup();
        let fh = remote.write_file("f", b"x").unwrap();
        remote.client().remove(&remote.root(), "f").unwrap();
        match remote.client().getattr(&fh) {
            Err(ClientError::Status(NfsStat::Stale)) => {}
            other => panic!("expected Stale, got {other:?}"),
        }
    }

    #[test]
    fn bogus_handle_rejected() {
        let (remote, _) = setup();
        let bogus = FHandle::pack(99, 12345, 7);
        assert!(matches!(
            remote.client().getattr(&bogus),
            Err(ClientError::Status(NfsStat::Stale))
        ));
    }

    #[test]
    fn mount_nonexistent_export_fails() {
        let clock = SimClock::new();
        let (client_end, server_end) = Link::loopback(&clock);
        let fs = Arc::new(Ffs::format_in_memory(FsConfig::small()));
        let service = Arc::new(FfsService::new(fs, 1));
        crate::server::spawn(service, Box::new(PlainChannel::new(server_end)));
        let client = NfsClient::new(Box::new(PlainChannel::new(client_end)));
        assert!(matches!(
            client.mount("/no/such/dir"),
            Err(ClientError::Status(NfsStat::NoEnt))
        ));
    }

    #[test]
    fn works_over_ipsec_channel() {
        let clock = SimClock::new();
        let (client_end, server_end) = Link::loopback(&clock);
        let fs = Arc::new(Ffs::format_in_memory(FsConfig::small()));
        let service = Arc::new(FfsService::new(fs, 1));
        let server_key = SigningKey::from_seed(&[2; 32]);
        std::thread::spawn(move || {
            let mut rng = DetRng::new(22);
            let chan = ipsec::ike::respond(server_end, &server_key, &mut rng).unwrap();
            crate::server::serve_connection(service, Box::new(chan));
        });
        let client_key = SigningKey::from_seed(&[1; 32]);
        let mut rng = DetRng::new(11);
        let chan = ipsec::ike::initiate(client_end, &client_key, None, &mut rng).unwrap();
        let client = NfsClient::new(Box::new(chan));
        let remote = RemoteFs::mount(client, "/").unwrap();
        remote.write_file("secure.txt", b"over ipsec").unwrap();
        assert_eq!(remote.read_file("secure.txt").unwrap(), b"over ipsec");
    }
}
