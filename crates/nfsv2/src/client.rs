//! The NFSv2 client library.
//!
//! The paper's client was the OpenBSD kernel NFS client plus the
//! modified CFS `cattach` utility. In this reproduction [`NfsClient`]
//! provides typed stubs for every NFSv2/MOUNT procedure over a
//! [`SecureTransport`], and [`RemoteFs`] offers path-level helpers
//! (resolve/read/write whole files) that examples and benchmarks use as
//! their "mounted filesystem".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use bytes::Bytes;
use ipsec::{IpsecError, SecureTransport};
use netsim::NetError;
use onc_rpc::frame::{self, FrameDecoder};
use onc_rpc::{AcceptStat, AuthSys, Decoder, Encoder, ReplyBody, RpcCall, RpcReply, XdrError};

use crate::proto::{
    proc_mount, proc_nfs, DirOpArgs, FHandle, Fattr, NfsStat, ReaddirEntry, Sattr, StatfsRes,
    MAX_DATA, MOUNT_PROGRAM, MOUNT_VERSION, NFS_PROGRAM, NFS_VERSION,
};

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Transport failure.
    Net(IpsecError),
    /// Reply failed to decode.
    Xdr(XdrError),
    /// Server accepted the call but reported an RPC-level error.
    Rpc(AcceptStat),
    /// Server denied the call.
    Denied,
    /// The NFS procedure returned a non-OK status.
    Status(NfsStat),
    /// Reply transaction id did not match the call.
    XidMismatch,
}

impl From<IpsecError> for ClientError {
    fn from(e: IpsecError) -> Self {
        ClientError::Net(e)
    }
}

impl From<XdrError> for ClientError {
    fn from(e: XdrError) -> Self {
        ClientError::Xdr(e)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Net(e) => write!(f, "transport: {e}"),
            ClientError::Xdr(e) => write!(f, "reply decode: {e}"),
            ClientError::Rpc(s) => write!(f, "rpc error: {s:?}"),
            ClientError::Denied => write!(f, "rpc denied"),
            ClientError::Status(s) => write!(f, "nfs status: {s}"),
            ClientError::XidMismatch => write!(f, "reply xid mismatch"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Reply-side state: the incremental frame decoder plus replies that
/// arrived for transactions nobody has collected yet (pipelining means
/// replies can land out of order relative to who asks first).
#[derive(Default)]
struct Inbox {
    decoder: FrameDecoder,
    pending: HashMap<u32, Result<Vec<u8>, ClientError>>,
}

impl Inbox {
    /// Decodes every frame of one received message into `pending`.
    fn absorb(&mut self, msg: Vec<u8>) -> Result<(), ClientError> {
        self.decoder
            .feed(Bytes::from(msg))
            .map_err(|_| ClientError::Xdr(XdrError::BadValue))?;
        while let Some(bytes) = self.decoder.pop_frame() {
            let reply = RpcReply::decode(&bytes)?;
            let outcome = match reply.body {
                ReplyBody::Success(results) => Ok(results),
                ReplyBody::Error(stat) => Err(ClientError::Rpc(stat)),
                ReplyBody::Denied(_) => Err(ClientError::Denied),
            };
            self.pending.insert(reply.xid, outcome);
        }
        Ok(())
    }
}

/// A typed NFSv2 client over one connection.
///
/// Calls are framed ([`onc_rpc::frame`]) so a server batch can answer
/// many of them in one transport message. Besides the synchronous
/// [`NfsClient::call_raw`] path, the client supports *pipelining*:
/// [`NfsClient::send_call`] issues a request without waiting, and
/// [`NfsClient::try_take_reply`] / [`NfsClient::wait_reply`] collect
/// replies by transaction id — the fleet bench drives thousands of
/// virtual clients this way from one thread.
pub struct NfsClient {
    chan: Box<dyn SecureTransport>,
    xid: AtomicU32,
    auth: Option<AuthSys>,
    inbox: Mutex<Inbox>,
}

impl NfsClient {
    /// Wraps a transport (plain for CFS-NE, IPsec for DisCFS).
    pub fn new(chan: Box<dyn SecureTransport>) -> NfsClient {
        NfsClient {
            chan,
            xid: AtomicU32::new(1),
            auth: None,
            inbox: Mutex::new(Inbox::default()),
        }
    }

    /// Attaches `AUTH_SYS` credentials to subsequent calls.
    pub fn set_auth(&mut self, auth: AuthSys) {
        self.auth = Some(auth);
    }

    /// Sends a call without waiting for its reply, returning the
    /// transaction id to collect it with.
    ///
    /// # Errors
    ///
    /// [`ClientError::Net`] on transport failure.
    pub fn send_call(
        &self,
        prog: u32,
        vers: u32,
        proc_num: u32,
        args: Vec<u8>,
    ) -> Result<u32, ClientError> {
        let xid = self.xid.fetch_add(1, Ordering::Relaxed);
        let mut call = RpcCall::new(xid, prog, vers, proc_num, args);
        if let Some(auth) = &self.auth {
            call.cred = auth.to_opaque();
        }
        self.chan.send(frame::encode_frame(&call.encode()))?;
        Ok(xid)
    }

    /// Collects the reply to `xid` if it has arrived, draining whatever
    /// the transport has ready without blocking.
    ///
    /// # Errors
    ///
    /// Transport/decode failures, or the reply's own error outcome.
    pub fn try_take_reply(&self, xid: u32) -> Result<Option<Vec<u8>>, ClientError> {
        let mut inbox = self.inbox.lock().expect("inbox poisoned");
        loop {
            if let Some(outcome) = inbox.pending.remove(&xid) {
                return outcome.map(Some);
            }
            match self.chan.try_recv()? {
                Some(msg) => inbox.absorb(msg)?,
                None => return Ok(None),
            }
        }
    }

    /// Blocks until the reply to `xid` arrives and returns it.
    ///
    /// # Errors
    ///
    /// Transport/decode failures, or the reply's own error outcome.
    pub fn wait_reply(&self, xid: u32) -> Result<Vec<u8>, ClientError> {
        let mut inbox = self.inbox.lock().expect("inbox poisoned");
        loop {
            if let Some(outcome) = inbox.pending.remove(&xid) {
                return outcome;
            }
            let msg = self.chan.recv()?;
            inbox.absorb(msg)?;
        }
    }

    /// Number of requests sent whose replies have not been collected.
    pub fn replies_pending(&self) -> usize {
        self.inbox.lock().expect("inbox poisoned").pending.len()
    }

    /// Whether the transport still has a live peer (probes without
    /// consuming data beyond buffering it in the inbox).
    pub fn peer_alive(&self) -> bool {
        let mut inbox = self.inbox.lock().expect("inbox poisoned");
        loop {
            match self.chan.try_recv() {
                Ok(Some(msg)) => {
                    if inbox.absorb(msg).is_err() {
                        return false;
                    }
                }
                Ok(None) => return true,
                Err(IpsecError::Net(NetError::Disconnected)) => return false,
                Err(_) => return false,
            }
        }
    }

    /// Issues a raw RPC and returns the result bytes.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] except `Status` (status handling is the
    /// typed stubs' job).
    pub fn call_raw(
        &self,
        prog: u32,
        vers: u32,
        proc_num: u32,
        args: Vec<u8>,
    ) -> Result<Vec<u8>, ClientError> {
        let xid = self.send_call(prog, vers, proc_num, args)?;
        self.wait_reply(xid)
    }

    fn call_nfs(&self, proc_num: u32, args: Vec<u8>) -> Result<Vec<u8>, ClientError> {
        self.call_raw(NFS_PROGRAM, NFS_VERSION, proc_num, args)
    }

    /// Decodes `stat` and returns the remaining decoder on success.
    fn status<'a>(&self, results: &'a [u8]) -> Result<Decoder<'a>, ClientError> {
        let mut d = Decoder::new(results);
        let stat = NfsStat::from_u32(d.get_u32()?)?;
        if stat != NfsStat::Ok {
            return Err(ClientError::Status(stat));
        }
        Ok(d)
    }

    /// MOUNT MNT: obtain the root handle for an export path.
    pub fn mount(&self, path: &str) -> Result<FHandle, ClientError> {
        let mut e = Encoder::new();
        e.put_string(path);
        let results = self.call_raw(MOUNT_PROGRAM, MOUNT_VERSION, proc_mount::MNT, e.finish())?;
        let mut d = Decoder::new(&results);
        let stat = d.get_u32()?;
        if stat != 0 {
            return Err(ClientError::Status(NfsStat::from_u32(stat)?));
        }
        let bytes = d.get_opaque_fixed(32)?;
        Ok(FHandle(bytes.try_into().expect("32 bytes")))
    }

    /// NULL: protocol ping.
    pub fn null(&self) -> Result<(), ClientError> {
        self.call_nfs(proc_nfs::NULL, Vec::new()).map(|_| ())
    }

    /// GETATTR.
    pub fn getattr(&self, fh: &FHandle) -> Result<Fattr, ClientError> {
        let mut e = Encoder::new();
        e.put_opaque_fixed(&fh.0);
        let results = self.call_nfs(proc_nfs::GETATTR, e.finish())?;
        let mut d = self.status(&results)?;
        Ok(Fattr::decode(&mut d)?)
    }

    /// SETATTR.
    pub fn setattr(&self, fh: &FHandle, sattr: &Sattr) -> Result<Fattr, ClientError> {
        let mut e = Encoder::new();
        e.put_opaque_fixed(&fh.0);
        sattr.encode(&mut e);
        let results = self.call_nfs(proc_nfs::SETATTR, e.finish())?;
        let mut d = self.status(&results)?;
        Ok(Fattr::decode(&mut d)?)
    }

    /// LOOKUP.
    pub fn lookup(&self, dir: &FHandle, name: &str) -> Result<(FHandle, Fattr), ClientError> {
        let mut e = Encoder::new();
        DirOpArgs {
            dir: *dir,
            name: name.to_string(),
        }
        .encode(&mut e);
        let results = self.call_nfs(proc_nfs::LOOKUP, e.finish())?;
        let mut d = self.status(&results)?;
        let fh = FHandle(d.get_opaque_fixed(32)?.try_into().expect("32-byte handle"));
        Ok((fh, Fattr::decode(&mut d)?))
    }

    /// READLINK.
    pub fn readlink(&self, fh: &FHandle) -> Result<String, ClientError> {
        let mut e = Encoder::new();
        e.put_opaque_fixed(&fh.0);
        let results = self.call_nfs(proc_nfs::READLINK, e.finish())?;
        let mut d = self.status(&results)?;
        Ok(d.get_string()?)
    }

    /// READ (single call; at most [`MAX_DATA`] bytes).
    pub fn read(
        &self,
        fh: &FHandle,
        offset: u32,
        count: u32,
    ) -> Result<(Fattr, Vec<u8>), ClientError> {
        let mut e = Encoder::new();
        e.put_opaque_fixed(&fh.0);
        e.put_u32(offset);
        e.put_u32(count);
        e.put_u32(count); // totalcount (unused)
        let results = self.call_nfs(proc_nfs::READ, e.finish())?;
        let mut d = self.status(&results)?;
        let attr = Fattr::decode(&mut d)?;
        Ok((attr, d.get_opaque()?))
    }

    /// WRITE (single call; at most [`MAX_DATA`] bytes).
    pub fn write(&self, fh: &FHandle, offset: u32, data: &[u8]) -> Result<Fattr, ClientError> {
        debug_assert!(data.len() <= MAX_DATA);
        let mut e = Encoder::new();
        e.put_opaque_fixed(&fh.0);
        e.put_u32(0); // beginoffset (unused)
        e.put_u32(offset);
        e.put_u32(data.len() as u32); // totalcount (unused)
        e.put_opaque(data);
        let results = self.call_nfs(proc_nfs::WRITE, e.finish())?;
        let mut d = self.status(&results)?;
        Ok(Fattr::decode(&mut d)?)
    }

    /// CREATE.
    pub fn create(
        &self,
        dir: &FHandle,
        name: &str,
        sattr: &Sattr,
    ) -> Result<(FHandle, Fattr), ClientError> {
        self.diropres_call(proc_nfs::CREATE, dir, name, sattr)
    }

    /// MKDIR.
    pub fn mkdir(
        &self,
        dir: &FHandle,
        name: &str,
        sattr: &Sattr,
    ) -> Result<(FHandle, Fattr), ClientError> {
        self.diropres_call(proc_nfs::MKDIR, dir, name, sattr)
    }

    fn diropres_call(
        &self,
        proc_num: u32,
        dir: &FHandle,
        name: &str,
        sattr: &Sattr,
    ) -> Result<(FHandle, Fattr), ClientError> {
        let mut e = Encoder::new();
        DirOpArgs {
            dir: *dir,
            name: name.to_string(),
        }
        .encode(&mut e);
        sattr.encode(&mut e);
        let results = self.call_nfs(proc_num, e.finish())?;
        let mut d = self.status(&results)?;
        let fh = FHandle(d.get_opaque_fixed(32)?.try_into().expect("32-byte handle"));
        Ok((fh, Fattr::decode(&mut d)?))
    }

    /// REMOVE.
    pub fn remove(&self, dir: &FHandle, name: &str) -> Result<(), ClientError> {
        self.name_only_call(proc_nfs::REMOVE, dir, name)
    }

    /// RMDIR.
    pub fn rmdir(&self, dir: &FHandle, name: &str) -> Result<(), ClientError> {
        self.name_only_call(proc_nfs::RMDIR, dir, name)
    }

    fn name_only_call(&self, proc_num: u32, dir: &FHandle, name: &str) -> Result<(), ClientError> {
        let mut e = Encoder::new();
        DirOpArgs {
            dir: *dir,
            name: name.to_string(),
        }
        .encode(&mut e);
        let results = self.call_nfs(proc_num, e.finish())?;
        self.status(&results)?;
        Ok(())
    }

    /// RENAME.
    pub fn rename(
        &self,
        from_dir: &FHandle,
        from_name: &str,
        to_dir: &FHandle,
        to_name: &str,
    ) -> Result<(), ClientError> {
        let mut e = Encoder::new();
        DirOpArgs {
            dir: *from_dir,
            name: from_name.to_string(),
        }
        .encode(&mut e);
        DirOpArgs {
            dir: *to_dir,
            name: to_name.to_string(),
        }
        .encode(&mut e);
        let results = self.call_nfs(proc_nfs::RENAME, e.finish())?;
        self.status(&results)?;
        Ok(())
    }

    /// LINK.
    pub fn link(&self, from: &FHandle, to_dir: &FHandle, to_name: &str) -> Result<(), ClientError> {
        let mut e = Encoder::new();
        e.put_opaque_fixed(&from.0);
        DirOpArgs {
            dir: *to_dir,
            name: to_name.to_string(),
        }
        .encode(&mut e);
        let results = self.call_nfs(proc_nfs::LINK, e.finish())?;
        self.status(&results)?;
        Ok(())
    }

    /// SYMLINK.
    pub fn symlink(
        &self,
        dir: &FHandle,
        name: &str,
        target: &str,
        sattr: &Sattr,
    ) -> Result<(), ClientError> {
        let mut e = Encoder::new();
        DirOpArgs {
            dir: *dir,
            name: name.to_string(),
        }
        .encode(&mut e);
        e.put_string(target);
        sattr.encode(&mut e);
        let results = self.call_nfs(proc_nfs::SYMLINK, e.finish())?;
        self.status(&results)?;
        Ok(())
    }

    /// One READDIR call from `cookie`.
    pub fn readdir(
        &self,
        fh: &FHandle,
        cookie: u32,
        count: u32,
    ) -> Result<(Vec<ReaddirEntry>, bool), ClientError> {
        let mut e = Encoder::new();
        e.put_opaque_fixed(&fh.0);
        e.put_u32(cookie);
        e.put_u32(count);
        let results = self.call_nfs(proc_nfs::READDIR, e.finish())?;
        let mut d = self.status(&results)?;
        let mut entries = Vec::new();
        while d.get_bool()? {
            entries.push(ReaddirEntry {
                fileid: d.get_u32()?,
                name: d.get_string()?,
                cookie: d.get_u32()?,
            });
        }
        let eof = d.get_bool()?;
        Ok((entries, eof))
    }

    /// Reads a whole directory (following cookies to EOF).
    pub fn readdir_all(&self, fh: &FHandle) -> Result<Vec<ReaddirEntry>, ClientError> {
        let mut all = Vec::new();
        let mut cookie = 0;
        loop {
            let (entries, eof) = self.readdir(fh, cookie, 4096)?;
            if let Some(last) = entries.last() {
                cookie = last.cookie;
            }
            let empty = entries.is_empty();
            all.extend(entries);
            if eof || empty {
                break;
            }
        }
        Ok(all)
    }

    /// STATFS.
    pub fn statfs(&self, fh: &FHandle) -> Result<StatfsRes, ClientError> {
        let mut e = Encoder::new();
        e.put_opaque_fixed(&fh.0);
        let results = self.call_nfs(proc_nfs::STATFS, e.finish())?;
        let mut d = self.status(&results)?;
        Ok(StatfsRes::decode(&mut d)?)
    }

    // -- multi-call helpers -------------------------------------------------

    /// Reads an arbitrary range, issuing as many READs as needed.
    pub fn read_all(&self, fh: &FHandle, offset: u64, len: usize) -> Result<Vec<u8>, ClientError> {
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        let end = offset + len as u64;
        while pos < end {
            let chunk = (end - pos).min(MAX_DATA as u64) as u32;
            let (_, data) = self.read(fh, pos as u32, chunk)?;
            if data.is_empty() {
                break; // EOF
            }
            pos += data.len() as u64;
            out.extend(data);
        }
        Ok(out)
    }

    /// Writes an arbitrary range, issuing as many WRITEs as needed.
    pub fn write_all(&self, fh: &FHandle, offset: u64, data: &[u8]) -> Result<(), ClientError> {
        let mut pos = 0usize;
        while pos < data.len() {
            let chunk = (data.len() - pos).min(MAX_DATA);
            self.write(fh, (offset + pos as u64) as u32, &data[pos..pos + chunk])?;
            pos += chunk;
        }
        Ok(())
    }
}

/// Path-level convenience layer: the client's view of the mount point.
pub struct RemoteFs {
    client: NfsClient,
    root: FHandle,
}

impl RemoteFs {
    /// Mounts the export at `path` ("" or "/" for the root).
    ///
    /// # Errors
    ///
    /// Propagates client errors from the MOUNT call.
    pub fn mount(client: NfsClient, path: &str) -> Result<RemoteFs, ClientError> {
        let root = client.mount(path)?;
        Ok(RemoteFs { client, root })
    }

    /// The root handle.
    pub fn root(&self) -> FHandle {
        self.root
    }

    /// The underlying typed client.
    pub fn client(&self) -> &NfsClient {
        &self.client
    }

    /// Resolves a `/`-separated path to a handle.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] with [`NfsStat::NoEnt`] on a missing
    /// component.
    pub fn resolve(&self, path: &str) -> Result<(FHandle, Fattr), ClientError> {
        let mut fh = self.root;
        let mut attr = self.client.getattr(&fh)?;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            let (next, next_attr) = self.client.lookup(&fh, part)?;
            fh = next;
            attr = next_attr;
        }
        Ok((fh, attr))
    }

    /// Creates (or truncates) a file at `path` and writes `data`.
    ///
    /// # Errors
    ///
    /// Lookup/create/write errors.
    pub fn write_file(&self, path: &str, data: &[u8]) -> Result<FHandle, ClientError> {
        let (dir, name) = self.split_parent(path)?;
        let fh = match self.client.lookup(&dir, &name) {
            Ok((fh, _)) => {
                let mut truncate = Sattr::unchanged();
                truncate.size = 0;
                self.client.setattr(&fh, &truncate)?;
                fh
            }
            Err(ClientError::Status(NfsStat::NoEnt)) => {
                let (fh, _) = self.client.create(&dir, &name, &Sattr::with_mode(0o644))?;
                fh
            }
            Err(e) => return Err(e),
        };
        self.client.write_all(&fh, 0, data)?;
        Ok(fh)
    }

    /// Reads the whole file at `path`.
    ///
    /// # Errors
    ///
    /// Lookup/read errors.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, ClientError> {
        let (fh, attr) = self.resolve(path)?;
        self.client.read_all(&fh, 0, attr.size as usize)
    }

    /// Creates a directory path component under its parent.
    ///
    /// # Errors
    ///
    /// Lookup/mkdir errors.
    pub fn mkdir_path(&self, path: &str) -> Result<FHandle, ClientError> {
        let (dir, name) = self.split_parent(path)?;
        let (fh, _) = self.client.mkdir(&dir, &name, &Sattr::with_mode(0o755))?;
        Ok(fh)
    }

    fn split_parent(&self, path: &str) -> Result<(FHandle, String), ClientError> {
        let trimmed = path.trim_matches('/');
        let (parent, name) = match trimmed.rsplit_once('/') {
            Some((p, n)) => (p, n),
            None => ("", trimmed),
        };
        let (dir, _) = self.resolve(parent)?;
        Ok((dir, name.to_string()))
    }
}
