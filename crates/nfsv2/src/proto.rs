//! NFSv2 wire protocol definitions (RFC 1094) plus the MOUNT protocol.

use ffs::FileKind;
use onc_rpc::{Decoder, Encoder, XdrError};

/// The NFS program number.
pub const NFS_PROGRAM: u32 = 100003;
/// NFS protocol version implemented here.
pub const NFS_VERSION: u32 = 2;
/// The MOUNT program number.
pub const MOUNT_PROGRAM: u32 = 100005;
/// MOUNT protocol version.
pub const MOUNT_VERSION: u32 = 1;

/// NFSv2 procedure numbers.
#[allow(missing_docs)]
pub mod proc_nfs {
    pub const NULL: u32 = 0;
    pub const GETATTR: u32 = 1;
    pub const SETATTR: u32 = 2;
    pub const ROOT: u32 = 3;
    pub const LOOKUP: u32 = 4;
    pub const READLINK: u32 = 5;
    pub const READ: u32 = 6;
    pub const WRITECACHE: u32 = 7;
    pub const WRITE: u32 = 8;
    pub const CREATE: u32 = 9;
    pub const REMOVE: u32 = 10;
    pub const RENAME: u32 = 11;
    pub const LINK: u32 = 12;
    pub const SYMLINK: u32 = 13;
    pub const MKDIR: u32 = 14;
    pub const RMDIR: u32 = 15;
    pub const READDIR: u32 = 16;
    pub const STATFS: u32 = 17;
}

/// MOUNT procedure numbers.
#[allow(missing_docs)]
pub mod proc_mount {
    pub const NULL: u32 = 0;
    pub const MNT: u32 = 1;
    pub const UMNT: u32 = 3;
}

/// Maximum data per READ/WRITE call (NFSv2 limit).
pub const MAX_DATA: usize = 8192;

/// NFSv2 status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum NfsStat {
    Ok = 0,
    Perm = 1,
    NoEnt = 2,
    Io = 5,
    Acces = 13,
    Exist = 17,
    NotDir = 20,
    IsDir = 21,
    FBig = 27,
    NoSpc = 28,
    RoFs = 30,
    NameTooLong = 63,
    NotEmpty = 66,
    DQuot = 69,
    Stale = 70,
}

impl NfsStat {
    /// Decodes from the wire value.
    pub fn from_u32(v: u32) -> Result<NfsStat, XdrError> {
        Ok(match v {
            0 => NfsStat::Ok,
            1 => NfsStat::Perm,
            2 => NfsStat::NoEnt,
            5 => NfsStat::Io,
            13 => NfsStat::Acces,
            17 => NfsStat::Exist,
            20 => NfsStat::NotDir,
            21 => NfsStat::IsDir,
            27 => NfsStat::FBig,
            28 => NfsStat::NoSpc,
            30 => NfsStat::RoFs,
            63 => NfsStat::NameTooLong,
            66 => NfsStat::NotEmpty,
            69 => NfsStat::DQuot,
            70 => NfsStat::Stale,
            _ => return Err(XdrError::BadValue),
        })
    }
}

impl From<ffs::FsError> for NfsStat {
    fn from(e: ffs::FsError) -> NfsStat {
        match e {
            ffs::FsError::NoEnt => NfsStat::NoEnt,
            ffs::FsError::Exists => NfsStat::Exist,
            ffs::FsError::NotDir => NfsStat::NotDir,
            ffs::FsError::IsDir => NfsStat::IsDir,
            ffs::FsError::NotEmpty => NfsStat::NotEmpty,
            ffs::FsError::NoSpace => NfsStat::NoSpc,
            ffs::FsError::BadName => NfsStat::NameTooLong,
            ffs::FsError::Stale => NfsStat::Stale,
            ffs::FsError::BadInode => NfsStat::Stale,
            ffs::FsError::TooBig => NfsStat::FBig,
            ffs::FsError::BadType => NfsStat::Io,
            ffs::FsError::InvalidMove => NfsStat::Acces,
        }
    }
}

impl std::fmt::Display for NfsStat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The opaque 32-byte NFSv2 file handle.
///
/// Layout: `fsid (4) ‖ inode (4) ‖ generation (4) ‖ zeros`. The paper's
/// prototype used bare inode numbers and notes that *"a possible
/// solution would be to build a handle from the inode number and a
/// generation number, similar to the 4.4 BSD NFS implementation"* —
/// which is exactly what we do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FHandle(pub [u8; 32]);

impl FHandle {
    /// Builds a handle from volume id, inode and generation.
    pub fn pack(fsid: u32, ino: u32, generation: u32) -> FHandle {
        let mut h = [0u8; 32];
        h[0..4].copy_from_slice(&fsid.to_be_bytes());
        h[4..8].copy_from_slice(&ino.to_be_bytes());
        h[8..12].copy_from_slice(&generation.to_be_bytes());
        FHandle(h)
    }

    /// Splits a handle into `(fsid, ino, generation)`.
    pub fn unpack(&self) -> (u32, u32, u32) {
        let fsid = u32::from_be_bytes(self.0[0..4].try_into().expect("4 bytes"));
        let ino = u32::from_be_bytes(self.0[4..8].try_into().expect("4 bytes"));
        let generation = u32::from_be_bytes(self.0[8..12].try_into().expect("4 bytes"));
        (fsid, ino, generation)
    }

    /// The handle string used inside DisCFS credentials (`HANDLE ==
    /// "..."` conditions). The paper used the bare inode number; we use
    /// `ino.generation` so recycled inodes never inherit credentials.
    pub fn credential_string(&self) -> String {
        let (_, ino, generation) = self.unpack();
        format!("{ino}.{generation}")
    }

    fn encode(&self, e: &mut Encoder) {
        e.put_opaque_fixed(&self.0);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<FHandle, XdrError> {
        let bytes = d.get_opaque_fixed(32)?;
        Ok(FHandle(bytes.try_into().expect("32 bytes")))
    }
}

/// NFSv2 file types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FType {
    Regular = 1,
    Directory = 2,
    Symlink = 5,
}

impl From<FileKind> for FType {
    fn from(k: FileKind) -> FType {
        match k {
            FileKind::Regular => FType::Regular,
            FileKind::Directory => FType::Directory,
            FileKind::Symlink => FType::Symlink,
        }
    }
}

/// An NFSv2 timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimeVal {
    /// Seconds.
    pub secs: u32,
    /// Microseconds.
    pub usecs: u32,
}

/// NFSv2 file attributes (`fattr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fattr {
    /// File type.
    pub ftype: FType,
    /// Full mode word (type bits + permissions).
    pub mode: u32,
    /// Link count.
    pub nlink: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Size in bytes.
    pub size: u32,
    /// Preferred block size.
    pub blocksize: u32,
    /// Device number (unused: 0).
    pub rdev: u32,
    /// Blocks used.
    pub blocks: u32,
    /// Filesystem id.
    pub fsid: u32,
    /// Inode number.
    pub fileid: u32,
    /// Last access.
    pub atime: TimeVal,
    /// Last modification.
    pub mtime: TimeVal,
    /// Last status change.
    pub ctime: TimeVal,
}

impl Fattr {
    /// Builds NFS attributes from filesystem attributes.
    pub fn from_attr(fsid: u32, attr: &ffs::Attr) -> Fattr {
        Fattr {
            ftype: attr.kind.into(),
            mode: attr.kind.mode_bits() | attr.mode,
            nlink: attr.nlink,
            uid: attr.uid,
            gid: attr.gid,
            size: attr.size.min(u32::MAX as u64) as u32,
            blocksize: ffs::BLOCK_SIZE as u32,
            rdev: 0,
            blocks: (attr.size.div_ceil(ffs::BLOCK_SIZE as u64)) as u32,
            fsid,
            fileid: attr.ino,
            atime: TimeVal {
                secs: attr.atime as u32,
                usecs: 0,
            },
            mtime: TimeVal {
                secs: attr.mtime as u32,
                usecs: 0,
            },
            ctime: TimeVal {
                secs: attr.ctime as u32,
                usecs: 0,
            },
        }
    }

    /// Encodes the attribute block.
    pub fn encode(&self, e: &mut Encoder) {
        e.put_u32(self.ftype as u32);
        e.put_u32(self.mode);
        e.put_u32(self.nlink);
        e.put_u32(self.uid);
        e.put_u32(self.gid);
        e.put_u32(self.size);
        e.put_u32(self.blocksize);
        e.put_u32(self.rdev);
        e.put_u32(self.blocks);
        e.put_u32(self.fsid);
        e.put_u32(self.fileid);
        e.put_u32(self.atime.secs);
        e.put_u32(self.atime.usecs);
        e.put_u32(self.mtime.secs);
        e.put_u32(self.mtime.usecs);
        e.put_u32(self.ctime.secs);
        e.put_u32(self.ctime.usecs);
    }

    /// Decodes an attribute block.
    pub fn decode(d: &mut Decoder<'_>) -> Result<Fattr, XdrError> {
        let ftype = match d.get_u32()? {
            1 => FType::Regular,
            2 => FType::Directory,
            5 => FType::Symlink,
            _ => return Err(XdrError::BadValue),
        };
        Ok(Fattr {
            ftype,
            mode: d.get_u32()?,
            nlink: d.get_u32()?,
            uid: d.get_u32()?,
            gid: d.get_u32()?,
            size: d.get_u32()?,
            blocksize: d.get_u32()?,
            rdev: d.get_u32()?,
            blocks: d.get_u32()?,
            fsid: d.get_u32()?,
            fileid: d.get_u32()?,
            atime: TimeVal {
                secs: d.get_u32()?,
                usecs: d.get_u32()?,
            },
            mtime: TimeVal {
                secs: d.get_u32()?,
                usecs: d.get_u32()?,
            },
            ctime: TimeVal {
                secs: d.get_u32()?,
                usecs: d.get_u32()?,
            },
        })
    }
}

/// Settable attributes (`sattr`): `u32::MAX` means "do not set".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sattr {
    /// Permission bits or `u32::MAX`.
    pub mode: u32,
    /// Uid or `u32::MAX`.
    pub uid: u32,
    /// Gid or `u32::MAX`.
    pub gid: u32,
    /// Size or `u32::MAX`.
    pub size: u32,
    /// Atime or `{u32::MAX, u32::MAX}`.
    pub atime: TimeVal,
    /// Mtime or `{u32::MAX, u32::MAX}`.
    pub mtime: TimeVal,
}

impl Sattr {
    /// An sattr that changes nothing.
    pub fn unchanged() -> Sattr {
        Sattr {
            mode: u32::MAX,
            uid: u32::MAX,
            gid: u32::MAX,
            size: u32::MAX,
            atime: TimeVal {
                secs: u32::MAX,
                usecs: u32::MAX,
            },
            mtime: TimeVal {
                secs: u32::MAX,
                usecs: u32::MAX,
            },
        }
    }

    /// An sattr setting only the mode (used at CREATE/MKDIR).
    pub fn with_mode(mode: u32) -> Sattr {
        Sattr {
            mode,
            ..Sattr::unchanged()
        }
    }

    /// Converts to the filesystem's update type.
    pub fn to_setattr(&self) -> ffs::SetAttr {
        let opt = |v: u32| if v == u32::MAX { None } else { Some(v) };
        ffs::SetAttr {
            mode: opt(self.mode),
            uid: opt(self.uid),
            gid: opt(self.gid),
            size: opt(self.size).map(|s| s as u64),
            atime: opt(self.atime.secs).map(|s| s as u64),
            mtime: opt(self.mtime.secs).map(|s| s as u64),
        }
    }

    /// Encodes the sattr block.
    pub fn encode(&self, e: &mut Encoder) {
        e.put_u32(self.mode);
        e.put_u32(self.uid);
        e.put_u32(self.gid);
        e.put_u32(self.size);
        e.put_u32(self.atime.secs);
        e.put_u32(self.atime.usecs);
        e.put_u32(self.mtime.secs);
        e.put_u32(self.mtime.usecs);
    }

    /// Decodes an sattr block.
    pub fn decode(d: &mut Decoder<'_>) -> Result<Sattr, XdrError> {
        Ok(Sattr {
            mode: d.get_u32()?,
            uid: d.get_u32()?,
            gid: d.get_u32()?,
            size: d.get_u32()?,
            atime: TimeVal {
                secs: d.get_u32()?,
                usecs: d.get_u32()?,
            },
            mtime: TimeVal {
                secs: d.get_u32()?,
                usecs: d.get_u32()?,
            },
        })
    }
}

/// `diropargs`: a directory handle and a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirOpArgs {
    /// The directory.
    pub dir: FHandle,
    /// The entry name.
    pub name: String,
}

impl DirOpArgs {
    /// Encodes the pair.
    pub fn encode(&self, e: &mut Encoder) {
        self.dir.encode(e);
        e.put_string(&self.name);
    }

    /// Decodes the pair.
    pub fn decode(d: &mut Decoder<'_>) -> Result<DirOpArgs, XdrError> {
        Ok(DirOpArgs {
            dir: FHandle::decode(d)?,
            name: d.get_string()?,
        })
    }
}

/// One READDIR entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReaddirEntry {
    /// Inode number.
    pub fileid: u32,
    /// Entry name.
    pub name: String,
    /// Opaque continuation cookie.
    pub cookie: u32,
}

/// Result of STATFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatfsRes {
    /// Optimal transfer size.
    pub tsize: u32,
    /// Block size.
    pub bsize: u32,
    /// Total blocks.
    pub blocks: u32,
    /// Free blocks.
    pub bfree: u32,
    /// Blocks available to non-privileged users.
    pub bavail: u32,
}

impl StatfsRes {
    /// Encodes the info block.
    pub fn encode(&self, e: &mut Encoder) {
        e.put_u32(self.tsize);
        e.put_u32(self.bsize);
        e.put_u32(self.blocks);
        e.put_u32(self.bfree);
        e.put_u32(self.bavail);
    }

    /// Decodes the info block.
    pub fn decode(d: &mut Decoder<'_>) -> Result<StatfsRes, XdrError> {
        Ok(StatfsRes {
            tsize: d.get_u32()?,
            bsize: d.get_u32()?,
            blocks: d.get_u32()?,
            bfree: d.get_u32()?,
            bavail: d.get_u32()?,
        })
    }
}

/// Re-export used by service implementations.
pub use FHandle as Handle;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fhandle_pack_unpack() {
        let h = FHandle::pack(7, 666240, 3);
        assert_eq!(h.unpack(), (7, 666240, 3));
        assert_eq!(h.credential_string(), "666240.3");
    }

    #[test]
    fn fattr_round_trip() {
        let attr = Fattr {
            ftype: FType::Regular,
            mode: 0o100644,
            nlink: 2,
            uid: 10,
            gid: 20,
            size: 12345,
            blocksize: 8192,
            rdev: 0,
            blocks: 2,
            fsid: 1,
            fileid: 42,
            atime: TimeVal { secs: 1, usecs: 2 },
            mtime: TimeVal { secs: 3, usecs: 4 },
            ctime: TimeVal { secs: 5, usecs: 6 },
        };
        let mut e = Encoder::new();
        attr.encode(&mut e);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(Fattr::decode(&mut d).unwrap(), attr);
        assert!(d.is_exhausted());
    }

    #[test]
    fn sattr_round_trip_and_conversion() {
        let s = Sattr::with_mode(0o600);
        let mut e = Encoder::new();
        s.encode(&mut e);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(Sattr::decode(&mut d).unwrap(), s);

        let set = s.to_setattr();
        assert_eq!(set.mode, Some(0o600));
        assert_eq!(set.uid, None);
        assert_eq!(set.size, None);
    }

    #[test]
    fn diropargs_round_trip() {
        let args = DirOpArgs {
            dir: FHandle::pack(1, 2, 3),
            name: "paper.tex".into(),
        };
        let mut e = Encoder::new();
        args.encode(&mut e);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(DirOpArgs::decode(&mut d).unwrap(), args);
    }

    #[test]
    fn nfsstat_values_match_rfc() {
        assert_eq!(NfsStat::from_u32(70).unwrap(), NfsStat::Stale);
        assert_eq!(NfsStat::from_u32(13).unwrap(), NfsStat::Acces);
        assert!(NfsStat::from_u32(999).is_err());
    }

    #[test]
    fn fs_error_mapping() {
        assert_eq!(NfsStat::from(ffs::FsError::NoEnt), NfsStat::NoEnt);
        assert_eq!(NfsStat::from(ffs::FsError::Stale), NfsStat::Stale);
        assert_eq!(NfsStat::from(ffs::FsError::NotEmpty), NfsStat::NotEmpty);
    }
}
