//! The server-side service interface.
//!
//! Both user-level servers in this reproduction — the CFS-NE baseline
//! and DisCFS itself — implement [`NfsService`]; the generic
//! [`server`](crate::server) loop handles RPC decode/encode and feeds
//! them typed calls together with a [`RequestCtx`] carrying the
//! authenticated channel identity (the key DisCFS checks policies
//! against).

use discfs_crypto::ed25519::VerifyingKey;
use onc_rpc::AcceptStat;

use crate::proto::{DirOpArgs, FHandle, Fattr, NfsStat, ReaddirEntry, Sattr, StatfsRes};

/// Per-request context assembled by the server loop.
#[derive(Debug, Clone, Copy)]
pub struct RequestCtx {
    /// The public key authenticated by the IPsec channel, when present.
    pub peer: Option<VerifyingKey>,
    /// Unix uid from `AUTH_SYS` (cosmetic under DisCFS — see paper §5).
    pub uid: u32,
    /// Unix gid from `AUTH_SYS`.
    pub gid: u32,
}

impl RequestCtx {
    /// An anonymous context (no channel identity, nobody uid).
    pub fn anonymous() -> RequestCtx {
        RequestCtx {
            peer: None,
            uid: u32::MAX,
            gid: u32::MAX,
        }
    }
}

/// The NFSv2 + MOUNT service interface.
///
/// Every method mirrors one protocol procedure; errors are protocol
/// status codes.
#[allow(missing_docs)]
pub trait NfsService: Send + Sync {
    /// MOUNT MNT: resolve an export path to its root handle.
    fn mount(&self, ctx: &RequestCtx, path: &str) -> Result<FHandle, NfsStat>;

    fn getattr(&self, ctx: &RequestCtx, fh: &FHandle) -> Result<Fattr, NfsStat>;
    fn setattr(&self, ctx: &RequestCtx, fh: &FHandle, sattr: &Sattr) -> Result<Fattr, NfsStat>;
    fn lookup(&self, ctx: &RequestCtx, args: &DirOpArgs) -> Result<(FHandle, Fattr), NfsStat>;
    fn readlink(&self, ctx: &RequestCtx, fh: &FHandle) -> Result<String, NfsStat>;
    fn read(
        &self,
        ctx: &RequestCtx,
        fh: &FHandle,
        offset: u32,
        count: u32,
    ) -> Result<(Fattr, Vec<u8>), NfsStat>;
    fn write(
        &self,
        ctx: &RequestCtx,
        fh: &FHandle,
        offset: u32,
        data: &[u8],
    ) -> Result<Fattr, NfsStat>;
    fn create(
        &self,
        ctx: &RequestCtx,
        args: &DirOpArgs,
        sattr: &Sattr,
    ) -> Result<(FHandle, Fattr), NfsStat>;
    fn remove(&self, ctx: &RequestCtx, args: &DirOpArgs) -> Result<(), NfsStat>;
    fn rename(&self, ctx: &RequestCtx, from: &DirOpArgs, to: &DirOpArgs) -> Result<(), NfsStat>;
    fn link(&self, ctx: &RequestCtx, from: &FHandle, to: &DirOpArgs) -> Result<(), NfsStat>;
    fn symlink(
        &self,
        ctx: &RequestCtx,
        args: &DirOpArgs,
        target: &str,
        sattr: &Sattr,
    ) -> Result<(), NfsStat>;
    fn mkdir(
        &self,
        ctx: &RequestCtx,
        args: &DirOpArgs,
        sattr: &Sattr,
    ) -> Result<(FHandle, Fattr), NfsStat>;
    fn rmdir(&self, ctx: &RequestCtx, args: &DirOpArgs) -> Result<(), NfsStat>;
    fn readdir(
        &self,
        ctx: &RequestCtx,
        fh: &FHandle,
        cookie: u32,
        count: u32,
    ) -> Result<(Vec<ReaddirEntry>, bool), NfsStat>;
    fn statfs(&self, ctx: &RequestCtx, fh: &FHandle) -> Result<StatfsRes, NfsStat>;

    /// Hook for additional RPC programs multiplexed on the same
    /// connection. DisCFS registers its credential-submission program
    /// here (the paper's "utility which allows a user to submit
    /// credential assertions to the DisCFS daemon over RPC").
    ///
    /// Returns `None` when the program is not handled.
    fn extension(
        &self,
        _ctx: &RequestCtx,
        _prog: u32,
        _proc_num: u32,
        _args: &[u8],
    ) -> Option<Result<Vec<u8>, AcceptStat>> {
        None
    }

    /// Called when a connection ends (DisCFS tears down the per-
    /// connection KeyNote session).
    fn connection_closed(&self, _ctx: &RequestCtx) {}

    /// Called when the server kills a connection for a protocol
    /// violation (malformed frame, broken record stream) *before*
    /// [`NfsService::connection_closed`]. DisCFS writes an audit record
    /// so operators can see who sent garbage; the default ignores it.
    fn connection_aborted(&self, _ctx: &RequestCtx, _reason: &str) {}
}
