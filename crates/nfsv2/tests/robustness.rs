//! Server robustness: the RPC dispatch layer under malformed and
//! hostile traffic. A user-level NFS daemon faces the raw network; no
//! input may crash it or corrupt the volume.
//!
//! All wire traffic is framed (`onc_rpc::frame`). A well-formed frame
//! whose payload is not a valid RPC call is *skipped* and the
//! connection survives; a malformed frame (bad length or checksum)
//! condemns the connection — that path is exercised by the engine
//! tests in the `discfs` integration suite.

use std::sync::Arc;

use bytes::Bytes;
use ffs::{Ffs, FsConfig};
use ipsec::{PlainChannel, SecureTransport};
use netsim::{Link, SimClock, Transport};
use nfsv2::{FfsService, NfsClient, RemoteFs};
use onc_rpc::frame::{self, FrameDecoder};
use onc_rpc::{AcceptStat, ReplyBody, RpcCall, RpcReply};
use proptest::prelude::*;

fn spawn_server() -> (netsim::Endpoint, Arc<Ffs>) {
    let clock = SimClock::new();
    let (client_end, server_end) = Link::loopback(&clock);
    let fs = Arc::new(Ffs::format_in_memory(FsConfig::small()));
    let service = Arc::new(FfsService::new(fs.clone(), 1));
    nfsv2::server::spawn(service, Box::new(PlainChannel::new(server_end)));
    (client_end, fs)
}

/// Sends one RPC call as a single framed message.
fn send_call(endpoint: &netsim::Endpoint, call: &RpcCall) {
    endpoint.send(frame::encode_frame(&call.encode())).unwrap();
}

/// Pulls framed replies off an endpoint, skipping non-reply frames.
struct Replies<'a> {
    endpoint: &'a netsim::Endpoint,
    decoder: FrameDecoder,
}

impl<'a> Replies<'a> {
    fn new(endpoint: &'a netsim::Endpoint) -> Replies<'a> {
        Replies {
            endpoint,
            decoder: FrameDecoder::new(),
        }
    }

    fn next(&mut self) -> RpcReply {
        loop {
            if let Some(payload) = self.decoder.pop_frame() {
                if let Ok(reply) = RpcReply::decode(&payload) {
                    return reply;
                }
                continue;
            }
            let msg = self.endpoint.recv().unwrap();
            self.decoder.feed(Bytes::from(msg)).unwrap();
        }
    }
}

fn recv_reply(endpoint: &netsim::Endpoint) -> RpcReply {
    Replies::new(endpoint).next()
}

#[test]
fn unknown_program_rejected() {
    let (endpoint, _) = spawn_server();
    let call = RpcCall::new(1, 424242, 1, 0, vec![]);
    send_call(&endpoint, &call);
    let reply = recv_reply(&endpoint);
    assert_eq!(reply.body, ReplyBody::Error(AcceptStat::ProgUnavail));
}

#[test]
fn wrong_nfs_version_rejected() {
    let (endpoint, _) = spawn_server();
    let call = RpcCall::new(2, nfsv2::NFS_PROGRAM, 3, 0, vec![]);
    send_call(&endpoint, &call);
    let reply = recv_reply(&endpoint);
    assert_eq!(reply.body, ReplyBody::Error(AcceptStat::ProgMismatch));
}

#[test]
fn unknown_procedure_rejected() {
    let (endpoint, _) = spawn_server();
    let call = RpcCall::new(3, nfsv2::NFS_PROGRAM, 2, 99, vec![]);
    send_call(&endpoint, &call);
    let reply = recv_reply(&endpoint);
    assert_eq!(reply.body, ReplyBody::Error(AcceptStat::ProcUnavail));
}

#[test]
fn truncated_args_are_garbage() {
    let (endpoint, _) = spawn_server();
    // GETATTR with a 3-byte handle instead of 32.
    let call = RpcCall::new(4, nfsv2::NFS_PROGRAM, 2, 1, vec![1, 2, 3]);
    send_call(&endpoint, &call);
    let reply = recv_reply(&endpoint);
    assert_eq!(reply.body, ReplyBody::Error(AcceptStat::GarbageArgs));
}

#[test]
fn non_rpc_bytes_ignored_connection_survives() {
    let (endpoint, _) = spawn_server();
    // A well-formed frame carrying garbage: server must skip it, not die.
    endpoint
        .send(frame::encode_frame(&[0xde, 0xad, 0xbe, 0xef]))
        .unwrap();
    // A valid NULL call afterwards still works.
    let call = RpcCall::new(5, nfsv2::NFS_PROGRAM, 2, 0, vec![]);
    send_call(&endpoint, &call);
    let reply = recv_reply(&endpoint);
    assert_eq!(reply.xid, 5);
    assert!(matches!(reply.body, ReplyBody::Success(_)));
}

#[test]
fn malformed_frame_drops_connection() {
    let (endpoint, fs) = spawn_server();
    // A frame whose checksum does not match its payload condemns the
    // connection: the server cannot trust anything after it.
    let mut bad = frame::encode_frame(b"some payload");
    let last = bad.len() - 1;
    bad[last] ^= 0xff;
    endpoint.send(bad).unwrap();
    // The server closes its end; our next blocking recv observes it.
    assert!(endpoint.recv().is_err());
    fs.check().expect("volume consistent after malformed frame");
}

#[test]
fn pipelined_calls_one_message() {
    let (endpoint, _) = spawn_server();
    // Many calls packed into one transport message: the server decodes
    // them all and batches the replies.
    let mut burst = Vec::new();
    for xid in 10..20u32 {
        let call = RpcCall::new(xid, nfsv2::NFS_PROGRAM, 2, 0, vec![]);
        let start = frame::begin_frame(&mut burst);
        burst.extend_from_slice(&call.encode());
        frame::end_frame(&mut burst, start);
    }
    endpoint.send(burst).unwrap();
    let mut replies = Replies::new(&endpoint);
    for xid in 10..20u32 {
        let reply = replies.next();
        assert_eq!(reply.xid, xid);
        assert!(matches!(reply.body, ReplyBody::Success(_)));
    }
}

#[test]
fn volume_intact_after_garbage_storm() {
    let (endpoint, fs) = spawn_server();
    // Write a real file first.
    let client = NfsClient::new(Box::new(WrapEndpoint(endpoint)));
    let remote = RemoteFs::mount(client, "/").unwrap();
    remote.write_file("precious.txt", b"survives").unwrap();

    // Storm the server with malformed calls on the same connection.
    for i in 0..200u32 {
        let junk = RpcCall::new(
            1000 + i,
            nfsv2::NFS_PROGRAM,
            2,
            (i % 18) + 1,
            vec![i as u8; (i % 40) as usize],
        );
        let _ = remote
            .client()
            .call_raw(nfsv2::NFS_PROGRAM, 2, (i % 18) + 1, junk.args.clone());
    }

    // The data and the filesystem invariants are untouched.
    assert_eq!(remote.read_file("precious.txt").unwrap(), b"survives");
    fs.check().expect("volume consistent after garbage storm");
}

/// Wraps a bare endpoint as a SecureTransport for the client side.
struct WrapEndpoint(netsim::Endpoint);

impl SecureTransport for WrapEndpoint {
    fn send(&self, msg: Vec<u8>) -> Result<(), ipsec::IpsecError> {
        Ok(self.0.send(msg)?)
    }
    fn recv(&self) -> Result<Vec<u8>, ipsec::IpsecError> {
        Ok(self.0.recv()?)
    }
    fn peer_identity(&self) -> Option<discfs_crypto::ed25519::VerifyingKey> {
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random payloads in well-formed frames never kill the connection:
    /// a valid NULL call always succeeds afterwards.
    #[test]
    fn survives_random_frames(payloads in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..200), 1..10
    )) {
        let (endpoint, _) = spawn_server();
        for payload in payloads {
            endpoint.send(frame::encode_frame(&payload)).unwrap();
        }
        let call = RpcCall::new(77, nfsv2::NFS_PROGRAM, 2, 0, vec![]);
        send_call(&endpoint, &call);
        // Skip any replies the garbage may have provoked until xid 77.
        let mut replies = Replies::new(&endpoint);
        loop {
            let reply = replies.next();
            if reply.xid == 77 {
                prop_assert!(matches!(reply.body, ReplyBody::Success(_)));
                break;
            }
        }
    }

    /// Random args to every NFS procedure produce clean errors, never
    /// hangs or panics.
    #[test]
    fn random_args_yield_clean_errors(
        proc_num in 1u32..18,
        args in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        let (endpoint, fs) = spawn_server();
        let call = RpcCall::new(9, nfsv2::NFS_PROGRAM, 2, proc_num, args);
        send_call(&endpoint, &call);
        let reply = recv_reply(&endpoint);
        prop_assert_eq!(reply.xid, 9);
        // Either an RPC-level error or an NFS status reply; both fine.
        fs.check().expect("volume stays consistent");
    }
}
