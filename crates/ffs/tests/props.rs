//! Property tests: after ANY random sequence of filesystem operations,
//! the fsck-style checker must pass, data must read back, and space
//! accounting must balance.

use ffs::{Ffs, FsConfig, FsError, SetAttr};
use proptest::prelude::*;

/// A randomly generated filesystem operation. Targets are small indexes
/// into a rolling name pool so that operations frequently collide
/// (exercising Exists/NoEnt paths).
#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Mkdir(u8),
    Write { name: u8, offset: u16, len: u16 },
    Truncate { name: u8, size: u16 },
    Unlink(u8),
    Rmdir(u8),
    Rename(u8, u8),
    Link(u8, u8),
    Symlink(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12).prop_map(Op::Create),
        (0u8..6).prop_map(Op::Mkdir),
        ((0u8..12), any::<u16>(), (0u16..2048)).prop_map(|(name, offset, len)| Op::Write {
            name,
            offset,
            len
        }),
        ((0u8..12), any::<u16>()).prop_map(|(name, size)| Op::Truncate { name, size }),
        (0u8..12).prop_map(Op::Unlink),
        (0u8..6).prop_map(Op::Rmdir),
        ((0u8..12), (0u8..12)).prop_map(|(a, b)| Op::Rename(a, b)),
        ((0u8..12), (0u8..12)).prop_map(|(a, b)| Op::Link(a, b)),
        (0u8..12).prop_map(Op::Symlink),
    ]
}

fn fname(i: u8) -> String {
    format!("file{i}")
}

fn dname(i: u8) -> String {
    format!("dir{i}")
}

fn apply(fs: &Ffs, op: &Op) {
    let root = fs.root();
    // Every error here is an *expected* failure mode (Exists, NoEnt,
    // NotEmpty, ...); panics and inconsistency are what we hunt.
    let _ = match op {
        Op::Create(i) => fs.create(root, &fname(*i), 0o644, 0, 0).map(|_| ()),
        Op::Mkdir(i) => fs.mkdir(root, &dname(*i), 0o755, 0, 0).map(|_| ()),
        Op::Write { name, offset, len } => fs.lookup(root, &fname(*name)).and_then(|ino| {
            let data = vec![*name; *len as usize];
            fs.write(ino, *offset as u64, &data).map(|_| ())
        }),
        Op::Truncate { name, size } => fs.lookup(root, &fname(*name)).and_then(|ino| {
            fs.setattr(
                ino,
                SetAttr {
                    size: Some(*size as u64),
                    ..Default::default()
                },
            )
            .map(|_| ())
        }),
        Op::Unlink(i) => fs.unlink(root, &fname(*i)),
        Op::Rmdir(i) => fs.rmdir(root, &dname(*i)),
        Op::Rename(a, b) => fs.rename(root, &fname(*a), root, &fname(*b)),
        Op::Link(a, b) => fs
            .lookup(root, &fname(*a))
            .and_then(|ino| fs.link(ino, root, &fname(*b))),
        Op::Symlink(i) => fs
            .symlink(root, &format!("link{i}"), "/some/target", 0, 0)
            .map(|_| ()),
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The one invariant to rule them all: any op sequence leaves a
    /// filesystem that fsck finds consistent.
    #[test]
    fn random_ops_stay_consistent(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let fs = Ffs::format_in_memory(FsConfig::small());
        for op in &ops {
            apply(&fs, op);
        }
        if let Err(problems) = fs.check() {
            panic!("inconsistent after {ops:?}:\n{}", problems.join("\n"));
        }
    }

    /// Written data always reads back, regardless of chunking.
    #[test]
    fn write_read_round_trip(
        chunks in proptest::collection::vec((any::<u16>(), 0u16..3000), 1..12)
    ) {
        let fs = Ffs::format_in_memory(FsConfig::small());
        let ino = fs.create(fs.root(), "f", 0o644, 0, 0).unwrap();
        // Shadow model: a simple Vec<u8>.
        let mut model: Vec<u8> = Vec::new();
        for (offset, len) in &chunks {
            let offset = *offset as u64 % (1 << 18);
            let data = vec![(*len % 251) as u8; *len as usize];
            match fs.write(ino, offset, &data) {
                Ok(_) => {
                    let end = offset as usize + data.len();
                    if model.len() < end {
                        model.resize(end, 0);
                    }
                    model[offset as usize..end].copy_from_slice(&data);
                }
                Err(FsError::NoSpace) => break,
                Err(e) => panic!("unexpected write error: {e}"),
            }
        }
        let size = fs.getattr(ino).unwrap().size;
        prop_assert_eq!(size, model.len() as u64);
        let back = fs.read(ino, 0, model.len()).unwrap();
        prop_assert_eq!(back, model);
        fs.check().unwrap();
    }

    /// Deleting everything returns the filesystem to its initial free
    /// counts (no leaked blocks or inodes).
    #[test]
    fn space_fully_reclaimed(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let fs = Ffs::format_in_memory(FsConfig::small());
        let initial = fs.statfs();
        for op in &ops {
            apply(&fs, op);
        }
        // Delete everything that exists.
        loop {
            let entries: Vec<_> = fs
                .readdir(fs.root())
                .unwrap()
                .into_iter()
                .filter(|e| e.name != "." && e.name != "..")
                .collect();
            if entries.is_empty() {
                break;
            }
            for e in entries {
                let _ = fs.unlink(fs.root(), &e.name);
                let _ = fs.rmdir(fs.root(), &e.name);
            }
        }
        let end = fs.statfs();
        prop_assert_eq!(initial.free_blocks, end.free_blocks);
        prop_assert_eq!(initial.free_inodes, end.free_inodes);
        fs.check().unwrap();
    }

    /// Handles with an old generation are reliably detected as stale.
    #[test]
    fn stale_handles_detected(rounds in 1usize..20) {
        let fs = Ffs::format_in_memory(FsConfig { total_blocks: 256, inode_count: 16 });
        let mut old_handles = Vec::new();
        for round in 0..rounds {
            let name = format!("f{round}");
            let ino = fs.create(fs.root(), &name, 0o644, 0, 0).unwrap();
            let generation = fs.getattr(ino).unwrap().generation;
            fs.validate_handle(ino, generation).unwrap();
            fs.unlink(fs.root(), &name).unwrap();
            old_handles.push((ino, generation));
        }
        // Allocate a fresh file; all prior handles must now fail.
        let live = fs.create(fs.root(), "live", 0o644, 0, 0).unwrap();
        let live_generation = fs.getattr(live).unwrap().generation;
        for (ino, generation) in old_handles {
            prop_assert!(fs.validate_handle(ino, generation).is_err());
        }
        fs.validate_handle(live, live_generation).unwrap();
    }
}
