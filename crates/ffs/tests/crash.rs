//! Crash injection: the write-ahead journal is truncated at every
//! record boundary (and inside records) to simulate a crash at every
//! possible durability point, and each resulting image must mount to a
//! consistent state — fsck-clean, with everything synced before the
//! crash intact — instead of panicking or serving a torn tree.

use std::path::Path;

use ffs::{Ffs, FsConfig, StoreBackend};
use netsim::SimClock;
use store::JOURNAL_RECORD_LEN;

/// Tiny geometry: keeps the per-truncation image copies cheap.
fn config() -> FsConfig {
    FsConfig {
        total_blocks: 96,
        inode_count: 64,
    }
}

fn payload(seed: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| seed.wrapping_mul(31).wrapping_add((i % 251) as u8))
        .collect()
}

fn copy_image(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for name in ["blocks.dat", "journal.wal"] {
        if src.join(name).exists() {
            std::fs::copy(src.join(name), dst.join(name)).unwrap();
        }
    }
}

/// Builds the master image: a synced baseline (which must survive any
/// crash) plus a burst of post-sync activity that lives only in the
/// journal, including an indirect-block file, a directory tree, and an
/// unlink — the operations whose torn prefixes exercise the recovery
/// sweep's repairs.
fn build_master(dir: &Path) -> (Vec<u8>, Vec<u8>) {
    let clock = SimClock::new();
    let backend = StoreBackend::FileJournal { dir: dir.into() };
    let fs = Ffs::open_or_format_backend(&backend, &clock, config()).unwrap();
    let root = fs.root();

    let stable = payload(1, 3 * ffs::BLOCK_SIZE + 17);
    let nested = payload(2, 900);
    let a = fs.create(root, "stable.dat", 0o644, 0, 0).unwrap();
    fs.write(a, 0, &stable).unwrap();
    let d = fs.mkdir(root, "dir", 0o755, 0, 0).unwrap();
    let b = fs.create(d, "nested.dat", 0o644, 0, 0).unwrap();
    fs.write(b, 0, &nested).unwrap();
    fs.sync().unwrap();

    // Post-sync: everything below is only in the journal.
    let c = fs.create(root, "late.dat", 0o644, 0, 0).unwrap();
    // 20 blocks: spills past the 12 direct pointers into the indirect
    // block, so a torn prefix can strand pointer-table updates.
    fs.write(c, 0, &payload(3, 20 * ffs::BLOCK_SIZE)).unwrap();
    let e = fs.mkdir(root, "late-dir", 0o755, 0, 0).unwrap();
    let f = fs.create(e, "deep.dat", 0o644, 0, 0).unwrap();
    fs.write(f, 0, &payload(4, 5000)).unwrap();
    fs.unlink(d, "nested.dat").unwrap();
    fs.rename(root, "late.dat", e, "moved.dat").unwrap();
    // Dropped without sync: the "crash".
    (stable, nested)
}

#[test]
fn every_journal_truncation_point_mounts_consistently() {
    let base = store::temp_dir_for_tests("crash-matrix");
    let master = base.join("master");
    let (stable, nested) = build_master(&master);

    let journal_len = std::fs::metadata(master.join("journal.wal")).unwrap().len();
    assert!(journal_len > 0, "post-sync writes must be journaled");
    assert_eq!(
        journal_len % JOURNAL_RECORD_LEN as u64,
        0,
        "journal is a whole number of records"
    );
    let records = journal_len / JOURNAL_RECORD_LEN as u64;

    // Crash points: every record boundary, plus two mid-record offsets
    // after each boundary (torn header, torn payload).
    let mut cuts: Vec<u64> = Vec::new();
    for r in 0..=records {
        let at = r * JOURNAL_RECORD_LEN as u64;
        cuts.push(at);
        if r < records {
            cuts.push(at + 17);
            cuts.push(at + JOURNAL_RECORD_LEN as u64 / 2);
        }
    }

    let clock = SimClock::new();
    for cut in cuts {
        let scratch = base.join(format!("cut-{cut}"));
        copy_image(&master, &scratch);
        let journal = std::fs::OpenOptions::new()
            .write(true)
            .open(scratch.join("journal.wal"))
            .unwrap();
        journal.set_len(cut).unwrap();
        drop(journal);

        let backend = StoreBackend::FileJournal {
            dir: scratch.clone(),
        };
        let fs = Ffs::mount_backend(&backend, &clock, config())
            .unwrap_or_else(|e| panic!("cut {cut}: mount failed: {e}"));
        fs.check()
            .unwrap_or_else(|p| panic!("cut {cut}: fsck after recovery: {p:?}"));

        // The synced baseline survives every crash point.
        let ino = fs
            .resolve_path("stable.dat")
            .unwrap_or_else(|e| panic!("cut {cut}: stable.dat lost: {e}"));
        assert_eq!(
            fs.read(ino, 0, stable.len() + 1).unwrap(),
            stable,
            "cut {cut}: synced content damaged"
        );
        // nested.dat was unlinked *after* the sync: depending on the
        // crash point it is either still present (with its synced
        // content) or already gone — but never torn.
        if let Ok(ino) = fs.resolve_path("dir/nested.dat") {
            assert_eq!(
                fs.read(ino, 0, nested.len() + 1).unwrap(),
                nested,
                "cut {cut}: nested.dat present but torn"
            );
        }
        // Whatever survived, the volume stays writable.
        let ino = fs.create(fs.root(), "after-crash", 0o644, 0, 0).unwrap();
        fs.write(ino, 0, b"recovered").unwrap();
        fs.check()
            .unwrap_or_else(|p| panic!("cut {cut}: fsck after post-recovery write: {p:?}"));

        drop(fs);
        std::fs::remove_dir_all(&scratch).ok();
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn repeated_crash_reopen_cycles_accumulate_files() {
    // Five lives, each ending in a drop without sync: the journal
    // replay plus recovery sweep must carry every previous life's file
    // forward.
    let dir = store::temp_dir_for_tests("crash-cycles");
    let backend = StoreBackend::FileJournal { dir: dir.clone() };
    let clock = SimClock::new();
    for life in 0..5u32 {
        let fs = Ffs::open_or_format_backend(&backend, &clock, config()).unwrap();
        for prev in 0..life {
            let ino = fs
                .resolve_path(&format!("life-{prev}.dat"))
                .unwrap_or_else(|e| panic!("life {life}: file from life {prev} lost: {e}"));
            assert_eq!(
                fs.read(ino, 0, 64).unwrap(),
                payload(prev as u8, 48),
                "life {life}: content from life {prev} damaged"
            );
        }
        let ino = fs
            .create(fs.root(), &format!("life-{life}.dat"), 0o644, 0, 0)
            .unwrap();
        fs.write(ino, 0, &payload(life as u8, 48)).unwrap();
        fs.check().unwrap();
        // Crash: no sync.
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_during_force_reformat_cannot_resurrect_the_old_volume() {
    // force_format_on journals an invalidated block 0 as its FIRST
    // write, so a reformat torn at any point replays to a store with
    // no superblock — never to the old clean superblock sitting over a
    // half-zeroed inode table.
    let dir = store::temp_dir_for_tests("crash-reformat");
    let backend = StoreBackend::FileJournal { dir: dir.clone() };
    let clock = SimClock::new();
    {
        let fs = Ffs::open_or_format_backend(&backend, &clock, config()).unwrap();
        let ino = fs.create(fs.root(), "old.dat", 0o644, 0, 0).unwrap();
        fs.write(ino, 0, b"previous life").unwrap();
        fs.sync().unwrap(); // clean superblock durable in blocks.dat
    }
    {
        // Reformat, then "crash" before any flush.
        let store = backend.build(&clock, config().total_blocks);
        let _fs = Ffs::force_format_on(store, config());
    }
    // Tear the reformat down to its very first journal record: only
    // the superblock invalidation replays.
    let journal = std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join("journal.wal"))
        .unwrap();
    journal.set_len(JOURNAL_RECORD_LEN as u64).unwrap();
    drop(journal);

    let store = backend.build(&clock, config().total_blocks);
    assert!(
        matches!(
            Ffs::mount_on(store.clone()),
            Err(ffs::MountError::NoSuperblock)
        ),
        "the old superblock must not survive a torn reformat"
    );
    // The image reads as virgin, so open_or_format starts fresh.
    let fs = Ffs::open_or_format(store, config()).unwrap();
    assert!(fs.resolve_path("old.dat").is_err());
    fs.check().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cached_volume_crash_rolls_back_to_the_synced_state() {
    // A write-back cache between the filesystem and the journal: the
    // post-sync burst lives only in cache memory (capacity exceeds the
    // volume, so nothing is evicted), EXCEPT the superblock dirty
    // marker, which CachedStore writes through. Dropping without sync
    // loses the cache — the mount must notice the dirty marker, run
    // the recovery sweep, and land exactly on the synced state.
    let dir = store::temp_dir_for_tests("crash-cached");
    let backend = StoreBackend::Cached {
        capacity: 4 * config().total_blocks as usize,
        inner: Box::new(StoreBackend::FileJournal { dir: dir.clone() }),
    };
    let clock = SimClock::new();
    let stable = payload(7, 2 * ffs::BLOCK_SIZE + 100);
    {
        let fs = Ffs::open_or_format_backend(&backend, &clock, config()).unwrap();
        let a = fs.create(fs.root(), "stable.dat", 0o644, 0, 0).unwrap();
        fs.write(a, 0, &stable).unwrap();
        fs.sync().unwrap();
        // Post-sync, never flushed: lost with the cache.
        let b = fs.create(fs.root(), "volatile.dat", 0o644, 0, 0).unwrap();
        fs.write(b, 0, &payload(8, 5000)).unwrap();
        // Dropped without sync: the "crash".
    }
    let fs = Ffs::open_or_format_backend(&backend, &clock, config()).unwrap();
    fs.check()
        .unwrap_or_else(|p| panic!("fsck after cached crash: {p:?}"));
    assert_eq!(
        fs.read(fs.resolve_path("stable.dat").unwrap(), 0, stable.len() + 1)
            .unwrap(),
        stable,
        "synced content survives losing the cache"
    );
    assert!(
        fs.resolve_path("volatile.dat").is_err(),
        "unflushed cached writes are gone, not torn"
    );
    let ino = fs.create(fs.root(), "after.dat", 0o644, 0, 0).unwrap();
    fs.write(ino, 0, b"writable").unwrap();
    fs.check().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cached_volume_with_evictions_recovers_consistently() {
    // A cache far smaller than the working set: evicted dirty blocks
    // reach the journal in LRU order, an arbitrary subset of the
    // post-sync burst. The crash image is messier than a journal
    // prefix, but the written-through dirty marker guarantees the
    // recovery sweep runs — mount must produce a consistent, writable
    // volume with the synced baseline intact (nothing post-sync freed
    // a synced block, so eviction order cannot touch it).
    let dir = store::temp_dir_for_tests("crash-cached-evict");
    let backend = StoreBackend::Cached {
        capacity: 8,
        inner: Box::new(StoreBackend::FileJournal { dir: dir.clone() }),
    };
    let clock = SimClock::new();
    let stable = payload(11, 3 * ffs::BLOCK_SIZE);
    {
        let fs = Ffs::open_or_format_backend(&backend, &clock, config()).unwrap();
        let a = fs.create(fs.root(), "stable.dat", 0o644, 0, 0).unwrap();
        fs.write(a, 0, &stable).unwrap();
        fs.sync().unwrap();
        for i in 0..6u8 {
            let f = fs
                .create(fs.root(), &format!("burst-{i}.dat"), 0o644, 0, 0)
                .unwrap();
            fs.write(f, 0, &payload(20 + i, 4 * ffs::BLOCK_SIZE))
                .unwrap();
        }
        // Dropped without sync.
    }
    let fs = Ffs::open_or_format_backend(&backend, &clock, config()).unwrap();
    fs.check()
        .unwrap_or_else(|p| panic!("fsck after eviction crash: {p:?}"));
    assert_eq!(
        fs.read(fs.resolve_path("stable.dat").unwrap(), 0, stable.len() + 1)
            .unwrap(),
        stable,
        "synced content survives an eviction-heavy crash"
    );
    let ino = fs.create(fs.root(), "after.dat", 0o644, 0, 0).unwrap();
    fs.write(ino, 0, b"writable").unwrap();
    fs.check().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_volume_crash_replays_every_shard_journal() {
    // Four journaled shards, no cache: every write reaches its shard's
    // WAL before being acknowledged, and a process crash leaves all
    // four journals intact on disk. The remount must replay each one
    // and recover synced AND unsynced data, exactly like the
    // single-store crash cycles — with the per-shard worker threads on
    // as well as off (the workers change who executes the I/O, not
    // what is journaled, and their Drop joins before the shards').
    for workers in [false, true] {
        let dir = store::temp_dir_for_tests("crash-sharded");
        let backend = StoreBackend::Sharded {
            shards: 4,
            workers,
            inner: Box::new(StoreBackend::FileJournal { dir: dir.clone() }),
        };
        let clock = SimClock::new();
        for life in 0..4u32 {
            let fs = Ffs::open_or_format_backend(&backend, &clock, config()).unwrap();
            for prev in 0..life {
                let ino = fs
                    .resolve_path(&format!("life-{prev}.dat"))
                    .unwrap_or_else(|e| {
                        panic!("workers={workers} life {life}: file from life {prev} lost: {e}")
                    });
                assert_eq!(
                    fs.read(ino, 0, 3 * ffs::BLOCK_SIZE).unwrap(),
                    payload(prev as u8, 2 * ffs::BLOCK_SIZE + 9),
                    "workers={workers} life {life}: content from life {prev} damaged"
                );
            }
            let ino = fs
                .create(fs.root(), &format!("life-{life}.dat"), 0o644, 0, 0)
                .unwrap();
            fs.write(ino, 0, &payload(life as u8, 2 * ffs::BLOCK_SIZE + 9))
                .unwrap();
            fs.check().unwrap();
            // Crash: no sync. All four shard journals survive the drop.
        }
        // The volume really is striped: every shard directory holds data.
        for shard in 0..4 {
            let blocks = dir.join(format!("shard-{shard}")).join("blocks.dat");
            assert!(
                blocks.exists(),
                "workers={workers}: shard {shard} has a data file"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn truncated_to_zero_journal_restores_the_synced_state_exactly() {
    let base = store::temp_dir_for_tests("crash-zero");
    let master = base.join("master");
    let (stable, nested) = build_master(&master);
    let journal = std::fs::OpenOptions::new()
        .write(true)
        .open(master.join("journal.wal"))
        .unwrap();
    journal.set_len(0).unwrap();
    drop(journal);

    let clock = SimClock::new();
    let backend = StoreBackend::FileJournal {
        dir: master.clone(),
    };
    let fs = Ffs::mount_backend(&backend, &clock, config()).unwrap();
    fs.check().unwrap();
    // Exactly the synced state: both files, nothing from after.
    assert_eq!(
        fs.read(fs.resolve_path("stable.dat").unwrap(), 0, stable.len() + 1)
            .unwrap(),
        stable
    );
    assert_eq!(
        fs.read(
            fs.resolve_path("dir/nested.dat").unwrap(),
            0,
            nested.len() + 1
        )
        .unwrap(),
        nested
    );
    assert!(fs.resolve_path("late-dir").is_err());
    assert!(fs.resolve_path("moved.dat").is_err());
    std::fs::remove_dir_all(&base).ok();
}
