//! Persistence lifecycle matrix: volumes formatted, populated, synced,
//! dropped, and mounted again must come back byte-identical — across
//! every persistent backend config (true process-restart reopen) and
//! the in-memory backends (same-store remount). Plus the format/mount
//! contract itself: `format_*` refuses to clobber, `mount` refuses
//! garbage, `open_or_format` picks the right path.

use std::collections::BTreeMap;
use std::sync::Arc;

use ffs::{BlockStore, Ffs, FsConfig, MemDisk, MountError, StoreBackend};
use netsim::SimClock;
use proptest::prelude::*;

/// Small geometry so FileJournal-backed cases stay cheap.
fn config() -> FsConfig {
    FsConfig {
        total_blocks: 512,
        inode_count: 128,
    }
}

fn content(seed: u8, len_units: u8) -> Vec<u8> {
    let len = 1 + len_units as usize * 700; // 1 byte .. ~12 KB (crosses a block)
    (0..len)
        .map(|i| seed.wrapping_mul(37).wrapping_add((i % 251) as u8))
        .collect()
}

/// A matrix entry: how the store comes back for the volume's second
/// life.
enum Reopen {
    /// Rebuild the store from its on-disk directory (process restart).
    Backend(StoreBackend),
    /// Keep the same store object alive and remount it.
    SameStore(Arc<dyn BlockStore>),
}

/// One matrix entry: display label, the first-life store, and how to
/// get the store back for the second life.
type MatrixEntry = (String, Arc<dyn BlockStore>, Reopen);

fn matrix(tag: &str) -> (Vec<MatrixEntry>, std::path::PathBuf) {
    let clock = SimClock::new();
    let base = store::temp_dir_for_tests(tag);
    let blocks = config().total_blocks;
    let mut out: Vec<MatrixEntry> = Vec::new();
    for backend in [
        StoreBackend::FileJournal {
            dir: base.join("file"),
        },
        StoreBackend::DedupPersistent {
            dir: base.join("dedup"),
        },
        StoreBackend::EncryptedJournal {
            dir: base.join("enc"),
            key: [0x17; 32],
        },
        // Wrapper compositions: the cache is deliberately smaller than
        // the volume so evictions and write-backs fire mid-life.
        StoreBackend::Cached {
            capacity: 32,
            inner: Box::new(StoreBackend::FileJournal {
                dir: base.join("cached"),
            }),
        },
        StoreBackend::Sharded {
            shards: 4,
            workers: false,
            inner: Box::new(StoreBackend::FileJournal {
                dir: base.join("sharded"),
            }),
        },
        // The parallel I/O engine: per-shard worker threads, alone and
        // under a write-back cache — persistence must be unchanged.
        StoreBackend::Sharded {
            shards: 4,
            workers: true,
            inner: Box::new(StoreBackend::FileJournal {
                dir: base.join("sharded-workers"),
            }),
        },
        StoreBackend::Cached {
            capacity: 32,
            inner: Box::new(StoreBackend::Sharded {
                shards: 3,
                workers: false,
                inner: Box::new(StoreBackend::FileJournal {
                    dir: base.join("cached-sharded"),
                }),
            }),
        },
        StoreBackend::Cached {
            capacity: 32,
            inner: Box::new(StoreBackend::Sharded {
                shards: 3,
                workers: true,
                inner: Box::new(StoreBackend::FileJournal {
                    dir: base.join("cached-sharded-workers"),
                }),
            }),
        },
    ] {
        out.push((
            format!("{}-reopen", backend.label()),
            backend.build(&clock, blocks),
            Reopen::Backend(backend),
        ));
    }
    for backend in [StoreBackend::SimInstant, StoreBackend::Dedup] {
        let store = backend.build(&clock, blocks);
        out.push((
            format!("{}-remount", backend.label()),
            store.clone(),
            Reopen::SameStore(store),
        ));
    }
    (out, base)
}

/// Writes `path -> data` into the filesystem, creating the file or
/// truncating an existing one first.
fn put_file(fs: &Ffs, dir: ffs::Ino, name: &str, data: &[u8]) {
    let ino = match fs.create(dir, name, 0o644, 0, 0) {
        Ok(ino) => ino,
        Err(ffs::FsError::Exists) => {
            let ino = fs.lookup(dir, name).unwrap();
            fs.setattr(
                ino,
                ffs::SetAttr {
                    size: Some(0),
                    ..Default::default()
                },
            )
            .unwrap();
            ino
        }
        Err(e) => panic!("create {name}: {e}"),
    };
    fs.write(ino, 0, data).unwrap();
}

/// Verifies every modelled file reads back byte-identical and fsck is
/// clean.
fn verify(fs: &Ffs, model: &BTreeMap<String, Vec<u8>>, label: &str) {
    fs.check()
        .unwrap_or_else(|p| panic!("{label}: fsck after mount: {p:?}"));
    for (path, data) in model {
        let ino = fs
            .resolve_path(path)
            .unwrap_or_else(|e| panic!("{label}: {path} lost: {e}"));
        let got = fs.read(ino, 0, data.len() + 1).unwrap();
        assert_eq!(&got, data, "{label}: {path} content differs after mount");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random file trees written, synced, dropped, and remounted
    /// compare byte-identical against an in-memory model, across every
    /// backend config of the matrix.
    #[test]
    fn remounted_tree_matches_model(
        ops in proptest::collection::vec((0u8..4, 0u8..10, any::<u8>(), 0u8..18), 1..20)
    ) {
        let (matrix, base) = matrix("persist-props");
        for (label, store, reopen) in matrix {
            let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
            {
                let fs = Ffs::open_or_format(store, config()).unwrap();
                let root = fs.root();
                let mut dirs = vec![root];
                for d in 0..3 {
                    dirs.push(fs.mkdir(root, &format!("d{d}"), 0o755, 0, 0).unwrap());
                }
                for (dir_sel, name, seed, len_units) in &ops {
                    let dir = dirs[*dir_sel as usize];
                    let name_s = format!("f{name}");
                    let data = content(*seed, *len_units);
                    put_file(&fs, dir, &name_s, &data);
                    let path = if *dir_sel == 0 {
                        name_s
                    } else {
                        format!("d{}/{}", *dir_sel - 1, name_s)
                    };
                    model.insert(path, data);
                }
                fs.check().unwrap();
                fs.sync().unwrap();
                // fs (and, for the persistent configs, the store) drops
                // here: the only surviving state is on disk.
            }
            let store = match reopen {
                Reopen::Backend(backend) => {
                    backend.build(&SimClock::new(), config().total_blocks)
                }
                Reopen::SameStore(store) => store,
            };
            let fs = Ffs::mount_on(store)
                .unwrap_or_else(|e| panic!("{label}: mount failed: {e}"));
            verify(&fs, &model, &label);
            // The volume stays writable after a mount.
            put_file(&fs, fs.root(), "post-mount", b"still writable");
            prop_assert_eq!(
                fs.read(fs.resolve_path("post-mount").unwrap(), 0, 32).unwrap(),
                b"still writable".to_vec(),
                "{}", &label
            );
            fs.check().unwrap();
        }
        std::fs::remove_dir_all(&base).ok();
    }
}

#[test]
#[should_panic(expected = "already holds a formatted volume")]
fn format_refuses_to_clobber_existing_volume() {
    let store: Arc<dyn BlockStore> = Arc::new(MemDisk::untimed(config().total_blocks));
    drop(Ffs::format_on(store.clone(), config()));
    let _ = Ffs::format_on(store, config());
}

#[test]
fn force_format_erases_an_existing_volume() {
    let store: Arc<dyn BlockStore> = Arc::new(MemDisk::untimed(config().total_blocks));
    {
        let fs = Ffs::format_on(store.clone(), config());
        let ino = fs.create(fs.root(), "old.dat", 0o644, 0, 0).unwrap();
        fs.write(ino, 0, b"doomed").unwrap();
    }
    let fs = Ffs::force_format_on(store, config());
    assert_eq!(fs.resolve_path("old.dat"), Err(ffs::FsError::NoEnt));
    fs.check().unwrap();
}

#[test]
fn mount_refuses_garbage() {
    // Never formatted: all zeros.
    let empty: Arc<dyn BlockStore> = Arc::new(MemDisk::untimed(64));
    assert_eq!(Ffs::mount_on(empty).err(), Some(MountError::NoSuperblock));
    // Random bytes in block 0.
    let noise: Arc<dyn BlockStore> = Arc::new(MemDisk::untimed(64));
    noise.write_block_meta(0, &vec![0xA5u8; ffs::BLOCK_SIZE]);
    assert_eq!(Ffs::mount_on(noise).err(), Some(MountError::NoSuperblock));
}

#[test]
fn mount_refuses_corrupted_superblock() {
    let store: Arc<dyn BlockStore> = Arc::new(MemDisk::untimed(config().total_blocks));
    drop(Ffs::format_on(store.clone(), config()));
    let mut sb = store.read_block_meta(0).to_vec();
    sb[13] ^= 0x80; // corrupt geometry under the checksum
    store.write_block_meta(0, &sb);
    assert_eq!(
        Ffs::mount_on(store.clone()).err(),
        Some(MountError::ChecksumMismatch)
    );
    // open_or_format must refuse too, not silently reformat.
    assert_eq!(
        Ffs::open_or_format(store, config()).err(),
        Some(MountError::ChecksumMismatch)
    );
}

#[test]
fn mount_refuses_a_volume_larger_than_its_disk() {
    let big: Arc<dyn BlockStore> = Arc::new(MemDisk::untimed(config().total_blocks));
    drop(Ffs::format_on(big.clone(), config()));
    // Copy only the superblock onto a smaller disk: geometry says 512
    // blocks, the disk has 64.
    let small: Arc<dyn BlockStore> = Arc::new(MemDisk::untimed(64));
    small.write_block_meta(0, &big.read_block_meta(0));
    assert_eq!(
        Ffs::mount_on(small).err(),
        Some(MountError::DiskTooSmall {
            volume_blocks: 512,
            disk_blocks: 64
        })
    );
}

#[test]
fn open_or_format_formats_fresh_then_mounts_existing() {
    let dir = store::temp_dir_for_tests("open-or-format");
    let backend = StoreBackend::FileJournal { dir: dir.clone() };
    let clock = SimClock::new();
    {
        let fs = Ffs::open_or_format_backend(&backend, &clock, config()).unwrap();
        let ino = fs.create(fs.root(), "keep.dat", 0o644, 0, 0).unwrap();
        fs.write(ino, 0, b"first life").unwrap();
        fs.sync().unwrap();
    }
    let fs = Ffs::open_or_format_backend(&backend, &clock, config()).unwrap();
    let ino = fs.resolve_path("keep.dat").expect("file survives reopen");
    assert_eq!(fs.read(ino, 0, 32).unwrap(), b"first life");
    fs.check().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unclean_shutdown_mounts_through_recovery_sweep() {
    // No sync before the drop: the superblock on disk is dirty, so the
    // mount must take the recovery path — and still find every file,
    // because the write-ahead journal replays complete records.
    let dir = store::temp_dir_for_tests("unclean");
    let backend = StoreBackend::FileJournal { dir: dir.clone() };
    let clock = SimClock::new();
    {
        let fs = Ffs::open_or_format_backend(&backend, &clock, config()).unwrap();
        let root = fs.root();
        let d = fs.mkdir(root, "docs", 0o755, 0, 0).unwrap();
        let a = fs.create(d, "a.txt", 0o644, 0, 0).unwrap();
        fs.write(a, 0, &content(9, 15)).unwrap();
        let b = fs.create(root, "b.txt", 0o644, 0, 0).unwrap();
        fs.write(b, 0, b"short").unwrap();
        fs.link(b, d, "b-link").unwrap();
        // Dropped without sync: "crash".
    }
    let fs = Ffs::mount_backend(&backend, &clock, config()).unwrap();
    fs.check().unwrap();
    assert_eq!(
        fs.read(fs.resolve_path("docs/a.txt").unwrap(), 0, usize::MAX >> 1)
            .unwrap(),
        content(9, 15)
    );
    assert_eq!(
        fs.read(fs.resolve_path("b.txt").unwrap(), 0, 16).unwrap(),
        b"short"
    );
    // The hard link survived with the right nlink.
    let attr = fs.getattr(fs.resolve_path("docs/b-link").unwrap()).unwrap();
    assert_eq!(attr.nlink, 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn handles_and_generations_survive_remount() {
    // NFS-style (ino, generation) handles must stay valid across a
    // reboot — that is what lets DisCFS credentials outlive the server
    // process.
    let dir = store::temp_dir_for_tests("handles");
    let backend = StoreBackend::FileJournal { dir: dir.clone() };
    let clock = SimClock::new();
    let (ino, generation) = {
        let fs = Ffs::open_or_format_backend(&backend, &clock, config()).unwrap();
        let ino = fs.create(fs.root(), "h.dat", 0o644, 0, 0).unwrap();
        let generation = fs.getattr(ino).unwrap().generation;
        fs.sync().unwrap();
        (ino, generation)
    };
    let fs = Ffs::mount_backend(&backend, &clock, config()).unwrap();
    fs.validate_handle(ino, generation)
        .expect("handle valid after remount");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dedup_stats_survive_reopen_through_the_filesystem() {
    let dir = store::temp_dir_for_tests("dedup-fs");
    let backend = StoreBackend::DedupPersistent { dir: dir.clone() };
    let clock = SimClock::new();
    let hits_before = {
        let fs = Ffs::open_or_format_backend(&backend, &clock, config()).unwrap();
        let block = vec![0xABu8; ffs::BLOCK_SIZE];
        for i in 0..6 {
            let ino = fs
                .create(fs.root(), &format!("copy{i}.dat"), 0o644, 0, 0)
                .unwrap();
            fs.write(ino, 0, &block).unwrap();
        }
        fs.sync().unwrap();
        let stats = fs.disk().stats();
        assert!(
            stats.dedup_hits >= 5,
            "identical files must dedup: {stats:?}"
        );
        stats.dedup_hits
    };
    let fs = Ffs::mount_backend(&backend, &clock, config()).unwrap();
    let stats = fs.disk().stats();
    assert_eq!(
        stats.dedup_hits, hits_before,
        "dedup counters must survive the reopen"
    );
    assert!(stats.unique_blocks > 0);
    fs.check().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn encrypted_journal_requires_the_same_key() {
    let dir = store::temp_dir_for_tests("enc-key");
    let clock = SimClock::new();
    {
        let backend = StoreBackend::EncryptedJournal {
            dir: dir.clone(),
            key: [1; 32],
        };
        let fs = Ffs::open_or_format_backend(&backend, &clock, config()).unwrap();
        let ino = fs.create(fs.root(), "secret.dat", 0o644, 0, 0).unwrap();
        fs.write(ino, 0, b"classified").unwrap();
        fs.sync().unwrap();
    }
    // Right key: mounts and reads.
    let good = StoreBackend::EncryptedJournal {
        dir: dir.clone(),
        key: [1; 32],
    };
    let fs = Ffs::mount_backend(&good, &clock, config()).unwrap();
    assert_eq!(
        fs.read(fs.resolve_path("secret.dat").unwrap(), 0, 16)
            .unwrap(),
        b"classified"
    );
    drop(fs);
    // Wrong key: the superblock decrypts to noise and the mount fails
    // closed instead of serving garbage.
    let bad = StoreBackend::EncryptedJournal {
        dir: dir.clone(),
        key: [2; 32],
    };
    assert!(Ffs::mount_backend(&bad, &clock, config()).is_err());
    // open_or_format with the wrong key must ALSO fail closed: noise
    // is not a virgin store, so it must never format (= destroy) the
    // volume just because the superblock did not decrypt.
    assert!(matches!(
        Ffs::open_or_format_backend(&bad, &clock, config()),
        Err(MountError::CorruptVolume(_))
    ));
    // The volume is untouched: the right key still mounts and reads.
    let fs = Ffs::mount_backend(&good, &clock, config()).unwrap();
    assert_eq!(
        fs.read(fs.resolve_path("secret.dat").unwrap(), 0, 16)
            .unwrap(),
        b"classified"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_operations_do_not_dirty_a_clean_volume() {
    // A no-op failure (create of an existing name, unlink/rmdir of a
    // missing one) changes nothing, so it must not flip the durable
    // clean flag — otherwise the next mount pays a full recovery
    // sweep for a volume identical to its synced state. Byte 64 of
    // block 0 is the documented clean flag.
    let store: Arc<dyn BlockStore> = Arc::new(MemDisk::untimed(config().total_blocks));
    let fs = Ffs::format_on(store.clone(), config());
    let root = fs.root();
    fs.create(root, "present.dat", 0o644, 0, 0).unwrap();
    fs.sync().unwrap();
    assert_eq!(store.read_block_meta(0)[64], 1, "synced volume is clean");

    assert_eq!(
        fs.create(root, "present.dat", 0o644, 0, 0),
        Err(ffs::FsError::Exists)
    );
    assert_eq!(fs.unlink(root, "missing"), Err(ffs::FsError::NoEnt));
    assert_eq!(fs.rmdir(root, "missing"), Err(ffs::FsError::NoEnt));
    assert_eq!(fs.lookup(root, "missing"), Err(ffs::FsError::NoEnt));
    assert_eq!(
        store.read_block_meta(0)[64],
        1,
        "failed no-ops must leave the volume clean"
    );

    fs.create(root, "fresh.dat", 0o644, 0, 0).unwrap();
    assert_eq!(
        store.read_block_meta(0)[64],
        0,
        "a real mutation flips the dirty marker"
    );
    fs.check().unwrap();
}

#[test]
fn sync_traffic_does_not_skew_dedup_workload_stats() {
    // Superblock/bitmap rewrites are metadata: on the dedup backends
    // they must be stored but not counted, or a sync-heavy run would
    // report a dedup ratio driven by its own bookkeeping.
    let clock = SimClock::new();
    let fs = Ffs::format_backend(&StoreBackend::Dedup, &clock, config());
    let ino = fs.create(fs.root(), "data.dat", 0o644, 0, 0).unwrap();
    fs.write(ino, 0, &content(5, 10)).unwrap();
    fs.sync().unwrap();
    let before = fs.disk().stats();
    for _ in 0..5 {
        // Dirty the volume with a metadata-only change, then sync.
        fs.setattr(
            ino,
            ffs::SetAttr {
                mode: Some(0o600),
                ..Default::default()
            },
        )
        .unwrap();
        fs.sync().unwrap();
    }
    let after = fs.disk().stats();
    assert_eq!(after.writes, before.writes, "sync churn must not count");
    assert_eq!(after.dedup_hits, before.dedup_hits);
    assert_eq!(after.zero_elisions, before.zero_elisions);
    fs.check().unwrap();
}

#[test]
fn open_or_format_refuses_unrecognized_nonzero_block_zero() {
    let store: Arc<dyn BlockStore> = Arc::new(MemDisk::untimed(config().total_blocks));
    store.write_block_meta(0, &vec![0x5Au8; ffs::BLOCK_SIZE]);
    assert!(matches!(
        Ffs::open_or_format(store, config()),
        Err(MountError::CorruptVolume(_))
    ));
}

#[test]
fn recovery_rewrites_a_directory_whose_block_was_stolen() {
    // A corrupt image can alias one data block from two inodes. When
    // the earlier inode (a file) wins the claim in the recovery sweep,
    // the directory that loses its block must be rewritten from its
    // parsed entries — its children must not silently vanish.
    let store: Arc<dyn BlockStore> = Arc::new(MemDisk::untimed(config().total_blocks));
    let (file_ino, dir_ino) = {
        let fs = Ffs::format_on(store.clone(), config());
        let file_ino = fs.create(fs.root(), "thief.dat", 0o644, 0, 0).unwrap();
        fs.write(file_ino, 0, b"short").unwrap();
        let dir_ino = fs.mkdir(fs.root(), "d", 0o755, 0, 0).unwrap();
        let child = fs.create(dir_ino, "child.dat", 0o644, 0, 0).unwrap();
        fs.write(child, 0, b"kept").unwrap();
        (file_ino, dir_ino)
        // No sync: dirty superblock, recovery path on mount.
    };
    assert!(file_ino < dir_ino, "the thief must claim its block first");
    // Documented layout: itable_start is the u64 at superblock byte
    // 40; 32 records of 256 bytes per table block; direct[0] at record
    // offset 52.
    let sb = store.read_block_meta(0);
    let itable_start = u64::from_be_bytes(sb[40..48].try_into().unwrap());
    let rec = |ino: u32| (itable_start + ino as u64 / 32, (ino as usize % 32) * 256);
    let (dblk, doff) = rec(dir_ino);
    let dir_direct0 = {
        let b = store.read_block_meta(dblk);
        u32::from_be_bytes(b[doff + 52..doff + 56].try_into().unwrap())
    };
    assert_ne!(dir_direct0, 0, "directory has a data block to steal");
    let (fblk, foff) = rec(file_ino);
    let mut b = store.read_block_meta(fblk).to_vec();
    b[foff + 52..foff + 56].copy_from_slice(&dir_direct0.to_be_bytes());
    store.write_block_meta(fblk, &b);

    let fs = Ffs::mount_on(store).expect("mount with a doubly-referenced block");
    fs.check()
        .unwrap_or_else(|p| panic!("fsck after stolen-block recovery: {p:?}"));
    let child = fs
        .resolve_path("d/child.dat")
        .expect("child survives the directory rewrite");
    assert_eq!(fs.read(child, 0, 8).unwrap(), b"kept");
}

#[test]
fn recovery_survives_wild_pointers_in_the_inode_table() {
    // Only block 0 is checksummed: a corrupt image can carry an
    // out-of-range block pointer inside a directory inode. The
    // recovery sweep must treat it as a hole and repair, not panic
    // the block store.
    let store: Arc<dyn BlockStore> = Arc::new(MemDisk::untimed(config().total_blocks));
    {
        let fs = Ffs::format_on(store.clone(), config());
        let d = fs.mkdir(fs.root(), "d", 0o755, 0, 0).unwrap();
        let f = fs.create(d, "f.dat", 0o644, 0, 0).unwrap();
        fs.write(f, 0, b"inside the doomed subtree").unwrap();
        // No sync: the superblock stays dirty, forcing the recovery
        // path on mount.
    }
    // Locate the inode table via the documented superblock layout
    // (itable_start is the u64 at byte 40) and smash the root
    // directory's first direct pointer (record offset 256 for inode 1,
    // field offset 52) to a block far outside the volume.
    let sb = store.read_block_meta(0);
    let itable_start = u64::from_be_bytes(sb[40..48].try_into().unwrap());
    let mut block = store.read_block_meta(itable_start).to_vec();
    block[256 + 52..256 + 56].copy_from_slice(&u32::MAX.to_be_bytes());
    store.write_block_meta(itable_start, &block);

    let fs = Ffs::mount_on(store).expect("recovery must not panic on wild pointers");
    fs.check()
        .unwrap_or_else(|p| panic!("fsck after wild-pointer recovery: {p:?}"));
    // The root's entries lived behind the smashed pointer, so the
    // subtree is gone — but the volume is consistent and writable.
    assert_eq!(fs.resolve_path("d"), Err(ffs::FsError::NoEnt));
    let ino = fs.create(fs.root(), "fresh.dat", 0o644, 0, 0).unwrap();
    fs.write(ino, 0, b"recovered").unwrap();
    fs.check().unwrap();
}
