//! Thread-safety of the filesystem: concurrent operations from many
//! threads must serialize correctly and leave a consistent volume.

use std::sync::Arc;

use ffs::{Ffs, FsConfig};

#[test]
fn concurrent_writers_to_distinct_files() {
    let fs = Arc::new(Ffs::format_in_memory(FsConfig::small()));
    let mut handles = Vec::new();
    for t in 0..8u32 {
        let fs = fs.clone();
        handles.push(std::thread::spawn(move || {
            let ino = fs
                .create(fs.root(), &format!("t{t}.dat"), 0o644, t, t)
                .expect("create");
            for round in 0..20u64 {
                let data = vec![(t as u8).wrapping_add(round as u8); 1000];
                fs.write(ino, round * 1000, &data).expect("write");
            }
            ino
        }));
    }
    let inos: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Every file has the full 20 KB with its own pattern.
    for (t, ino) in inos.iter().enumerate() {
        let attr = fs.getattr(*ino).unwrap();
        assert_eq!(attr.size, 20_000);
        let tail = fs.read(*ino, 19_000, 1000).unwrap();
        assert!(tail.iter().all(|&b| b == (t as u8).wrapping_add(19)));
    }
    fs.check().expect("consistent after concurrent writers");
}

#[test]
fn concurrent_create_unlink_same_directory() {
    let fs = Arc::new(Ffs::format_in_memory(FsConfig::small()));
    let mut handles = Vec::new();
    for t in 0..6u32 {
        let fs = fs.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..25u32 {
                let name = format!("worker{t}-{round}");
                fs.create(fs.root(), &name, 0o644, 0, 0).expect("create");
                if round % 2 == 0 {
                    fs.unlink(fs.root(), &name).expect("unlink");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // 6 workers × 25 created − 6 × 13 deleted (even rounds 0..24).
    let remaining = fs
        .readdir(fs.root())
        .unwrap()
        .iter()
        .filter(|e| e.name != "." && e.name != "..")
        .count();
    assert_eq!(remaining, 6 * 25 - 6 * 13);
    fs.check().expect("consistent after create/unlink races");
}

#[test]
fn concurrent_readers_while_writing() {
    let fs = Arc::new(Ffs::format_in_memory(FsConfig::small()));
    let ino = fs.create(fs.root(), "shared", 0o644, 0, 0).unwrap();
    fs.write(ino, 0, &vec![0u8; 8192]).unwrap();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let read_count = Arc::new(std::sync::atomic::AtomicU32::new(0));
    let mut readers = Vec::new();
    for _ in 0..4 {
        let fs = fs.clone();
        let stop = stop.clone();
        let read_count = read_count.clone();
        readers.push(std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let data = fs.read(ino, 0, 8192).expect("read");
                // Writers fill uniformly, so any snapshot is uniform.
                assert!(data.windows(2).all(|w| w[0] == w[1]), "torn read observed");
                read_count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }));
    }
    for value in 1..=50u8 {
        fs.write(ino, 0, &vec![value; 8192]).expect("write");
    }
    // Don't stop until every reader thread had a chance to run at
    // least once — the 50 writes above can finish before the OS even
    // schedules the readers, which used to make this test flaky.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while read_count.load(std::sync::atomic::Ordering::Relaxed) < 4
        && std::time::Instant::now() < deadline
    {
        std::thread::yield_now();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in readers {
        h.join().unwrap();
    }
    assert!(read_count.load(std::sync::atomic::Ordering::Relaxed) > 0);
    fs.check().unwrap();
}

#[test]
fn allocation_under_contention_never_double_allocates() {
    // Hammer allocation/free from several threads on a small volume;
    // the fsck double-reference check is the oracle.
    let fs = Arc::new(Ffs::format_in_memory(FsConfig {
        total_blocks: 256,
        inode_count: 128,
    }));
    let mut handles = Vec::new();
    for t in 0..4u32 {
        let fs = fs.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..15u32 {
                let name = format!("c{t}-{round}");
                if let Ok(ino) = fs.create(fs.root(), &name, 0o644, 0, 0) {
                    // Write enough to claim several blocks; ignore NoSpace.
                    let _ = fs.write(ino, 0, &vec![t as u8; 3 * 8192]);
                    if round % 3 == 0 {
                        let _ = fs.unlink(fs.root(), &name);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    fs.check().expect("no double allocation under contention");
}
