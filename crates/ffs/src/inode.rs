//! On-disk inode format.
//!
//! Inodes are 256 bytes, 32 per 8 KB block. Geometry: 12 direct block
//! pointers, one single-indirect and one double-indirect pointer; with
//! 8 KB blocks and 4-byte pointers that allows files up to
//! 12·8K + 2048·8K + 2048²·8K ≈ 32 GB — far beyond anything the
//! benchmarks need. Pointer value 0 means "hole" (block 0 holds the
//! superblock and can never be file data).

use crate::disk::BLOCK_SIZE;

/// Size of one serialized inode.
pub const INODE_SIZE: usize = 256;
/// Inodes per filesystem block.
pub const INODES_PER_BLOCK: usize = BLOCK_SIZE / INODE_SIZE;
/// Number of direct block pointers.
pub const NDIRECT: usize = 12;
/// Pointers per indirect block.
pub const PTRS_PER_BLOCK: usize = BLOCK_SIZE / 4;

/// File type, stored in the high bits of `mode` like Unix `S_IFMT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
}

impl FileKind {
    /// The `S_IFMT` bits for this kind.
    pub fn mode_bits(self) -> u32 {
        match self {
            FileKind::Regular => 0o100000,
            FileKind::Directory => 0o040000,
            FileKind::Symlink => 0o120000,
        }
    }

    /// Extracts the kind from a full mode word.
    pub fn from_mode(mode: u32) -> Option<FileKind> {
        match mode & 0o170000 {
            0o100000 => Some(FileKind::Regular),
            0o040000 => Some(FileKind::Directory),
            0o120000 => Some(FileKind::Symlink),
            _ => None,
        }
    }
}

/// An in-memory inode image (serialized to 256 bytes on disk).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// Type + permission bits.
    pub mode: u32,
    /// Owner user id.
    pub uid: u32,
    /// Owner group id.
    pub gid: u32,
    /// Link count.
    pub nlink: u32,
    /// File size in bytes.
    pub size: u64,
    /// Access time (filesystem ticks).
    pub atime: u64,
    /// Modification time (filesystem ticks).
    pub mtime: u64,
    /// Change time (filesystem ticks).
    pub ctime: u64,
    /// Generation number: increments each time the inode is reused, so
    /// stale NFS handles can be detected (the fix the paper's §5 calls
    /// for).
    pub generation: u32,
    /// Direct block pointers.
    pub direct: [u32; NDIRECT],
    /// Single-indirect block pointer.
    pub indirect: u32,
    /// Double-indirect block pointer.
    pub double_indirect: u32,
}

impl Inode {
    /// An empty (freed) inode with a retained generation number.
    pub fn empty(generation: u32) -> Inode {
        Inode {
            mode: 0,
            uid: 0,
            gid: 0,
            nlink: 0,
            size: 0,
            atime: 0,
            mtime: 0,
            ctime: 0,
            generation,
            direct: [0; NDIRECT],
            indirect: 0,
            double_indirect: 0,
        }
    }

    /// Whether the inode is allocated (mode 0 means free).
    pub fn is_allocated(&self) -> bool {
        self.mode != 0
    }

    /// The file kind.
    ///
    /// # Panics
    ///
    /// Panics on a free inode; callers check allocation first.
    pub fn kind(&self) -> FileKind {
        FileKind::from_mode(self.mode).expect("allocated inode has a valid kind")
    }

    /// Serializes to the on-disk form.
    pub fn to_bytes(&self) -> [u8; INODE_SIZE] {
        let mut out = [0u8; INODE_SIZE];
        out[0..4].copy_from_slice(&self.mode.to_be_bytes());
        out[4..8].copy_from_slice(&self.uid.to_be_bytes());
        out[8..12].copy_from_slice(&self.gid.to_be_bytes());
        out[12..16].copy_from_slice(&self.nlink.to_be_bytes());
        out[16..24].copy_from_slice(&self.size.to_be_bytes());
        out[24..32].copy_from_slice(&self.atime.to_be_bytes());
        out[32..40].copy_from_slice(&self.mtime.to_be_bytes());
        out[40..48].copy_from_slice(&self.ctime.to_be_bytes());
        out[48..52].copy_from_slice(&self.generation.to_be_bytes());
        for (i, ptr) in self.direct.iter().enumerate() {
            out[52 + i * 4..56 + i * 4].copy_from_slice(&ptr.to_be_bytes());
        }
        out[100..104].copy_from_slice(&self.indirect.to_be_bytes());
        out[104..108].copy_from_slice(&self.double_indirect.to_be_bytes());
        out
    }

    /// Deserializes from the on-disk form.
    pub fn from_bytes(data: &[u8]) -> Inode {
        assert!(data.len() >= INODE_SIZE, "short inode record");
        let u32_at =
            |off: usize| u32::from_be_bytes(data[off..off + 4].try_into().expect("4 bytes"));
        let u64_at =
            |off: usize| u64::from_be_bytes(data[off..off + 8].try_into().expect("8 bytes"));
        let mut direct = [0u32; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = u32_at(52 + i * 4);
        }
        Inode {
            mode: u32_at(0),
            uid: u32_at(4),
            gid: u32_at(8),
            nlink: u32_at(12),
            size: u64_at(16),
            atime: u64_at(24),
            mtime: u64_at(32),
            ctime: u64_at(40),
            generation: u32_at(48),
            direct,
            indirect: u32_at(100),
            double_indirect: u32_at(104),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut ino = Inode::empty(7);
        ino.mode = FileKind::Regular.mode_bits() | 0o644;
        ino.uid = 1000;
        ino.gid = 100;
        ino.nlink = 2;
        ino.size = 123456789;
        ino.atime = 1;
        ino.mtime = 2;
        ino.ctime = 3;
        ino.direct[0] = 42;
        ino.direct[11] = 99;
        ino.indirect = 1000;
        ino.double_indirect = 2000;
        let bytes = ino.to_bytes();
        assert_eq!(Inode::from_bytes(&bytes), ino);
    }

    #[test]
    fn kind_bits() {
        assert_eq!(FileKind::from_mode(0o100644), Some(FileKind::Regular));
        assert_eq!(FileKind::from_mode(0o040755), Some(FileKind::Directory));
        assert_eq!(FileKind::from_mode(0o120777), Some(FileKind::Symlink));
        assert_eq!(FileKind::from_mode(0o644), None);
    }

    #[test]
    fn empty_is_free() {
        assert!(!Inode::empty(3).is_allocated());
        assert_eq!(Inode::empty(3).generation, 3);
    }

    #[test]
    fn geometry_fits_block() {
        assert_eq!(INODES_PER_BLOCK * INODE_SIZE, BLOCK_SIZE);
        assert_eq!(PTRS_PER_BLOCK, 2048);
    }
}
