//! `fsck`-style consistency checking.
//!
//! [`Ffs::check`] walks the whole filesystem and verifies the structural
//! invariants. It backs the property tests: after any random sequence
//! of operations the filesystem must still check clean.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::disk::BLOCK_SIZE;
use crate::fs::{Ffs, Ino};
use crate::inode::{FileKind, NDIRECT, PTRS_PER_BLOCK};

impl Ffs {
    /// Verifies filesystem invariants, returning a list of violations.
    ///
    /// Checked invariants:
    ///
    /// 1. The root inode (1) is an allocated directory; inode 0 stays
    ///    reserved.
    /// 2. Every block referenced by an allocated inode lies in the data
    ///    area, is marked allocated, and is referenced exactly once.
    /// 3. No allocated data block is unreferenced (no leaks) and the
    ///    free counters match the bitmaps.
    /// 4. Every allocated inode is reachable from the root; directory
    ///    `.`/`..` entries are correct; entries point at allocated
    ///    inodes; no duplicate names.
    /// 5. `nlink` equals the number of directory entries referencing
    ///    the inode (counting `.` and `..`).
    /// 6. No file references blocks beyond its size.
    /// 7. Block 0 holds a valid superblock whose geometry matches the
    ///    mounted layout; when the volume is clean (no mutation since
    ///    the last sync), the durable on-disk bitmaps equal the
    ///    in-memory ones.
    ///
    /// # Errors
    ///
    /// A vector of human-readable violation descriptions.
    pub fn check(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        let (inode_bitmap, block_bitmap, free_blocks, free_inodes, dirty) = self.bitmaps();
        let data_start = self.data_start();

        // Superblock invariants.
        match crate::sb::Superblock::from_block(&self.disk.read_block_meta(0)) {
            Err(e) => problems.push(format!("superblock unreadable: {e}")),
            Ok(sb) => {
                let layout = self.layout();
                if sb.total_blocks != layout.total_blocks
                    || sb.inode_count != self.inode_count
                    || sb.ibmap_start != layout.ibmap_start
                    || sb.bbmap_start != layout.bbmap_start
                    || sb.itable_start != layout.itable_start
                    || sb.data_start != layout.data_start
                {
                    problems.push("superblock geometry disagrees with mounted layout".to_string());
                }
                if sb.clean == dirty {
                    problems.push(format!(
                        "superblock clean flag {} disagrees with in-memory dirty state {dirty}",
                        sb.clean
                    ));
                }
                if !dirty {
                    let durable_inodes =
                        self.read_bitmap_region(layout.ibmap_start, self.inode_count as u64);
                    let durable_blocks =
                        self.read_bitmap_region(layout.bbmap_start, layout.total_blocks);
                    if durable_inodes != inode_bitmap {
                        problems.push("clean volume: durable inode bitmap is stale".to_string());
                    }
                    if durable_blocks != block_bitmap {
                        problems.push("clean volume: durable block bitmap is stale".to_string());
                    }
                }
            }
        }

        if !inode_bitmap[0] {
            problems.push("inode 0 must stay reserved".to_string());
        }
        if !inode_bitmap[1] {
            problems.push("root inode not allocated".to_string());
        }

        // Pass 1: block references from every allocated inode.
        let mut block_refs: HashMap<u64, Vec<Ino>> = HashMap::new();
        let mut reference = |block: u64, ino: Ino, problems: &mut Vec<String>| {
            if block < data_start || block >= block_bitmap.len() as u64 {
                problems.push(format!("inode {ino} references out-of-range block {block}"));
                return;
            }
            if !block_bitmap[block as usize] {
                problems.push(format!("inode {ino} references free block {block}"));
            }
            block_refs.entry(block).or_default().push(ino);
        };

        let mut allocated_inodes = Vec::new();
        for ino in 1..self.inode_count {
            if !inode_bitmap[ino as usize] {
                continue;
            }
            let inode = self.read_inode(ino);
            if !inode.is_allocated() {
                problems.push(format!("inode {ino} in bitmap but record is free"));
                continue;
            }
            if FileKind::from_mode(inode.mode).is_none() {
                problems.push(format!("inode {ino} has invalid mode {:o}", inode.mode));
                continue;
            }
            allocated_inodes.push(ino);

            let max_fbn = inode.size.div_ceil(BLOCK_SIZE as u64);
            let check_fbn = |fbn: u64, ino: Ino, problems: &mut Vec<String>| {
                if fbn >= max_fbn {
                    problems.push(format!(
                        "inode {ino} has block at file offset {fbn} beyond size {}",
                        inode.size
                    ));
                }
            };

            for (slot, &ptr) in inode.direct.iter().enumerate() {
                if ptr != 0 {
                    reference(ptr as u64, ino, &mut problems);
                    check_fbn(slot as u64, ino, &mut problems);
                }
            }
            if inode.indirect != 0 {
                reference(inode.indirect as u64, ino, &mut problems);
                let table = self.read_ptr_block_for_check(inode.indirect as u64);
                for (i, &ptr) in table.iter().enumerate() {
                    if ptr != 0 {
                        reference(ptr as u64, ino, &mut problems);
                        check_fbn((NDIRECT + i) as u64, ino, &mut problems);
                    }
                }
            }
            if inode.double_indirect != 0 {
                reference(inode.double_indirect as u64, ino, &mut problems);
                let outer = self.read_ptr_block_for_check(inode.double_indirect as u64);
                for (o, &mid) in outer.iter().enumerate() {
                    if mid == 0 {
                        continue;
                    }
                    reference(mid as u64, ino, &mut problems);
                    let table = self.read_ptr_block_for_check(mid as u64);
                    for (i, &ptr) in table.iter().enumerate() {
                        if ptr != 0 {
                            reference(ptr as u64, ino, &mut problems);
                            check_fbn(
                                (NDIRECT + PTRS_PER_BLOCK + o * PTRS_PER_BLOCK + i) as u64,
                                ino,
                                &mut problems,
                            );
                        }
                    }
                }
            }
        }

        // Double references.
        for (block, owners) in &block_refs {
            if owners.len() > 1 {
                problems.push(format!(
                    "block {block} referenced {} times: {owners:?}",
                    owners.len()
                ));
            }
        }

        // Leaks and counter consistency.
        let mut allocated_data_blocks = 0u64;
        for block in data_start..block_bitmap.len() as u64 {
            let marked = block_bitmap[block as usize];
            let referenced = block_refs.contains_key(&block);
            if marked {
                allocated_data_blocks += 1;
            }
            if marked && !referenced {
                problems.push(format!("block {block} allocated but unreferenced (leak)"));
            }
        }
        let total_data = block_bitmap.len() as u64 - data_start;
        if free_blocks != total_data - allocated_data_blocks {
            problems.push(format!(
                "free block counter {free_blocks} disagrees with bitmap {}",
                total_data - allocated_data_blocks
            ));
        }
        let allocated_count = inode_bitmap.iter().skip(1).filter(|&&b| b).count() as u32;
        if free_inodes != self.inode_count - 1 - allocated_count {
            problems.push(format!(
                "free inode counter {free_inodes} disagrees with bitmap {}",
                self.inode_count - 1 - allocated_count
            ));
        }

        // Pass 2: directory tree walk from the root.
        let mut entry_refs: HashMap<Ino, u32> = HashMap::new();
        let mut reachable: HashSet<Ino> = HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back((1u32, 1u32)); // (dir, parent)
        reachable.insert(1);
        while let Some((dir, parent)) = queue.pop_front() {
            let entries = match self.readdir(dir) {
                Ok(e) => e,
                Err(e) => {
                    problems.push(format!("directory {dir} unreadable: {e}"));
                    continue;
                }
            };
            let mut seen_names = HashSet::new();
            let mut has_dot = false;
            let mut has_dotdot = false;
            for entry in &entries {
                if !seen_names.insert(entry.name.clone()) {
                    problems.push(format!(
                        "directory {dir} has duplicate entry {:?}",
                        entry.name
                    ));
                }
                *entry_refs.entry(entry.ino).or_insert(0) += 1;
                match entry.name.as_str() {
                    "." => {
                        has_dot = true;
                        if entry.ino != dir {
                            problems.push(format!("directory {dir} '.' points to {}", entry.ino));
                        }
                    }
                    ".." => {
                        has_dotdot = true;
                        if entry.ino != parent {
                            problems.push(format!(
                                "directory {dir} '..' points to {} (parent {parent})",
                                entry.ino
                            ));
                        }
                    }
                    _ => {
                        if entry.ino == 0
                            || entry.ino >= self.inode_count
                            || !inode_bitmap[entry.ino as usize]
                        {
                            problems.push(format!(
                                "directory {dir} entry {:?} points to bad inode {}",
                                entry.name, entry.ino
                            ));
                            continue;
                        }
                        let child = self.read_inode(entry.ino);
                        if child.kind() == FileKind::Directory {
                            if !reachable.insert(entry.ino) {
                                problems.push(format!(
                                    "directory {} linked from two parents",
                                    entry.ino
                                ));
                            } else {
                                queue.push_back((entry.ino, dir));
                            }
                        } else {
                            reachable.insert(entry.ino);
                        }
                    }
                }
            }
            if !has_dot || !has_dotdot {
                problems.push(format!("directory {dir} missing '.' or '..'"));
            }
        }

        // Orphans and link counts.
        for &ino in &allocated_inodes {
            if !reachable.contains(&ino) {
                problems.push(format!("inode {ino} allocated but unreachable from root"));
            }
            let inode = self.read_inode(ino);
            let refs = entry_refs.get(&ino).copied().unwrap_or(0);
            if inode.nlink != refs {
                problems.push(format!(
                    "inode {ino} nlink {} but {} directory references",
                    inode.nlink, refs
                ));
            }
        }

        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// Reads a pointer block without touching the timing model (checker
    /// traffic must not perturb benchmarks).
    fn read_ptr_block_for_check(&self, block: u64) -> Vec<u32> {
        let data = self.disk.read_block_meta(block);
        data.chunks_exact(4)
            .map(|c| u32::from_be_bytes(c.try_into().expect("4 bytes")))
            .collect()
    }
}
