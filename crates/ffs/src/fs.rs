//! Filesystem operations: allocation, block mapping, directories, and
//! the inode-level API the NFS layer exposes.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::disk::{zero_block, BlockStore, MemDisk, StoreBackend, BLOCK_SIZE};
use crate::inode::{FileKind, Inode, INODES_PER_BLOCK, INODE_SIZE, NDIRECT, PTRS_PER_BLOCK};
use crate::sb::{MountError, Superblock};
use crate::FsError;

/// An inode number. 0 is invalid; 1 is the root directory.
pub type Ino = u32;

/// Maximum file-name length in a directory entry.
const MAX_NAME: usize = 255;

/// Filesystem geometry parameters.
#[derive(Debug, Clone, Copy)]
pub struct FsConfig {
    /// Total blocks on the device (8 KB each).
    pub total_blocks: u64,
    /// Number of inodes in the table.
    pub inode_count: u32,
}

impl FsConfig {
    /// 16 MB / 1024 inodes: quick unit tests.
    pub fn small() -> FsConfig {
        FsConfig {
            total_blocks: 2048,
            inode_count: 1024,
        }
    }

    /// 256 MB / 8192 inodes: enough for the 100 MB Bonnie file.
    pub fn standard() -> FsConfig {
        FsConfig {
            total_blocks: 32768,
            inode_count: 8192,
        }
    }
}

/// Bits per bitmap block.
const BITS_PER_BLOCK: u64 = (BLOCK_SIZE * 8) as u64;

/// Static block layout derived from an [`FsConfig`].
///
/// Block 0 is the checksummed superblock (see [`crate::sb`]); the
/// inode and block bitmaps follow it, then the inode table, then data.
/// The bitmaps are the durable copies written by [`Ffs::sync`] — the
/// live copies stay in memory and the inode table remains
/// authoritative, so a mount of an uncleanly closed volume rebuilds
/// them with a recovery sweep instead of trusting stale bits.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Layout {
    pub(crate) total_blocks: u64,
    pub(crate) ibmap_start: u64,
    pub(crate) bbmap_start: u64,
    pub(crate) itable_start: u64,
    pub(crate) data_start: u64,
}

impl Layout {
    fn new(config: &FsConfig) -> Layout {
        let ibmap_start = 1;
        let ibmap_blocks = (config.inode_count as u64).div_ceil(BITS_PER_BLOCK);
        let bbmap_start = ibmap_start + ibmap_blocks;
        let bbmap_blocks = config.total_blocks.div_ceil(BITS_PER_BLOCK);
        let itable_start = bbmap_start + bbmap_blocks;
        let itable_blocks = (config.inode_count as u64).div_ceil(INODES_PER_BLOCK as u64);
        let data_start = itable_start + itable_blocks;
        Layout {
            total_blocks: config.total_blocks,
            ibmap_start,
            bbmap_start,
            itable_start,
            data_start,
        }
    }

    fn superblock(&self, inode_count: u32, tick: u64, clean: bool) -> Superblock {
        Superblock {
            total_blocks: self.total_blocks,
            inode_count,
            ibmap_start: self.ibmap_start,
            bbmap_start: self.bbmap_start,
            itable_start: self.itable_start,
            data_start: self.data_start,
            tick,
            clean,
        }
    }
}

/// Mutable allocation state (the "buffer cache" view of the bitmaps).
struct FsInner {
    inode_bitmap: Vec<bool>,
    block_bitmap: Vec<bool>,
    free_blocks: u64,
    free_inodes: u32,
    /// Monotonic tick used for atime/mtime/ctime (deterministic).
    tick: u64,
    /// Rotating allocation hint for data blocks.
    alloc_hint: u64,
    /// Whether in-memory state has diverged from the on-disk bitmaps
    /// since the last [`Ffs::sync`] (mirrors the superblock's `clean`
    /// flag, inverted).
    dirty: bool,
}

impl FsInner {
    /// Empty state for a volume about to be mounted: bitmaps all
    /// clear, counters zero, resuming the clock past `tick`.
    fn cold(layout: &Layout, inode_count: u32, tick: u64) -> FsInner {
        FsInner {
            inode_bitmap: vec![false; inode_count as usize],
            block_bitmap: vec![false; layout.total_blocks as usize],
            free_blocks: 0,
            free_inodes: 0,
            tick,
            alloc_hint: layout.data_start,
            dirty: false,
        }
    }
}

/// File attributes as reported by [`Ffs::getattr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attr {
    /// Inode number.
    pub ino: Ino,
    /// File kind.
    pub kind: FileKind,
    /// Permission bits (low 12 bits).
    pub mode: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Hard-link count.
    pub nlink: u32,
    /// Size in bytes.
    pub size: u64,
    /// Access time (ticks).
    pub atime: u64,
    /// Modification time (ticks).
    pub mtime: u64,
    /// Change time (ticks).
    pub ctime: u64,
    /// Inode generation (for stale-handle detection).
    pub generation: u32,
}

/// Attribute updates for [`Ffs::setattr`]; `None` leaves a field alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct SetAttr {
    /// New permission bits.
    pub mode: Option<u32>,
    /// New owner uid.
    pub uid: Option<u32>,
    /// New owner gid.
    pub gid: Option<u32>,
    /// New size (truncate/extend).
    pub size: Option<u64>,
    /// New access time.
    pub atime: Option<u64>,
    /// New modification time.
    pub mtime: Option<u64>,
}

/// One directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name.
    pub name: String,
    /// Target inode.
    pub ino: Ino,
}

/// Filesystem usage statistics ([`Ffs::statfs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsStats {
    /// Block size in bytes.
    pub block_size: u32,
    /// Total data blocks.
    pub total_blocks: u64,
    /// Free data blocks.
    pub free_blocks: u64,
    /// Total inodes.
    pub total_inodes: u32,
    /// Free inodes.
    pub free_inodes: u32,
}

/// The filesystem, generic over its storage backend via the
/// [`BlockStore`] trait (dyn dispatch; block I/O dominates the call
/// cost).
pub struct Ffs {
    pub(crate) disk: Arc<dyn BlockStore>,
    pub(crate) inode_count: u32,
    layout: Layout,
    inner: Mutex<FsInner>,
}

/// Maximum file size supported by the pointer geometry.
fn max_file_size() -> u64 {
    ((NDIRECT + PTRS_PER_BLOCK + PTRS_PER_BLOCK * PTRS_PER_BLOCK) as u64) * BLOCK_SIZE as u64
}

fn validate_name(name: &str) -> Result<(), FsError> {
    if name.is_empty()
        || name.len() > MAX_NAME
        || name.contains('/')
        || name.contains('\0')
        || name == "."
        || name == ".."
    {
        return Err(FsError::BadName);
    }
    Ok(())
}

impl Ffs {
    /// Formats a fresh filesystem on the simulated disk `disk`
    /// (compatibility shim over [`Ffs::format_on`]).
    ///
    /// # Panics
    ///
    /// Panics when the disk is too small for the requested inode table.
    pub fn format(disk: MemDisk, config: FsConfig) -> Ffs {
        Ffs::format_on(Arc::new(disk), config)
    }

    /// Formats a fresh filesystem on any [`BlockStore`] backend,
    /// refusing to destroy an existing volume.
    ///
    /// # Panics
    ///
    /// Panics when the store is too small for the requested inode
    /// table, or when the store already carries a volume superblock —
    /// reformatting a live volume silently destroyed every file, so
    /// that now requires the explicit [`Ffs::force_format_on`] (or use
    /// [`Ffs::mount_on`] / [`Ffs::open_or_format`] to keep the data).
    pub fn format_on(disk: Arc<dyn BlockStore>, config: FsConfig) -> Ffs {
        assert!(
            !Ffs::is_formatted(&*disk),
            "store already holds a formatted volume; mount it with Ffs::mount_on or \
             Ffs::open_or_format, or erase it explicitly with Ffs::force_format_on"
        );
        Ffs::force_format_on(disk, config)
    }

    /// Whether `disk` carries a volume superblock (even a damaged
    /// one): the signal that a `format_*` path would destroy data.
    pub fn is_formatted(disk: &dyn BlockStore) -> bool {
        disk.block_count() > 0
            && !matches!(
                Superblock::from_block(&disk.read_block_meta(0)),
                Err(MountError::NoSuperblock)
            )
    }

    /// Whether `disk` looks never-written: block 0 reads as all zeros
    /// (every backend presents unwritten blocks that way). A store
    /// that is neither formatted nor virgin holds *something* —
    /// foreign data, or a volume decrypted with the wrong key — and
    /// [`Ffs::open_or_format`] refuses to format over it.
    pub fn is_virgin(disk: &dyn BlockStore) -> bool {
        disk.block_count() == 0 || disk.read_block_meta(0).iter().all(|&b| b == 0)
    }

    /// Formats unconditionally, overwriting any existing volume on the
    /// store.
    ///
    /// # Panics
    ///
    /// Panics when the store is too small for the requested inode
    /// table.
    pub fn force_format_on(disk: Arc<dyn BlockStore>, config: FsConfig) -> Ffs {
        // Invalidate any existing superblock FIRST: on a journaled
        // backend this is the first replayed record, so a crash
        // mid-reformat can never resurrect the old clean superblock
        // over a half-zeroed volume — the image reads as virgin
        // instead.
        if disk.block_count() > 0 && !Ffs::is_virgin(&*disk) {
            disk.write_block_meta(0, &zero_block());
        }
        let layout = Layout::new(&config);
        assert!(
            layout.data_start + 8 <= config.total_blocks,
            "disk too small for inode table"
        );
        assert!(
            disk.block_count() >= config.total_blocks,
            "disk smaller than config"
        );

        let mut inner = FsInner {
            inode_bitmap: vec![false; config.inode_count as usize],
            block_bitmap: vec![false; config.total_blocks as usize],
            free_blocks: config.total_blocks - layout.data_start,
            free_inodes: config.inode_count - 2, // 0 reserved, 1 = root
            tick: 1,
            alloc_hint: layout.data_start,
            dirty: false,
        };
        // Metadata region is permanently allocated.
        for b in 0..layout.data_start {
            inner.block_bitmap[b as usize] = true;
        }
        // Inode 0 is reserved so that pointer value 0 can mean "none".
        inner.inode_bitmap[0] = true;

        let fs = Ffs {
            disk,
            inode_count: config.inode_count,
            layout,
            inner: Mutex::new(inner),
        };

        // Zero the inode table: one shared zero block (no allocation),
        // one vectored metadata call for the whole region.
        let zero = zero_block();
        let writes: Vec<(u64, &[u8])> = (fs.layout.itable_start..fs.layout.data_start)
            .map(|b| (b, &zero[..]))
            .collect();
        fs.disk.write_blocks_meta(&writes);

        // Create the root directory (inode 1), with "." and ".." both
        // pointing at itself.
        {
            let mut inner = fs.inner.lock();
            inner.inode_bitmap[1] = true;
            let tick = inner.tick;
            let mut root = Inode::empty(1);
            root.mode = FileKind::Directory.mode_bits() | 0o755;
            root.nlink = 2;
            root.atime = tick;
            root.mtime = tick;
            root.ctime = tick;
            fs.write_inode(1, &root);
            let entries = vec![
                DirEntry {
                    name: ".".into(),
                    ino: 1,
                },
                DirEntry {
                    name: "..".into(),
                    ino: 1,
                },
            ];
            fs.write_dir(&mut inner, 1, &entries)
                .expect("fresh filesystem has space for the root directory");
            // Durable baseline: bitmaps, then the superblock last, so a
            // replayed crash mid-format never yields a valid superblock
            // over a half-formatted volume.
            fs.write_bitmaps(&inner);
            fs.write_superblock(inner.tick, true);
        }
        fs
    }

    /// Mounts the volume selected by `backend` (see [`Ffs::mount_on`];
    /// `config` only sizes the in-memory store construction — the
    /// authoritative geometry comes from the on-disk superblock).
    ///
    /// # Errors
    ///
    /// [`MountError`] when the store holds no valid volume.
    pub fn mount_backend(
        backend: &StoreBackend,
        clock: &netsim::SimClock,
        config: FsConfig,
    ) -> Result<Ffs, MountError> {
        Ffs::mount_on(backend.build(clock, config.total_blocks))
    }

    /// Mounts an existing volume if `backend` holds one, otherwise
    /// formats a fresh volume with `config` (see
    /// [`Ffs::open_or_format`]).
    ///
    /// # Errors
    ///
    /// [`MountError`] when a superblock is present but unusable.
    pub fn open_or_format_backend(
        backend: &StoreBackend,
        clock: &netsim::SimClock,
        config: FsConfig,
    ) -> Result<Ffs, MountError> {
        Ffs::open_or_format(backend.build(clock, config.total_blocks), config)
    }

    /// Mounts an existing volume when the store carries a superblock,
    /// and formats a fresh one when the store is virgin — the right
    /// default for persistent backends that may or may not have been
    /// used before.
    ///
    /// # Errors
    ///
    /// [`MountError`] when a superblock is present but damaged
    /// (checksum mismatch, unknown version, impossible geometry), and
    /// also when block 0 holds unrecognized *nonzero* data — which is
    /// what an `EncryptedJournal` volume opened with the wrong key
    /// looks like. Either way the data is *not* silently destroyed —
    /// recover it (or fix the key), or erase explicitly with
    /// [`Ffs::force_format_on`].
    pub fn open_or_format(disk: Arc<dyn BlockStore>, config: FsConfig) -> Result<Ffs, MountError> {
        if Ffs::is_formatted(&*disk) {
            Ffs::mount_on(disk)
        } else if Ffs::is_virgin(&*disk) {
            Ok(Ffs::force_format_on(disk, config))
        } else {
            Err(MountError::CorruptVolume(
                "block 0 holds unrecognized data (foreign contents, or a volume opened \
                 with the wrong encryption key); refusing to format over it"
                    .into(),
            ))
        }
    }

    /// Mounts the volume already present on `disk`.
    ///
    /// The superblock is validated (magic, version, checksum, geometry
    /// against the store size) before anything else is touched, so
    /// garbage fails closed. A volume whose superblock says `clean`
    /// loads its durable bitmaps directly; an uncleanly closed volume
    /// gets a full recovery sweep that rebuilds the bitmaps from the
    /// inode table, drops directory entries pointing at lost inodes,
    /// frees orphaned inodes and blocks, and repairs link counts — so
    /// the mount lands on the last consistent state instead of
    /// propagating torn mid-operation writes.
    ///
    /// # Errors
    ///
    /// [`MountError`] describing why the store cannot be mounted.
    pub fn mount_on(disk: Arc<dyn BlockStore>) -> Result<Ffs, MountError> {
        if disk.block_count() == 0 {
            return Err(MountError::NoSuperblock);
        }
        let sb = Superblock::from_block(&disk.read_block_meta(0))?;
        if sb.inode_count < 2 {
            return Err(MountError::CorruptGeometry);
        }
        let config = FsConfig {
            total_blocks: sb.total_blocks,
            inode_count: sb.inode_count,
        };
        let layout = Layout::new(&config);
        if layout.ibmap_start != sb.ibmap_start
            || layout.bbmap_start != sb.bbmap_start
            || layout.itable_start != sb.itable_start
            || layout.data_start != sb.data_start
            || layout.data_start + 8 > sb.total_blocks
        {
            return Err(MountError::CorruptGeometry);
        }
        if disk.block_count() < sb.total_blocks {
            return Err(MountError::DiskTooSmall {
                volume_blocks: sb.total_blocks,
                disk_blocks: disk.block_count(),
            });
        }
        let fs = Ffs {
            disk,
            inode_count: sb.inode_count,
            layout,
            inner: Mutex::new(FsInner::cold(&layout, sb.inode_count, sb.tick)),
        };
        if sb.clean {
            fs.mount_clean(&sb)?;
        } else {
            fs.mount_recover(&sb)?;
        }
        Ok(fs)
    }

    /// Formats a filesystem on a fresh untimed in-memory disk.
    pub fn format_in_memory(config: FsConfig) -> Ffs {
        let disk = MemDisk::untimed(config.total_blocks);
        Ffs::format(disk, config)
    }

    /// Formats on a disk with the paper's timing models attached.
    pub fn format_timed(clock: &netsim::SimClock, config: FsConfig) -> Ffs {
        Ffs::format_backend(&StoreBackend::SimTimed, clock, config)
    }

    /// Formats on the storage backend selected by `backend`; the
    /// timing-model backends charge `clock`.
    pub fn format_backend(
        backend: &StoreBackend,
        clock: &netsim::SimClock,
        config: FsConfig,
    ) -> Ffs {
        Ffs::format_on(backend.build(clock, config.total_blocks), config)
    }

    /// The root directory inode (always 1).
    pub fn root(&self) -> Ino {
        1
    }

    /// Access to the underlying block store (I/O counters, stats).
    pub fn disk(&self) -> &dyn BlockStore {
        &*self.disk
    }

    /// Syncs the volume: writes the in-memory bitmaps to their durable
    /// on-disk regions, flushes the backing store, marks the
    /// superblock clean, and flushes again.
    ///
    /// The flush *before* the clean marker is load-bearing for
    /// write-back compositions (`store::CachedStore`): it forces every
    /// buffered mutation down into the backend's journal first, so the
    /// clean marker can never precede a mutation it claims to cover —
    /// a crash between the two flushes replays to a volume that is
    /// either still marked dirty (recovery sweep runs) or clean with
    /// *all* mutations applied. Cost: the first flush does the bulk
    /// apply (that work existed before), and the second pays one extra
    /// small fsync + journal truncate for just the clean-marker record
    /// — the price of ordering correctness under a write-back cache,
    /// paid on every backend because `Ffs` cannot see through the
    /// composition to know whether one is present.
    ///
    /// After a successful sync, [`Ffs::mount_on`] takes the fast path:
    /// it trusts the durable bitmaps instead of sweeping the inode
    /// table.
    ///
    /// # Errors
    ///
    /// I/O failure of the underlying medium.
    pub fn sync(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock();
        if inner.dirty {
            self.write_bitmaps(&inner);
            self.disk.flush()?;
            self.write_superblock(inner.tick, true);
            inner.dirty = false;
        }
        self.disk.flush()
    }

    // -- durable metadata ---------------------------------------------------

    /// Writes both bitmaps to their durable on-disk regions.
    fn write_bitmaps(&self, inner: &FsInner) {
        self.write_bitmap_region(self.layout.ibmap_start, &inner.inode_bitmap);
        self.write_bitmap_region(self.layout.bbmap_start, &inner.block_bitmap);
    }

    fn write_bitmap_region(&self, start: u64, bits: &[bool]) {
        // Pack the whole region, then push it as one vectored metadata
        // call: one lock/journal batch/RPC instead of one per block.
        let blocks: Vec<Vec<u8>> = bits
            .chunks(BITS_PER_BLOCK as usize)
            .map(|chunk| {
                let mut block = vec![0u8; BLOCK_SIZE];
                for (j, &bit) in chunk.iter().enumerate() {
                    if bit {
                        block[j / 8] |= 1 << (j % 8);
                    }
                }
                block
            })
            .collect();
        let writes: Vec<(u64, &[u8])> = blocks
            .iter()
            .enumerate()
            .map(|(i, block)| (start + i as u64, &block[..]))
            .collect();
        self.disk.write_blocks_meta(&writes);
    }

    pub(crate) fn read_bitmap_region(&self, start: u64, nbits: u64) -> Vec<bool> {
        let mut bits = Vec::with_capacity(nbits as usize);
        for i in 0..nbits.div_ceil(BITS_PER_BLOCK) {
            let data = self.disk.read_block_meta(start + i);
            let take = (nbits as usize - bits.len()).min(BITS_PER_BLOCK as usize);
            for j in 0..take {
                bits.push(data[j / 8] & (1 << (j % 8)) != 0);
            }
        }
        bits
    }

    fn write_superblock(&self, tick: u64, clean: bool) {
        let sb = self.layout.superblock(self.inode_count, tick, clean);
        self.disk.write_block_meta(0, &sb.to_block());
    }

    /// Flips the volume to "dirty" on the first mutation after a sync,
    /// so a later mount knows the durable bitmaps are stale. Written
    /// before the mutation's own blocks: any journal prefix that
    /// contains mutated state also contains the dirty marker.
    fn mark_dirty(&self, inner: &mut FsInner) {
        if !inner.dirty {
            inner.dirty = true;
            self.write_superblock(inner.tick, false);
        }
    }

    /// Fast mount path for a cleanly synced volume: load the durable
    /// bitmaps directly.
    fn mount_clean(&self, sb: &Superblock) -> Result<(), MountError> {
        let inode_bitmap =
            self.read_bitmap_region(self.layout.ibmap_start, self.inode_count as u64);
        let block_bitmap =
            self.read_bitmap_region(self.layout.bbmap_start, self.layout.total_blocks);
        if !inode_bitmap[0] || !inode_bitmap[1] {
            return Err(MountError::CorruptVolume(
                "clean volume lost its reserved inodes".into(),
            ));
        }
        if block_bitmap[..self.layout.data_start as usize]
            .iter()
            .any(|&b| !b)
        {
            return Err(MountError::CorruptVolume(
                "metadata region not marked allocated".into(),
            ));
        }
        let root = self.read_inode(1);
        if FileKind::from_mode(root.mode) != Some(FileKind::Directory) {
            return Err(MountError::CorruptVolume(
                "root inode is not a directory".into(),
            ));
        }
        let free_blocks = block_bitmap[self.layout.data_start as usize..]
            .iter()
            .filter(|&&b| !b)
            .count() as u64;
        let free_inodes = inode_bitmap[1..].iter().filter(|&&b| !b).count() as u32;
        let mut inner = self.inner.lock();
        inner.inode_bitmap = inode_bitmap;
        inner.block_bitmap = block_bitmap;
        inner.free_blocks = free_blocks;
        inner.free_inodes = free_inodes;
        inner.tick = sb.tick + 1;
        inner.dirty = false;
        Ok(())
    }

    /// Reads a file's contents during recovery, range-checking every
    /// pointer: a block number outside the volume reads as a hole
    /// instead of panicking the backend (only block 0 is checksummed,
    /// so a corrupt image can carry wild pointers in its inode table).
    /// The length is capped at both the pointer-geometry maximum and
    /// the volume size, so an absurd size field cannot balloon the
    /// read.
    fn read_file_guarded(&self, inode: &Inode) -> Vec<u8> {
        let ptrs = PTRS_PER_BLOCK as u64;
        let in_range =
            |p: u32| p as u64 >= self.layout.data_start && (p as u64) < self.layout.total_blocks;
        let guarded_table =
            |p: u32| -> Option<Vec<u32>> { in_range(p).then(|| self.read_ptr_block(p as u64)) };
        let len = inode
            .size
            .min(max_file_size())
            .min(self.layout.total_blocks.saturating_mul(BLOCK_SIZE as u64))
            as usize;
        let mut out = Vec::with_capacity(len);
        let mut fbn = 0u64;
        while out.len() < len {
            let take = (len - out.len()).min(BLOCK_SIZE);
            let ptr = if fbn < NDIRECT as u64 {
                inode.direct[fbn as usize]
            } else if fbn < NDIRECT as u64 + ptrs {
                guarded_table(inode.indirect)
                    .map(|t| t[(fbn - NDIRECT as u64) as usize])
                    .unwrap_or(0)
            } else {
                let idx = fbn - NDIRECT as u64 - ptrs;
                guarded_table(inode.double_indirect)
                    .and_then(|outer| guarded_table(outer[(idx / ptrs) as usize]))
                    .map(|t| t[(idx % ptrs) as usize])
                    .unwrap_or(0)
            };
            if ptr != 0 && in_range(ptr) {
                out.extend_from_slice(&self.disk.read_block_meta(ptr as u64)[..take]);
            } else {
                out.extend(std::iter::repeat_n(0u8, take));
            }
            fbn += 1;
        }
        out
    }

    /// Recovery sweep for an uncleanly closed volume: the inode table
    /// is authoritative, everything else is rebuilt or repaired.
    ///
    /// 1. Scan the inode table; clear records with an impossible kind
    ///    (a torn inode-table write).
    /// 2. Walk the directory tree from the root, planning repairs:
    ///    entries pointing at free/invalid inodes are dropped,
    ///    duplicate names collapse to the first, `.`/`..` are pinned to
    ///    self/parent, and a directory already claimed by another
    ///    parent is dropped.
    /// 3. Rebuild the block bitmap from reachable inodes, clearing
    ///    pointers that fell outside the volume or beyond a file's
    ///    size (a torn write that placed a block before the size
    ///    update landed).
    /// 4. Clear orphaned inodes (allocated but unreachable — their
    ///    directory entry never made it to disk), apply the planned
    ///    directory rewrites, and repair link counts.
    fn mount_recover(&self, sb: &Superblock) -> Result<(), MountError> {
        let n_inodes = self.inode_count;
        let data_start = self.layout.data_start;
        let total = self.layout.total_blocks;

        // Pass 1: inode table scan.
        let mut allocated = vec![false; n_inodes as usize];
        let mut max_tick = sb.tick;
        for ino in 1..n_inodes {
            let inode = self.read_inode(ino);
            if inode.mode == 0 {
                continue;
            }
            if FileKind::from_mode(inode.mode).is_none() {
                self.write_inode(ino, &Inode::empty(inode.generation));
                continue;
            }
            allocated[ino as usize] = true;
            max_tick = max_tick.max(inode.atime).max(inode.mtime).max(inode.ctime);
        }
        if !allocated[1] || self.read_inode(1).kind() != FileKind::Directory {
            return Err(MountError::CorruptVolume(
                "root directory inode missing".into(),
            ));
        }

        // Pass 2: read-only tree walk, planning repaired directories.
        // Directory data is read through the guarded path: only block 0
        // is checksummed, so a corrupt image can carry wild pointers,
        // and those must read as holes here — the claim_block sweep in
        // pass 3 clears them from the inodes afterwards.
        let mut claimed: HashSet<Ino> = HashSet::from([1]);
        let mut reachable: HashSet<Ino> = HashSet::from([1]);
        let mut entry_refs: HashMap<Ino, u32> = HashMap::new();
        let mut planned_dirs: Vec<(Ino, Vec<DirEntry>, bool)> = Vec::new();
        let mut queue: VecDeque<(Ino, Ino)> = VecDeque::from([(1, 1)]);
        while let Some((dir, parent)) = queue.pop_front() {
            let dir_inode = self.read_inode(dir);
            let data = self.read_file_guarded(&dir_inode);
            let mut changed = false;
            let mut planned: Vec<DirEntry> = Vec::new();
            let mut seen: HashSet<String> = HashSet::new();
            let (mut has_dot, mut has_dotdot) = (false, false);
            for entry in Ffs::parse_dir(&data) {
                match entry.name.as_str() {
                    "." => {
                        if has_dot {
                            changed = true;
                            continue;
                        }
                        has_dot = true;
                        changed |= entry.ino != dir;
                        planned.push(DirEntry {
                            name: ".".into(),
                            ino: dir,
                        });
                    }
                    ".." => {
                        if has_dotdot {
                            changed = true;
                            continue;
                        }
                        has_dotdot = true;
                        changed |= entry.ino != parent;
                        planned.push(DirEntry {
                            name: "..".into(),
                            ino: parent,
                        });
                    }
                    _ => {
                        if !seen.insert(entry.name.clone())
                            || entry.ino == 0
                            || entry.ino >= n_inodes
                            || !allocated[entry.ino as usize]
                        {
                            changed = true;
                            continue;
                        }
                        if self.read_inode(entry.ino).kind() == FileKind::Directory {
                            if !claimed.insert(entry.ino) {
                                changed = true;
                                continue;
                            }
                            queue.push_back((entry.ino, dir));
                        }
                        reachable.insert(entry.ino);
                        planned.push(entry);
                    }
                }
            }
            if !has_dot {
                planned.insert(
                    0,
                    DirEntry {
                        name: ".".into(),
                        ino: dir,
                    },
                );
                changed = true;
            }
            if !has_dotdot {
                planned.insert(
                    1,
                    DirEntry {
                        name: "..".into(),
                        ino: parent,
                    },
                );
                changed = true;
            }
            for e in &planned {
                *entry_refs.entry(e.ino).or_insert(0) += 1;
            }
            planned_dirs.push((dir, planned, changed));
        }

        // Pass 3: rebuild the block bitmap from reachable inodes.
        fn claim_block(bitmap: &mut [bool], data_start: u64, blk: u64) -> bool {
            if blk < data_start || blk >= bitmap.len() as u64 || bitmap[blk as usize] {
                return false;
            }
            bitmap[blk as usize] = true;
            true
        }
        let mut block_bitmap = vec![false; total as usize];
        for b in 0..data_start {
            block_bitmap[b as usize] = true;
        }
        // Directories that lose a data block here must be rewritten in
        // pass 4 from their planned entries even when those entries
        // parsed clean — otherwise the cleared block silently empties
        // the directory while its children stay allocated.
        let mut dirs_lost_blocks: HashSet<Ino> = HashSet::new();
        for ino in 1..n_inodes {
            if !reachable.contains(&ino) {
                continue;
            }
            let mut inode = self.read_inode(ino);
            let max_fbn = inode.size.div_ceil(BLOCK_SIZE as u64);
            let mut inode_changed = false;
            let mut lost_block = false;
            for slot in 0..NDIRECT {
                let ptr = inode.direct[slot] as u64;
                if ptr != 0
                    && ((slot as u64) >= max_fbn
                        || !claim_block(&mut block_bitmap, data_start, ptr))
                {
                    inode.direct[slot] = 0;
                    inode_changed = true;
                    lost_block = true;
                }
            }
            if inode.indirect != 0 {
                if !claim_block(&mut block_bitmap, data_start, inode.indirect as u64) {
                    inode.indirect = 0;
                    inode_changed = true;
                    lost_block = true;
                } else {
                    let table = self.read_ptr_block(inode.indirect as u64);
                    for (i, &ptr) in table.iter().enumerate() {
                        if ptr != 0
                            && ((NDIRECT + i) as u64 >= max_fbn
                                || !claim_block(&mut block_bitmap, data_start, ptr as u64))
                        {
                            self.write_ptr(inode.indirect as u64, i, 0);
                            lost_block = true;
                        }
                    }
                }
            }
            if inode.double_indirect != 0 {
                if !claim_block(&mut block_bitmap, data_start, inode.double_indirect as u64) {
                    inode.double_indirect = 0;
                    inode_changed = true;
                    lost_block = true;
                } else {
                    let outer = self.read_ptr_block(inode.double_indirect as u64);
                    for (o, &mid) in outer.iter().enumerate() {
                        if mid == 0 {
                            continue;
                        }
                        if !claim_block(&mut block_bitmap, data_start, mid as u64) {
                            self.write_ptr(inode.double_indirect as u64, o, 0);
                            lost_block = true;
                            continue;
                        }
                        let table = self.read_ptr_block(mid as u64);
                        for (i, &ptr) in table.iter().enumerate() {
                            let fbn = (NDIRECT + PTRS_PER_BLOCK + o * PTRS_PER_BLOCK + i) as u64;
                            if ptr != 0
                                && (fbn >= max_fbn
                                    || !claim_block(&mut block_bitmap, data_start, ptr as u64))
                            {
                                self.write_ptr(mid as u64, i, 0);
                                lost_block = true;
                            }
                        }
                    }
                }
            }
            if inode_changed {
                self.write_inode(ino, &inode);
            }
            if lost_block && claimed.contains(&ino) {
                dirs_lost_blocks.insert(ino);
            }
        }

        // Pass 4: clear orphans, install state, apply repairs.
        for ino in 2..n_inodes {
            if allocated[ino as usize] && !reachable.contains(&ino) {
                let generation = self.read_inode(ino).generation;
                self.write_inode(ino, &Inode::empty(generation));
            }
        }
        let mut inode_bitmap = vec![false; n_inodes as usize];
        inode_bitmap[0] = true;
        for &ino in &reachable {
            inode_bitmap[ino as usize] = true;
        }
        let free_blocks = block_bitmap[data_start as usize..]
            .iter()
            .filter(|&&b| !b)
            .count() as u64;
        let free_inodes = inode_bitmap[1..].iter().filter(|&&b| !b).count() as u32;
        let mut inner = self.inner.lock();
        inner.inode_bitmap = inode_bitmap;
        inner.block_bitmap = block_bitmap;
        inner.free_blocks = free_blocks;
        inner.free_inodes = free_inodes;
        inner.tick = max_tick + 1;
        inner.dirty = false;
        for (dir, planned, changed) in &planned_dirs {
            if *changed || dirs_lost_blocks.contains(dir) {
                self.write_dir(&mut inner, *dir, planned).map_err(|e| {
                    MountError::CorruptVolume(format!("repairing directory {dir}: {e}"))
                })?;
            }
        }
        for ino in 1..n_inodes {
            if !reachable.contains(&ino) {
                continue;
            }
            let refs = entry_refs.get(&ino).copied().unwrap_or(0);
            let mut inode = self.read_inode(ino);
            if inode.nlink != refs {
                inode.nlink = refs;
                self.write_inode(ino, &inode);
            }
        }
        // The repaired state is the new durable baseline.
        self.write_bitmaps(&inner);
        self.write_superblock(inner.tick, true);
        Ok(())
    }

    // -- inode table ------------------------------------------------------

    pub(crate) fn read_inode(&self, ino: Ino) -> Inode {
        let block = self.layout.itable_start + (ino as u64) / INODES_PER_BLOCK as u64;
        let offset = (ino as usize % INODES_PER_BLOCK) * INODE_SIZE;
        let data = self.disk.read_block_meta(block);
        Inode::from_bytes(&data[offset..offset + INODE_SIZE])
    }

    pub(crate) fn write_inode(&self, ino: Ino, inode: &Inode) {
        let block = self.layout.itable_start + (ino as u64) / INODES_PER_BLOCK as u64;
        let offset = (ino as usize % INODES_PER_BLOCK) * INODE_SIZE;
        let mut data = vec![0u8; BLOCK_SIZE];
        self.disk.read_block_meta_into(block, &mut data);
        data[offset..offset + INODE_SIZE].copy_from_slice(&inode.to_bytes());
        self.disk.write_block_meta(block, &data);
    }

    /// Loads an inode, verifying it is allocated.
    fn load(&self, ino: Ino) -> Result<Inode, FsError> {
        if ino == 0 || ino >= self.inode_count {
            return Err(FsError::BadInode);
        }
        let inode = self.read_inode(ino);
        if !inode.is_allocated() {
            return Err(FsError::BadInode);
        }
        Ok(inode)
    }

    fn alloc_inode(&self, inner: &mut FsInner) -> Result<Ino, FsError> {
        let start = 2; // skip reserved 0 and root 1
        for ino in start..self.inode_count {
            if !inner.inode_bitmap[ino as usize] {
                inner.inode_bitmap[ino as usize] = true;
                inner.free_inodes -= 1;
                // Bump the generation on reuse.
                let mut inode = self.read_inode(ino);
                inode = Inode::empty(inode.generation.wrapping_add(1));
                self.write_inode(ino, &inode);
                return Ok(ino);
            }
        }
        Err(FsError::NoSpace)
    }

    fn free_inode(&self, inner: &mut FsInner, ino: Ino) {
        let generation = self.read_inode(ino).generation;
        self.write_inode(ino, &Inode::empty(generation));
        inner.inode_bitmap[ino as usize] = false;
        inner.free_inodes += 1;
    }

    // -- block allocation ---------------------------------------------------

    fn alloc_block(&self, inner: &mut FsInner) -> Result<u64, FsError> {
        if inner.free_blocks == 0 {
            return Err(FsError::NoSpace);
        }
        let total = self.layout.total_blocks;
        let mut idx = inner.alloc_hint.max(self.layout.data_start);
        for _ in 0..total {
            if idx >= total {
                idx = self.layout.data_start;
            }
            if !inner.block_bitmap[idx as usize] {
                inner.block_bitmap[idx as usize] = true;
                inner.free_blocks -= 1;
                inner.alloc_hint = idx + 1;
                // Zero the block so stale data never leaks into reads
                // (the shared zero block: no allocation per alloc).
                self.disk.write_block_meta(idx, &zero_block());
                return Ok(idx);
            }
            idx += 1;
        }
        Err(FsError::NoSpace)
    }

    fn free_block(&self, inner: &mut FsInner, idx: u64) {
        debug_assert!(idx >= self.layout.data_start);
        debug_assert!(
            inner.block_bitmap[idx as usize],
            "double free of block {idx}"
        );
        inner.block_bitmap[idx as usize] = false;
        inner.free_blocks += 1;
    }

    // -- block mapping ------------------------------------------------------

    fn read_ptr_block(&self, block: u64) -> Vec<u32> {
        let data = self.disk.read_block_meta(block);
        data.chunks_exact(4)
            .map(|c| u32::from_be_bytes(c.try_into().expect("4 bytes")))
            .collect()
    }

    fn write_ptr(&self, block: u64, index: usize, value: u32) {
        let mut data = vec![0u8; BLOCK_SIZE];
        self.disk.read_block_meta_into(block, &mut data);
        data[index * 4..index * 4 + 4].copy_from_slice(&value.to_be_bytes());
        self.disk.write_block_meta(block, &data);
    }

    /// Maps file block `fbn` to a disk block, allocating if requested.
    fn bmap(
        &self,
        inner: &mut FsInner,
        inode: &mut Inode,
        fbn: u64,
        allocate: bool,
    ) -> Result<Option<u64>, FsError> {
        let ptrs = PTRS_PER_BLOCK as u64;
        if fbn < NDIRECT as u64 {
            let slot = fbn as usize;
            if inode.direct[slot] == 0 {
                if !allocate {
                    return Ok(None);
                }
                inode.direct[slot] = self.alloc_block(inner)? as u32;
            }
            return Ok(Some(inode.direct[slot] as u64));
        }
        let fbn = fbn - NDIRECT as u64;
        if fbn < ptrs {
            if inode.indirect == 0 {
                if !allocate {
                    return Ok(None);
                }
                inode.indirect = self.alloc_block(inner)? as u32;
            }
            let table = self.read_ptr_block(inode.indirect as u64);
            let mut entry = table[fbn as usize];
            if entry == 0 {
                if !allocate {
                    return Ok(None);
                }
                entry = self.alloc_block(inner)? as u32;
                self.write_ptr(inode.indirect as u64, fbn as usize, entry);
            }
            return Ok(Some(entry as u64));
        }
        let fbn = fbn - ptrs;
        if fbn < ptrs * ptrs {
            if inode.double_indirect == 0 {
                if !allocate {
                    return Ok(None);
                }
                inode.double_indirect = self.alloc_block(inner)? as u32;
            }
            let outer_idx = (fbn / ptrs) as usize;
            let inner_idx = (fbn % ptrs) as usize;
            let outer = self.read_ptr_block(inode.double_indirect as u64);
            let mut mid = outer[outer_idx];
            if mid == 0 {
                if !allocate {
                    return Ok(None);
                }
                mid = self.alloc_block(inner)? as u32;
                self.write_ptr(inode.double_indirect as u64, outer_idx, mid);
            }
            let table = self.read_ptr_block(mid as u64);
            let mut entry = table[inner_idx];
            if entry == 0 {
                if !allocate {
                    return Ok(None);
                }
                entry = self.alloc_block(inner)? as u32;
                self.write_ptr(mid as u64, inner_idx, entry);
            }
            return Ok(Some(entry as u64));
        }
        Err(FsError::TooBig)
    }

    /// Frees every data/indirect block at or beyond file block `from_fbn`.
    fn free_blocks_from(&self, inner: &mut FsInner, inode: &mut Inode, from_fbn: u64) {
        let ptrs = PTRS_PER_BLOCK as u64;
        for slot in 0..NDIRECT {
            if (slot as u64) >= from_fbn && inode.direct[slot] != 0 {
                self.free_block(inner, inode.direct[slot] as u64);
                inode.direct[slot] = 0;
            }
        }
        if inode.indirect != 0 {
            let base = NDIRECT as u64;
            let table = self.read_ptr_block(inode.indirect as u64);
            let mut any_left = false;
            for (i, &entry) in table.iter().enumerate() {
                if entry == 0 {
                    continue;
                }
                if base + i as u64 >= from_fbn {
                    self.free_block(inner, entry as u64);
                    self.write_ptr(inode.indirect as u64, i, 0);
                } else {
                    any_left = true;
                }
            }
            if !any_left {
                self.free_block(inner, inode.indirect as u64);
                inode.indirect = 0;
            }
        }
        if inode.double_indirect != 0 {
            let base = NDIRECT as u64 + ptrs;
            let outer = self.read_ptr_block(inode.double_indirect as u64);
            let mut any_outer_left = false;
            for (o, &mid) in outer.iter().enumerate() {
                if mid == 0 {
                    continue;
                }
                let mid_base = base + o as u64 * ptrs;
                let table = self.read_ptr_block(mid as u64);
                let mut any_left = false;
                for (i, &entry) in table.iter().enumerate() {
                    if entry == 0 {
                        continue;
                    }
                    if mid_base + i as u64 >= from_fbn {
                        self.free_block(inner, entry as u64);
                        self.write_ptr(mid as u64, i, 0);
                    } else {
                        any_left = true;
                    }
                }
                if !any_left {
                    self.free_block(inner, mid as u64);
                    self.write_ptr(inode.double_indirect as u64, o, 0);
                } else {
                    any_outer_left = true;
                }
            }
            if !any_outer_left {
                self.free_block(inner, inode.double_indirect as u64);
                inode.double_indirect = 0;
            }
        }
    }

    // -- data I/O (the pipelined file path) ---------------------------------
    //
    // Both directions gather each operation's whole block extent into
    // **one vectored store call** (`read_blocks` / `write_blocks`)
    // instead of a per-block loop: the block mapping is resolved first
    // (allocating on the write path), then the extent travels to the
    // store in a single call that a sharded backend can fan out across
    // its per-shard workers, a journaled backend can group-commit, and
    // a timed backend charges as contiguous runs. A one-block extent
    // takes the scalar path — there is nothing to batch.

    fn read_inode_data(
        &self,
        inner: &mut FsInner,
        inode: &mut Inode,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, FsError> {
        if offset >= inode.size {
            return Ok(Vec::new());
        }
        let len = len.min((inode.size - offset) as usize);
        let end = offset + len as u64;
        // Resolve the extent's mapping up front; holes stay `None`.
        let first_fbn = offset / BLOCK_SIZE as u64;
        let last_fbn = (end - 1) / BLOCK_SIZE as u64;
        let mut mapped: Vec<Option<u64>> = Vec::with_capacity((last_fbn - first_fbn + 1) as usize);
        for fbn in first_fbn..=last_fbn {
            mapped.push(self.bmap(inner, inode, fbn, false)?);
        }
        // One vectored read for every mapped block of the extent.
        let idxs: Vec<u64> = mapped.iter().flatten().copied().collect();
        let blocks = match idxs.len() {
            0 => Vec::new(),
            1 => vec![self.disk.read_block(idxs[0])],
            _ => self.disk.read_blocks(&idxs),
        };
        // Assemble: partial head/tail slices come straight off the
        // shared handles; holes read as zeros.
        let mut out = Vec::with_capacity(len);
        let mut next_block = 0usize;
        let mut pos = offset;
        for entry in &mapped {
            let in_block = (pos % BLOCK_SIZE as u64) as usize;
            let take = (BLOCK_SIZE - in_block).min((end - pos) as usize);
            match entry {
                Some(_) => {
                    out.extend_from_slice(&blocks[next_block][in_block..in_block + take]);
                    next_block += 1;
                }
                None => out.extend(std::iter::repeat_n(0u8, take)),
            }
            pos += take as u64;
        }
        Ok(out)
    }

    fn write_inode_data(
        &self,
        inner: &mut FsInner,
        inode: &mut Inode,
        offset: u64,
        data: &[u8],
    ) -> Result<(), FsError> {
        let end = offset + data.len() as u64;
        if end > max_file_size() {
            return Err(FsError::TooBig);
        }
        // Map (allocating) the whole extent first, staging each
        // block's source: full blocks borrow the caller's buffer
        // directly; partial head/tail blocks are read-modify-written
        // into owned buffers via `read_block_into`. The staged extent
        // then reaches the store as one vectored write, in ascending
        // file order — the same per-block journal records, in the same
        // order, as the old loop.
        enum Src {
            /// Byte range into the caller's `data` (a full block).
            Caller(usize),
            /// Index into the RMW buffers (a partial block).
            Rmw(usize),
        }
        let mut staged: Vec<(u64, Src)> = Vec::new();
        let mut rmw: Vec<Vec<u8>> = Vec::new();
        let mut pos = offset;
        let mut src = 0usize;
        while pos < end {
            let fbn = pos / BLOCK_SIZE as u64;
            let in_block = (pos % BLOCK_SIZE as u64) as usize;
            let take = (BLOCK_SIZE - in_block).min((end - pos) as usize);
            let block = self
                .bmap(inner, inode, fbn, true)?
                .expect("bmap with allocate=true returns a block");
            if take == BLOCK_SIZE {
                staged.push((block, Src::Caller(src)));
            } else {
                let mut buf = vec![0u8; BLOCK_SIZE];
                self.disk.read_block_into(block, &mut buf);
                buf[in_block..in_block + take].copy_from_slice(&data[src..src + take]);
                staged.push((block, Src::Rmw(rmw.len())));
                rmw.push(buf);
            }
            pos += take as u64;
            src += take;
        }
        match staged.len() {
            0 => {}
            1 => {
                let (block, source) = &staged[0];
                match source {
                    Src::Caller(at) => self.disk.write_block(*block, &data[*at..*at + BLOCK_SIZE]),
                    Src::Rmw(i) => self.disk.write_block(*block, &rmw[*i]),
                }
            }
            _ => {
                let writes: Vec<(u64, &[u8])> = staged
                    .iter()
                    .map(|(block, source)| {
                        let bytes: &[u8] = match source {
                            Src::Caller(at) => &data[*at..*at + BLOCK_SIZE],
                            Src::Rmw(i) => &rmw[*i],
                        };
                        (*block, bytes)
                    })
                    .collect();
                self.disk.write_blocks(&writes);
            }
        }
        if end > inode.size {
            inode.size = end;
        }
        Ok(())
    }

    // -- directories ----------------------------------------------------------

    fn parse_dir(data: &[u8]) -> Vec<DirEntry> {
        let mut entries = Vec::new();
        let mut pos = 0usize;
        while pos + 5 <= data.len() {
            let ino = u32::from_be_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
            let name_len = data[pos + 4] as usize;
            pos += 5;
            if pos + name_len > data.len() {
                break;
            }
            let name = String::from_utf8_lossy(&data[pos..pos + name_len]).into_owned();
            pos += name_len;
            if ino != 0 {
                entries.push(DirEntry { name, ino });
            }
        }
        entries
    }

    fn serialize_dir(entries: &[DirEntry]) -> Vec<u8> {
        let mut out = Vec::new();
        for e in entries {
            out.extend_from_slice(&e.ino.to_be_bytes());
            out.push(e.name.len() as u8);
            out.extend_from_slice(e.name.as_bytes());
        }
        out
    }

    fn read_dir(&self, inner: &mut FsInner, ino: Ino) -> Result<Vec<DirEntry>, FsError> {
        let mut inode = self.load(ino)?;
        if inode.kind() != FileKind::Directory {
            return Err(FsError::NotDir);
        }
        let size = inode.size;
        let data = self.read_inode_data(inner, &mut inode, 0, size as usize)?;
        Ok(Self::parse_dir(&data))
    }

    fn write_dir(
        &self,
        inner: &mut FsInner,
        ino: Ino,
        entries: &[DirEntry],
    ) -> Result<(), FsError> {
        let mut inode = self.load(ino).or_else(|e| {
            // During format the root inode is written just before this call.
            if ino == 1 {
                Ok(self.read_inode(1))
            } else {
                Err(e)
            }
        })?;
        let data = Self::serialize_dir(entries);
        // Shrink then rewrite.
        let new_blocks = (data.len() as u64).div_ceil(BLOCK_SIZE as u64);
        self.free_blocks_from(inner, &mut inode, new_blocks.max(1));
        inode.size = 0;
        self.write_inode_data(inner, &mut inode, 0, &data)?;
        inode.size = data.len() as u64;
        inode.mtime = inner.tick;
        inode.ctime = inner.tick;
        self.write_inode(ino, &inode);
        Ok(())
    }

    // -- public API -----------------------------------------------------------

    /// Looks up `name` in directory `dir`.
    ///
    /// # Errors
    ///
    /// [`FsError::NoEnt`] if absent, [`FsError::NotDir`] if `dir` is not
    /// a directory.
    pub fn lookup(&self, dir: Ino, name: &str) -> Result<Ino, FsError> {
        let mut inner = self.inner.lock();
        let entries = self.read_dir(&mut inner, dir)?;
        entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.ino)
            .ok_or(FsError::NoEnt)
    }

    /// Creates a regular file.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`], [`FsError::BadName`], [`FsError::NoSpace`],
    /// [`FsError::NotDir`].
    pub fn create(
        &self,
        dir: Ino,
        name: &str,
        mode: u32,
        uid: u32,
        gid: u32,
    ) -> Result<Ino, FsError> {
        validate_name(name)?;
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let mut entries = self.read_dir(&mut inner, dir)?;
        if entries.iter().any(|e| e.name == name) {
            return Err(FsError::Exists);
        }
        self.mark_dirty(&mut inner);
        let ino = self.alloc_inode(&mut inner)?;
        let tick = inner.tick;
        let mut inode = self.read_inode(ino);
        inode.mode = FileKind::Regular.mode_bits() | (mode & 0o7777);
        inode.uid = uid;
        inode.gid = gid;
        inode.nlink = 1;
        inode.atime = tick;
        inode.mtime = tick;
        inode.ctime = tick;
        self.write_inode(ino, &inode);
        entries.push(DirEntry {
            name: name.to_string(),
            ino,
        });
        self.write_dir(&mut inner, dir, &entries)?;
        Ok(ino)
    }

    /// Creates a directory (with `.` and `..` entries).
    ///
    /// # Errors
    ///
    /// Same as [`Ffs::create`].
    pub fn mkdir(
        &self,
        dir: Ino,
        name: &str,
        mode: u32,
        uid: u32,
        gid: u32,
    ) -> Result<Ino, FsError> {
        validate_name(name)?;
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let mut entries = self.read_dir(&mut inner, dir)?;
        if entries.iter().any(|e| e.name == name) {
            return Err(FsError::Exists);
        }
        self.mark_dirty(&mut inner);
        let ino = self.alloc_inode(&mut inner)?;
        let tick = inner.tick;
        let mut inode = self.read_inode(ino);
        inode.mode = FileKind::Directory.mode_bits() | (mode & 0o7777);
        inode.uid = uid;
        inode.gid = gid;
        inode.nlink = 2;
        inode.atime = tick;
        inode.mtime = tick;
        inode.ctime = tick;
        self.write_inode(ino, &inode);
        let child_entries = vec![
            DirEntry {
                name: ".".into(),
                ino,
            },
            DirEntry {
                name: "..".into(),
                ino: dir,
            },
        ];
        self.write_dir(&mut inner, ino, &child_entries)?;
        entries.push(DirEntry {
            name: name.to_string(),
            ino,
        });
        self.write_dir(&mut inner, dir, &entries)?;
        // The child's ".." references the parent.
        let mut parent = self.load(dir)?;
        parent.nlink += 1;
        self.write_inode(dir, &parent);
        Ok(ino)
    }

    /// Creates a symbolic link containing `target`.
    ///
    /// # Errors
    ///
    /// Same as [`Ffs::create`]; also [`FsError::TooBig`] for an
    /// oversized target.
    pub fn symlink(
        &self,
        dir: Ino,
        name: &str,
        target: &str,
        uid: u32,
        gid: u32,
    ) -> Result<Ino, FsError> {
        validate_name(name)?;
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let mut entries = self.read_dir(&mut inner, dir)?;
        if entries.iter().any(|e| e.name == name) {
            return Err(FsError::Exists);
        }
        self.mark_dirty(&mut inner);
        let ino = self.alloc_inode(&mut inner)?;
        let tick = inner.tick;
        let mut inode = self.read_inode(ino);
        inode.mode = FileKind::Symlink.mode_bits() | 0o777;
        inode.uid = uid;
        inode.gid = gid;
        inode.nlink = 1;
        inode.atime = tick;
        inode.mtime = tick;
        inode.ctime = tick;
        self.write_inode_data(&mut inner, &mut inode, 0, target.as_bytes())?;
        self.write_inode(ino, &inode);
        entries.push(DirEntry {
            name: name.to_string(),
            ino,
        });
        self.write_dir(&mut inner, dir, &entries)?;
        Ok(ino)
    }

    /// Reads a symlink's target.
    ///
    /// # Errors
    ///
    /// [`FsError::BadType`] when `ino` is not a symlink.
    pub fn readlink(&self, ino: Ino) -> Result<String, FsError> {
        let mut inner = self.inner.lock();
        let mut inode = self.load(ino)?;
        if inode.kind() != FileKind::Symlink {
            return Err(FsError::BadType);
        }
        let size = inode.size;
        let data = self.read_inode_data(&mut inner, &mut inode, 0, size as usize)?;
        Ok(String::from_utf8_lossy(&data).into_owned())
    }

    /// Creates a hard link to a regular file.
    ///
    /// # Errors
    ///
    /// [`FsError::IsDir`] for directories, plus the usual name errors.
    pub fn link(&self, ino: Ino, dir: Ino, name: &str) -> Result<(), FsError> {
        validate_name(name)?;
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let mut target = self.load(ino)?;
        if target.kind() == FileKind::Directory {
            return Err(FsError::IsDir);
        }
        let mut entries = self.read_dir(&mut inner, dir)?;
        if entries.iter().any(|e| e.name == name) {
            return Err(FsError::Exists);
        }
        self.mark_dirty(&mut inner);
        entries.push(DirEntry {
            name: name.to_string(),
            ino,
        });
        self.write_dir(&mut inner, dir, &entries)?;
        target.nlink += 1;
        target.ctime = inner.tick;
        self.write_inode(ino, &target);
        Ok(())
    }

    /// Removes a non-directory entry, freeing the inode when its link
    /// count reaches zero.
    ///
    /// # Errors
    ///
    /// [`FsError::IsDir`] for directories, [`FsError::NoEnt`] if absent.
    pub fn unlink(&self, dir: Ino, name: &str) -> Result<(), FsError> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let mut entries = self.read_dir(&mut inner, dir)?;
        let idx = entries
            .iter()
            .position(|e| e.name == name)
            .ok_or(FsError::NoEnt)?;
        let ino = entries[idx].ino;
        let mut inode = self.load(ino)?;
        if inode.kind() == FileKind::Directory {
            return Err(FsError::IsDir);
        }
        self.mark_dirty(&mut inner);
        entries.remove(idx);
        self.write_dir(&mut inner, dir, &entries)?;
        inode.nlink -= 1;
        if inode.nlink == 0 {
            self.free_blocks_from(&mut inner, &mut inode, 0);
            self.write_inode(ino, &inode);
            self.free_inode(&mut inner, ino);
        } else {
            inode.ctime = inner.tick;
            self.write_inode(ino, &inode);
        }
        Ok(())
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// [`FsError::NotEmpty`], [`FsError::NotDir`], [`FsError::NoEnt`].
    pub fn rmdir(&self, dir: Ino, name: &str) -> Result<(), FsError> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let mut entries = self.read_dir(&mut inner, dir)?;
        let idx = entries
            .iter()
            .position(|e| e.name == name)
            .ok_or(FsError::NoEnt)?;
        let ino = entries[idx].ino;
        let mut inode = self.load(ino)?;
        if inode.kind() != FileKind::Directory {
            return Err(FsError::NotDir);
        }
        let children = self.read_dir(&mut inner, ino)?;
        if children.iter().any(|e| e.name != "." && e.name != "..") {
            return Err(FsError::NotEmpty);
        }
        self.mark_dirty(&mut inner);
        entries.remove(idx);
        self.write_dir(&mut inner, dir, &entries)?;
        // Free the directory's data and inode.
        self.free_blocks_from(&mut inner, &mut inode, 0);
        self.write_inode(ino, &inode);
        self.free_inode(&mut inner, ino);
        // The child's ".." no longer references the parent.
        let mut parent = self.load(dir)?;
        parent.nlink -= 1;
        parent.ctime = inner.tick;
        self.write_inode(dir, &parent);
        Ok(())
    }

    /// Renames `src_name` in `src_dir` to `dst_name` in `dst_dir`,
    /// replacing a compatible existing target.
    ///
    /// # Errors
    ///
    /// [`FsError::InvalidMove`] when moving a directory under itself;
    /// [`FsError::Exists`]/[`FsError::NotEmpty`] for incompatible
    /// targets; the usual lookup errors.
    pub fn rename(
        &self,
        src_dir: Ino,
        src_name: &str,
        dst_dir: Ino,
        dst_name: &str,
    ) -> Result<(), FsError> {
        validate_name(dst_name)?;
        let mut inner = self.inner.lock();
        inner.tick += 1;

        let src_entries = self.read_dir(&mut inner, src_dir)?;
        let src_entry = src_entries
            .iter()
            .find(|e| e.name == src_name)
            .ok_or(FsError::NoEnt)?
            .clone();
        let moving = self.load(src_entry.ino)?;
        let moving_is_dir = moving.kind() == FileKind::Directory;

        if src_dir == dst_dir && src_name == dst_name {
            return Ok(());
        }

        // A directory must not move into its own subtree.
        if moving_is_dir && src_dir != dst_dir {
            let mut cursor = dst_dir;
            loop {
                if cursor == src_entry.ino {
                    return Err(FsError::InvalidMove);
                }
                if cursor == 1 {
                    break;
                }
                let entries = self.read_dir(&mut inner, cursor)?;
                cursor = entries
                    .iter()
                    .find(|e| e.name == "..")
                    .map(|e| e.ino)
                    .ok_or(FsError::NoEnt)?;
            }
        }

        // Handle an existing destination.
        let dst_entries = self.read_dir(&mut inner, dst_dir)?;
        if let Some(existing) = dst_entries.iter().find(|e| e.name == dst_name) {
            let existing_inode = self.load(existing.ino)?;
            let existing_is_dir = existing_inode.kind() == FileKind::Directory;
            match (moving_is_dir, existing_is_dir) {
                (false, false) => {
                    drop(inner);
                    self.unlink(dst_dir, dst_name)?;
                    inner = self.inner.lock();
                }
                (true, true) => {
                    drop(inner);
                    self.rmdir(dst_dir, dst_name)?;
                    inner = self.inner.lock();
                }
                _ => return Err(FsError::Exists),
            }
        }

        // Remove from source, add to destination.
        self.mark_dirty(&mut inner);
        let mut src_entries = self.read_dir(&mut inner, src_dir)?;
        let idx = src_entries
            .iter()
            .position(|e| e.name == src_name)
            .ok_or(FsError::NoEnt)?;
        src_entries.remove(idx);
        self.write_dir(&mut inner, src_dir, &src_entries)?;

        let mut dst_entries = self.read_dir(&mut inner, dst_dir)?;
        dst_entries.push(DirEntry {
            name: dst_name.to_string(),
            ino: src_entry.ino,
        });
        self.write_dir(&mut inner, dst_dir, &dst_entries)?;

        // Fix ".." and parent link counts for moved directories.
        if moving_is_dir && src_dir != dst_dir {
            let mut child_entries = self.read_dir(&mut inner, src_entry.ino)?;
            for e in child_entries.iter_mut() {
                if e.name == ".." {
                    e.ino = dst_dir;
                }
            }
            self.write_dir(&mut inner, src_entry.ino, &child_entries)?;
            let mut old_parent = self.load(src_dir)?;
            old_parent.nlink -= 1;
            self.write_inode(src_dir, &old_parent);
            let mut new_parent = self.load(dst_dir)?;
            new_parent.nlink += 1;
            self.write_inode(dst_dir, &new_parent);
        }
        Ok(())
    }

    /// Reads up to `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// [`FsError::IsDir`] when reading a directory.
    pub fn read(&self, ino: Ino, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        let mut inner = self.inner.lock();
        let mut inode = self.load(ino)?;
        if inode.kind() == FileKind::Directory {
            return Err(FsError::IsDir);
        }
        let data = self.read_inode_data(&mut inner, &mut inode, offset, len)?;
        self.mark_dirty(&mut inner);
        inner.tick += 1;
        inode.atime = inner.tick;
        self.write_inode(ino, &inode);
        Ok(data)
    }

    /// Writes `data` at `offset`, extending the file as needed.
    ///
    /// # Errors
    ///
    /// [`FsError::IsDir`], [`FsError::NoSpace`], [`FsError::TooBig`].
    pub fn write(&self, ino: Ino, offset: u64, data: &[u8]) -> Result<usize, FsError> {
        let mut inner = self.inner.lock();
        let mut inode = self.load(ino)?;
        if inode.kind() == FileKind::Directory {
            return Err(FsError::IsDir);
        }
        self.mark_dirty(&mut inner);
        self.write_inode_data(&mut inner, &mut inode, offset, data)?;
        inner.tick += 1;
        inode.mtime = inner.tick;
        inode.ctime = inner.tick;
        self.write_inode(ino, &inode);
        Ok(data.len())
    }

    /// Returns the attributes of `ino`.
    ///
    /// # Errors
    ///
    /// [`FsError::BadInode`] for free or out-of-range inodes.
    pub fn getattr(&self, ino: Ino) -> Result<Attr, FsError> {
        let inode = self.load(ino)?;
        Ok(Attr {
            ino,
            kind: inode.kind(),
            mode: inode.mode & 0o7777,
            uid: inode.uid,
            gid: inode.gid,
            nlink: inode.nlink,
            size: inode.size,
            atime: inode.atime,
            mtime: inode.mtime,
            ctime: inode.ctime,
            generation: inode.generation,
        })
    }

    /// Applies attribute changes (chmod/chown/truncate/utimes).
    ///
    /// # Errors
    ///
    /// Propagates [`Ffs::getattr`] errors; size changes can hit
    /// [`FsError::NoSpace`].
    pub fn setattr(&self, ino: Ino, set: SetAttr) -> Result<Attr, FsError> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let mut inode = self.load(ino)?;
        self.mark_dirty(&mut inner);
        if let Some(mode) = set.mode {
            inode.mode = (inode.mode & 0o170000) | (mode & 0o7777);
        }
        if let Some(uid) = set.uid {
            inode.uid = uid;
        }
        if let Some(gid) = set.gid {
            inode.gid = gid;
        }
        if let Some(size) = set.size {
            if inode.kind() == FileKind::Directory {
                return Err(FsError::IsDir);
            }
            if size < inode.size {
                let keep_blocks = size.div_ceil(BLOCK_SIZE as u64);
                self.free_blocks_from(&mut inner, &mut inode, keep_blocks);
                // Zero the tail of the boundary block.
                let in_block = (size % BLOCK_SIZE as u64) as usize;
                if in_block != 0 {
                    if let Some(block) =
                        self.bmap(&mut inner, &mut inode, size / BLOCK_SIZE as u64, false)?
                    {
                        let mut buf = vec![0u8; BLOCK_SIZE];
                        self.disk.read_block_into(block, &mut buf);
                        for b in buf[in_block..].iter_mut() {
                            *b = 0;
                        }
                        self.disk.write_block(block, &buf);
                    }
                }
            }
            inode.size = size;
            inode.mtime = inner.tick;
        }
        if let Some(atime) = set.atime {
            inode.atime = atime;
        }
        if let Some(mtime) = set.mtime {
            inode.mtime = mtime;
        }
        inode.ctime = inner.tick;
        self.write_inode(ino, &inode);
        drop(inner);
        self.getattr(ino)
    }

    /// Lists a directory (including `.` and `..`).
    ///
    /// # Errors
    ///
    /// [`FsError::NotDir`] for non-directories.
    pub fn readdir(&self, ino: Ino) -> Result<Vec<DirEntry>, FsError> {
        let mut inner = self.inner.lock();
        self.read_dir(&mut inner, ino)
    }

    /// Filesystem usage statistics.
    pub fn statfs(&self) -> FsStats {
        let inner = self.inner.lock();
        FsStats {
            block_size: BLOCK_SIZE as u32,
            total_blocks: self.layout.total_blocks - self.layout.data_start,
            free_blocks: inner.free_blocks,
            total_inodes: self.inode_count,
            free_inodes: inner.free_inodes,
        }
    }

    /// Validates a `(ino, generation)` handle pair.
    ///
    /// # Errors
    ///
    /// [`FsError::Stale`] when the generation does not match (the inode
    /// was recycled), [`FsError::BadInode`] when unallocated.
    pub fn validate_handle(&self, ino: Ino, generation: u32) -> Result<(), FsError> {
        let inode = self.load(ino)?;
        if inode.generation != generation {
            return Err(FsError::Stale);
        }
        Ok(())
    }

    /// Walks a `/`-separated path from the root (convenience for tests
    /// and examples).
    ///
    /// # Errors
    ///
    /// The usual lookup errors.
    pub fn resolve_path(&self, path: &str) -> Result<Ino, FsError> {
        let mut cur = self.root();
        for part in path.split('/').filter(|p| !p.is_empty()) {
            cur = self.lookup(cur, part)?;
        }
        Ok(cur)
    }

    /// Snapshot of internal bitmaps for the consistency checker
    /// (inode bitmap, block bitmap, free blocks, free inodes, dirty).
    pub(crate) fn bitmaps(&self) -> (Vec<bool>, Vec<bool>, u64, u32, bool) {
        let inner = self.inner.lock();
        (
            inner.inode_bitmap.clone(),
            inner.block_bitmap.clone(),
            inner.free_blocks,
            inner.free_inodes,
            inner.dirty,
        )
    }

    /// The first data block number (metadata lives below this).
    pub(crate) fn data_start(&self) -> u64 {
        self.layout.data_start
    }

    /// The static block layout (consistency checker).
    pub(crate) fn layout(&self) -> &Layout {
        &self.layout
    }
}
