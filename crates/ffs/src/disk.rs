//! Block-device layer: re-exports of the pluggable [`store`]
//! subsystem.
//!
//! The simulated timing-model disk that used to live here (`MemDisk`)
//! moved behind the [`store::BlockStore`] trait as
//! [`store::SimStore`]; this module keeps the historical names alive
//! so existing call sites (`MemDisk::untimed`,
//! `DiskModel::quantum_fireball_ct10`, `BLOCK_SIZE`) keep compiling.
//! New code should select a backend through [`store::StoreBackend`]
//! and [`crate::Ffs::format_backend`].

pub use store::{
    zero_block, BlockStore, Bytes, CachedStore, DiskModel, RemoteOptions, ShardedStore,
    StoreBackend, StoreStats, TimedStore, BLOCK_SIZE,
};

/// The seed's name for the simulated timing-model disk.
pub type MemDisk = store::SimStore;
