//! Unit tests for the filesystem layer.

use crate::fs::SetAttr;
use crate::{Ffs, FileKind, FsConfig, FsError, BLOCK_SIZE};

fn fs() -> Ffs {
    Ffs::format_in_memory(FsConfig::small())
}

#[test]
fn fresh_filesystem_checks_clean() {
    fs().check().unwrap();
}

#[test]
fn create_and_lookup() {
    let fs = fs();
    let ino = fs.create(fs.root(), "a.txt", 0o644, 10, 20).unwrap();
    assert_eq!(fs.lookup(fs.root(), "a.txt").unwrap(), ino);
    let attr = fs.getattr(ino).unwrap();
    assert_eq!(attr.kind, FileKind::Regular);
    assert_eq!(attr.mode, 0o644);
    assert_eq!(attr.uid, 10);
    assert_eq!(attr.gid, 20);
    assert_eq!(attr.size, 0);
    assert_eq!(attr.nlink, 1);
    fs.check().unwrap();
}

#[test]
fn duplicate_create_rejected() {
    let fs = fs();
    fs.create(fs.root(), "a", 0o644, 0, 0).unwrap();
    assert_eq!(fs.create(fs.root(), "a", 0o644, 0, 0), Err(FsError::Exists));
}

#[test]
fn bad_names_rejected() {
    let fs = fs();
    for name in ["", ".", "..", "a/b", "nul\0byte"] {
        assert_eq!(
            fs.create(fs.root(), name, 0o644, 0, 0),
            Err(FsError::BadName),
            "name {name:?}"
        );
    }
    let long = "x".repeat(256);
    assert_eq!(
        fs.create(fs.root(), &long, 0o644, 0, 0),
        Err(FsError::BadName)
    );
    let ok = "x".repeat(255);
    fs.create(fs.root(), &ok, 0o644, 0, 0).unwrap();
}

#[test]
fn write_read_small() {
    let fs = fs();
    let ino = fs.create(fs.root(), "f", 0o644, 0, 0).unwrap();
    fs.write(ino, 0, b"hello world").unwrap();
    assert_eq!(fs.read(ino, 0, 100).unwrap(), b"hello world");
    assert_eq!(fs.read(ino, 6, 5).unwrap(), b"world");
    assert_eq!(fs.getattr(ino).unwrap().size, 11);
    fs.check().unwrap();
}

#[test]
fn overwrite_middle() {
    let fs = fs();
    let ino = fs.create(fs.root(), "f", 0o644, 0, 0).unwrap();
    fs.write(ino, 0, b"aaaaaaaaaa").unwrap();
    fs.write(ino, 3, b"BBB").unwrap();
    assert_eq!(fs.read(ino, 0, 10).unwrap(), b"aaaBBBaaaa");
    assert_eq!(fs.getattr(ino).unwrap().size, 10);
}

#[test]
fn write_across_block_boundaries() {
    let fs = fs();
    let ino = fs.create(fs.root(), "f", 0o644, 0, 0).unwrap();
    let data: Vec<u8> = (0..3 * BLOCK_SIZE + 100).map(|i| (i % 251) as u8).collect();
    fs.write(ino, 0, &data).unwrap();
    assert_eq!(fs.read(ino, 0, data.len()).unwrap(), data);
    // Unaligned read spanning blocks.
    assert_eq!(
        fs.read(ino, BLOCK_SIZE as u64 - 10, 20).unwrap(),
        &data[BLOCK_SIZE - 10..BLOCK_SIZE + 10]
    );
    fs.check().unwrap();
}

#[test]
fn sparse_file_reads_zeros() {
    let fs = fs();
    let ino = fs.create(fs.root(), "f", 0o644, 0, 0).unwrap();
    fs.write(ino, 5 * BLOCK_SIZE as u64, b"end").unwrap();
    assert_eq!(fs.getattr(ino).unwrap().size, 5 * BLOCK_SIZE as u64 + 3);
    let hole = fs.read(ino, 0, BLOCK_SIZE).unwrap();
    assert!(hole.iter().all(|&b| b == 0));
    assert_eq!(fs.read(ino, 5 * BLOCK_SIZE as u64, 3).unwrap(), b"end");
    fs.check().unwrap();
}

#[test]
fn large_file_uses_indirect_blocks() {
    // > 12 direct blocks (96 KB) and into the single-indirect range.
    let fs = fs();
    let ino = fs.create(fs.root(), "big", 0o644, 0, 0).unwrap();
    let chunk = vec![0xabu8; BLOCK_SIZE];
    let blocks = 20;
    for i in 0..blocks {
        fs.write(ino, (i * BLOCK_SIZE) as u64, &chunk).unwrap();
    }
    assert_eq!(fs.getattr(ino).unwrap().size, (blocks * BLOCK_SIZE) as u64);
    let back = fs.read(ino, (15 * BLOCK_SIZE) as u64, BLOCK_SIZE).unwrap();
    assert_eq!(back, chunk);
    fs.check().unwrap();
    // Deleting reclaims everything.
    let free_before = fs.statfs().free_blocks;
    fs.unlink(fs.root(), "big").unwrap();
    assert!(fs.statfs().free_blocks > free_before);
    fs.check().unwrap();
}

#[test]
fn double_indirect_range() {
    // Write a block beyond 12 + 2048 blocks to hit the double-indirect
    // path (sparse, so only a few blocks allocate).
    let fs = fs();
    let ino = fs.create(fs.root(), "huge", 0o644, 0, 0).unwrap();
    let fbn = (12 + 2048 + 5) as u64;
    fs.write(ino, fbn * BLOCK_SIZE as u64, b"deep").unwrap();
    assert_eq!(fs.read(ino, fbn * BLOCK_SIZE as u64, 4).unwrap(), b"deep");
    fs.check().unwrap();
    fs.unlink(fs.root(), "huge").unwrap();
    fs.check().unwrap();
}

#[test]
fn unlink_frees_space() {
    let fs = fs();
    let before = fs.statfs();
    let ino = fs.create(fs.root(), "f", 0o644, 0, 0).unwrap();
    fs.write(ino, 0, &vec![1u8; 4 * BLOCK_SIZE]).unwrap();
    assert!(fs.statfs().free_blocks < before.free_blocks);
    fs.unlink(fs.root(), "f").unwrap();
    assert_eq!(fs.statfs().free_blocks, before.free_blocks);
    assert_eq!(fs.statfs().free_inodes, before.free_inodes);
    assert_eq!(fs.lookup(fs.root(), "f"), Err(FsError::NoEnt));
    fs.check().unwrap();
}

#[test]
fn mkdir_and_nested_paths() {
    let fs = fs();
    let a = fs.mkdir(fs.root(), "a", 0o755, 0, 0).unwrap();
    let b = fs.mkdir(a, "b", 0o755, 0, 0).unwrap();
    let f = fs.create(b, "file", 0o644, 0, 0).unwrap();
    assert_eq!(fs.resolve_path("/a/b/file").unwrap(), f);
    assert_eq!(fs.getattr(a).unwrap().nlink, 3); // ".", parent entry, b's ".."
    assert_eq!(fs.getattr(fs.root()).unwrap().nlink, 3);
    fs.check().unwrap();
}

#[test]
fn rmdir_requires_empty() {
    let fs = fs();
    let a = fs.mkdir(fs.root(), "a", 0o755, 0, 0).unwrap();
    fs.create(a, "f", 0o644, 0, 0).unwrap();
    assert_eq!(fs.rmdir(fs.root(), "a"), Err(FsError::NotEmpty));
    fs.unlink(a, "f").unwrap();
    fs.rmdir(fs.root(), "a").unwrap();
    assert_eq!(fs.lookup(fs.root(), "a"), Err(FsError::NoEnt));
    assert_eq!(fs.getattr(fs.root()).unwrap().nlink, 2);
    fs.check().unwrap();
}

#[test]
fn unlink_directory_rejected() {
    let fs = fs();
    fs.mkdir(fs.root(), "d", 0o755, 0, 0).unwrap();
    assert_eq!(fs.unlink(fs.root(), "d"), Err(FsError::IsDir));
}

#[test]
fn rmdir_file_rejected() {
    let fs = fs();
    fs.create(fs.root(), "f", 0o644, 0, 0).unwrap();
    assert_eq!(fs.rmdir(fs.root(), "f"), Err(FsError::NotDir));
}

#[test]
fn hard_links() {
    let fs = fs();
    let ino = fs.create(fs.root(), "orig", 0o644, 0, 0).unwrap();
    fs.write(ino, 0, b"shared").unwrap();
    fs.link(ino, fs.root(), "alias").unwrap();
    assert_eq!(fs.getattr(ino).unwrap().nlink, 2);
    assert_eq!(fs.lookup(fs.root(), "alias").unwrap(), ino);
    fs.unlink(fs.root(), "orig").unwrap();
    // Data still reachable through the alias.
    assert_eq!(fs.read(ino, 0, 6).unwrap(), b"shared");
    assert_eq!(fs.getattr(ino).unwrap().nlink, 1);
    fs.unlink(fs.root(), "alias").unwrap();
    assert_eq!(fs.getattr(ino), Err(FsError::BadInode));
    fs.check().unwrap();
}

#[test]
fn link_to_directory_rejected() {
    let fs = fs();
    let d = fs.mkdir(fs.root(), "d", 0o755, 0, 0).unwrap();
    assert_eq!(fs.link(d, fs.root(), "dlink"), Err(FsError::IsDir));
}

#[test]
fn symlinks() {
    let fs = fs();
    let ino = fs.symlink(fs.root(), "ln", "/a/b/target", 0, 0).unwrap();
    assert_eq!(fs.readlink(ino).unwrap(), "/a/b/target");
    assert_eq!(fs.getattr(ino).unwrap().kind, FileKind::Symlink);
    // readlink on a regular file fails.
    let f = fs.create(fs.root(), "f", 0o644, 0, 0).unwrap();
    assert_eq!(fs.readlink(f), Err(FsError::BadType));
    fs.check().unwrap();
}

#[test]
fn rename_within_directory() {
    let fs = fs();
    let ino = fs.create(fs.root(), "old", 0o644, 0, 0).unwrap();
    fs.rename(fs.root(), "old", fs.root(), "new").unwrap();
    assert_eq!(fs.lookup(fs.root(), "new").unwrap(), ino);
    assert_eq!(fs.lookup(fs.root(), "old"), Err(FsError::NoEnt));
    fs.check().unwrap();
}

#[test]
fn rename_across_directories() {
    let fs = fs();
    let a = fs.mkdir(fs.root(), "a", 0o755, 0, 0).unwrap();
    let b = fs.mkdir(fs.root(), "b", 0o755, 0, 0).unwrap();
    let f = fs.create(a, "f", 0o644, 0, 0).unwrap();
    fs.write(f, 0, b"moved").unwrap();
    fs.rename(a, "f", b, "g").unwrap();
    assert_eq!(fs.lookup(b, "g").unwrap(), f);
    assert_eq!(fs.read(f, 0, 5).unwrap(), b"moved");
    fs.check().unwrap();
}

#[test]
fn rename_directory_updates_dotdot() {
    let fs = fs();
    let a = fs.mkdir(fs.root(), "a", 0o755, 0, 0).unwrap();
    let b = fs.mkdir(fs.root(), "b", 0o755, 0, 0).unwrap();
    let sub = fs.mkdir(a, "sub", 0o755, 0, 0).unwrap();
    fs.rename(a, "sub", b, "sub").unwrap();
    let entries = fs.readdir(sub).unwrap();
    let dotdot = entries.iter().find(|e| e.name == "..").unwrap();
    assert_eq!(dotdot.ino, b);
    assert_eq!(fs.getattr(a).unwrap().nlink, 2);
    assert_eq!(fs.getattr(b).unwrap().nlink, 3);
    fs.check().unwrap();
}

#[test]
fn rename_into_own_subtree_rejected() {
    let fs = fs();
    let a = fs.mkdir(fs.root(), "a", 0o755, 0, 0).unwrap();
    let sub = fs.mkdir(a, "sub", 0o755, 0, 0).unwrap();
    assert_eq!(
        fs.rename(fs.root(), "a", sub, "inside"),
        Err(FsError::InvalidMove)
    );
    fs.check().unwrap();
}

#[test]
fn rename_replaces_file() {
    let fs = fs();
    let src = fs.create(fs.root(), "src", 0o644, 0, 0).unwrap();
    let dst = fs.create(fs.root(), "dst", 0o644, 0, 0).unwrap();
    fs.write(dst, 0, &vec![9u8; BLOCK_SIZE * 2]).unwrap();
    fs.rename(fs.root(), "src", fs.root(), "dst").unwrap();
    assert_eq!(fs.lookup(fs.root(), "dst").unwrap(), src);
    assert_eq!(fs.getattr(dst), Err(FsError::BadInode)); // old dst freed
    fs.check().unwrap();
}

#[test]
fn rename_dir_over_nonempty_dir_rejected() {
    let fs = fs();
    fs.mkdir(fs.root(), "a", 0o755, 0, 0).unwrap();
    let b = fs.mkdir(fs.root(), "b", 0o755, 0, 0).unwrap();
    fs.create(b, "f", 0o644, 0, 0).unwrap();
    assert_eq!(
        fs.rename(fs.root(), "a", fs.root(), "b"),
        Err(FsError::NotEmpty)
    );
}

#[test]
fn rename_noop_same_name() {
    let fs = fs();
    let ino = fs.create(fs.root(), "f", 0o644, 0, 0).unwrap();
    fs.rename(fs.root(), "f", fs.root(), "f").unwrap();
    assert_eq!(fs.lookup(fs.root(), "f").unwrap(), ino);
    fs.check().unwrap();
}

#[test]
fn truncate_shrink_and_grow() {
    let fs = fs();
    let ino = fs.create(fs.root(), "f", 0o644, 0, 0).unwrap();
    fs.write(ino, 0, &vec![7u8; BLOCK_SIZE * 3]).unwrap();
    let free_full = fs.statfs().free_blocks;

    let attr = fs
        .setattr(
            ino,
            SetAttr {
                size: Some(100),
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(attr.size, 100);
    assert!(fs.statfs().free_blocks > free_full);
    assert_eq!(fs.read(ino, 0, 100).unwrap(), vec![7u8; 100]);

    // Growing exposes zeros, not stale data.
    fs.setattr(
        ino,
        SetAttr {
            size: Some(BLOCK_SIZE as u64),
            ..Default::default()
        },
    )
    .unwrap();
    let data = fs.read(ino, 0, BLOCK_SIZE).unwrap();
    assert_eq!(&data[..100], &vec![7u8; 100][..]);
    assert!(
        data[100..].iter().all(|&b| b == 0),
        "stale bytes after grow"
    );
    fs.check().unwrap();
}

#[test]
fn setattr_chmod_chown() {
    let fs = fs();
    let ino = fs.create(fs.root(), "f", 0o644, 0, 0).unwrap();
    let attr = fs
        .setattr(
            ino,
            SetAttr {
                mode: Some(0o600),
                uid: Some(42),
                gid: Some(43),
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(attr.mode, 0o600);
    assert_eq!(attr.uid, 42);
    assert_eq!(attr.gid, 43);
    assert_eq!(
        attr.kind,
        FileKind::Regular,
        "chmod must not change the type"
    );
}

#[test]
fn readdir_lists_dot_entries() {
    let fs = fs();
    fs.create(fs.root(), "x", 0o644, 0, 0).unwrap();
    let names: Vec<String> = fs
        .readdir(fs.root())
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert!(names.contains(&".".to_string()));
    assert!(names.contains(&"..".to_string()));
    assert!(names.contains(&"x".to_string()));
}

#[test]
fn generation_numbers_detect_stale_handles() {
    let fs = fs();
    let ino = fs.create(fs.root(), "f", 0o644, 0, 0).unwrap();
    let generation = fs.getattr(ino).unwrap().generation;
    fs.validate_handle(ino, generation).unwrap();
    fs.unlink(fs.root(), "f").unwrap();

    // Recreate files until the inode number is reused.
    let mut reused = None;
    for i in 0..1000 {
        let newino = fs.create(fs.root(), &format!("g{i}"), 0o644, 0, 0).unwrap();
        if newino == ino {
            reused = Some(newino);
            break;
        }
    }
    let reused = reused.expect("inode should be recycled");
    assert_eq!(fs.validate_handle(reused, generation), Err(FsError::Stale));
    let new_generation = fs.getattr(reused).unwrap().generation;
    assert_ne!(new_generation, generation);
    fs.validate_handle(reused, new_generation).unwrap();
}

#[test]
fn out_of_space_reported_and_recoverable() {
    let fs = Ffs::format_in_memory(FsConfig {
        total_blocks: 64,
        inode_count: 64,
    });
    let ino = fs.create(fs.root(), "f", 0o644, 0, 0).unwrap();
    let chunk = vec![1u8; BLOCK_SIZE];
    let mut written = 0u64;
    let err = loop {
        match fs.write(ino, written, &chunk) {
            Ok(_) => written += BLOCK_SIZE as u64,
            Err(e) => break e,
        }
    };
    assert_eq!(err, FsError::NoSpace);
    assert!(written > 0);
    // Deleting recovers the space and the filesystem stays consistent.
    fs.unlink(fs.root(), "f").unwrap();
    fs.check().unwrap();
    let ino2 = fs.create(fs.root(), "g", 0o644, 0, 0).unwrap();
    fs.write(ino2, 0, &chunk).unwrap();
    fs.check().unwrap();
}

#[test]
fn out_of_inodes() {
    let fs = Ffs::format_in_memory(FsConfig {
        total_blocks: 256,
        inode_count: 8,
    });
    let mut made = 0;
    for i in 0..16 {
        match fs.create(fs.root(), &format!("f{i}"), 0o644, 0, 0) {
            Ok(_) => made += 1,
            Err(FsError::NoSpace) => break,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert_eq!(made, 6, "8 inodes minus reserved 0 and root 1");
    fs.check().unwrap();
}

#[test]
fn many_files_in_directory() {
    let fs = fs();
    for i in 0..300 {
        fs.create(fs.root(), &format!("file{i:04}"), 0o644, 0, 0)
            .unwrap();
    }
    assert_eq!(fs.readdir(fs.root()).unwrap().len(), 302);
    assert!(fs.lookup(fs.root(), "file0299").is_ok());
    fs.check().unwrap();
    for i in (0..300).step_by(2) {
        fs.unlink(fs.root(), &format!("file{i:04}")).unwrap();
    }
    assert_eq!(fs.readdir(fs.root()).unwrap().len(), 152);
    fs.check().unwrap();
}

#[test]
fn timestamps_advance() {
    let fs = fs();
    let ino = fs.create(fs.root(), "f", 0o644, 0, 0).unwrap();
    let t0 = fs.getattr(ino).unwrap();
    fs.write(ino, 0, b"x").unwrap();
    let t1 = fs.getattr(ino).unwrap();
    assert!(t1.mtime > t0.mtime);
    fs.read(ino, 0, 1).unwrap();
    let t2 = fs.getattr(ino).unwrap();
    assert!(t2.atime > t1.atime);
}

#[test]
fn read_of_directory_rejected() {
    let fs = fs();
    assert_eq!(fs.read(fs.root(), 0, 10), Err(FsError::IsDir));
    assert_eq!(fs.write(fs.root(), 0, b"x"), Err(FsError::IsDir));
}

#[test]
fn statfs_reports_consistent_numbers() {
    let fs = fs();
    let s = fs.statfs();
    assert_eq!(s.block_size, BLOCK_SIZE as u32);
    assert!(s.free_blocks < s.total_blocks); // root dir uses one block
    assert_eq!(s.free_inodes, s.total_inodes - 2);
}
