//! The on-disk superblock (block 0) and mount-time validation errors.
//!
//! # On-disk layout (version 1)
//!
//! All integers big-endian, matching the inode encoding:
//!
//! | offset | size | field                                         |
//! |--------|------|-----------------------------------------------|
//! | 0      | 8    | magic `b"FFSDISC1"`                           |
//! | 8      | 4    | format version (currently 1)                  |
//! | 12     | 8    | `total_blocks` — volume geometry              |
//! | 20     | 4    | `inode_count`                                 |
//! | 24     | 8    | `ibmap_start` — first inode-bitmap block      |
//! | 32     | 8    | `bbmap_start` — first block-bitmap block      |
//! | 40     | 8    | `itable_start` — first inode-table block      |
//! | 48     | 8    | `data_start` — first data block               |
//! | 56     | 8    | `tick` — filesystem clock at the last sync    |
//! | 64     | 1    | `clean` — 1 when the on-disk bitmaps are valid|
//! | 65     | 31   | reserved (zero)                               |
//! | 96     | 32   | SHA-256 over bytes `0..96`                    |
//!
//! The checksum makes "refuse to mount garbage" cheap: random bytes,
//! a truncated image, or a bit-flipped header all fail closed instead
//! of producing a half-mounted volume. The `clean` flag is written as
//! 1 by [`crate::Ffs::sync`] together with fresh bitmap copies, and
//! flipped to 0 by the first mutation afterwards — so a mount sees
//! either trustworthy bitmaps or an explicit signal to rebuild state
//! from the inode table.

use discfs_crypto::sha256::Sha256;
use discfs_crypto::Digest;

use crate::disk::BLOCK_SIZE;

/// Superblock magic: identifies a formatted volume.
pub(crate) const SB_MAGIC: [u8; 8] = *b"FFSDISC1";
/// Current on-disk format version.
pub(crate) const SB_VERSION: u32 = 1;
/// Bytes covered by the superblock checksum.
const SB_HASHED: usize = 96;
/// Checksum offset.
const SB_CHECKSUM_AT: usize = 96;

/// Why a store could not be mounted as an existing volume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MountError {
    /// Block 0 carries no superblock magic — the store was never
    /// formatted (or holds something else entirely).
    NoSuperblock,
    /// The superblock magic matched but the format version is not one
    /// this build understands.
    UnsupportedVersion(u32),
    /// The superblock checksum does not match its contents (torn
    /// superblock write or corrupted image).
    ChecksumMismatch,
    /// The stored geometry is internally inconsistent (layout offsets
    /// do not follow from `total_blocks`/`inode_count`).
    CorruptGeometry,
    /// The volume claims more blocks than the backing store provides.
    DiskTooSmall {
        /// Blocks the superblock says the volume spans.
        volume_blocks: u64,
        /// Blocks the backing store actually has.
        disk_blocks: u64,
    },
    /// The superblock was valid but the volume state behind it is not
    /// recoverable (e.g. the root directory inode is gone).
    CorruptVolume(String),
}

impl std::fmt::Display for MountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MountError::NoSuperblock => write!(f, "no superblock: store is not a formatted volume"),
            MountError::UnsupportedVersion(v) => write!(f, "unsupported volume format version {v}"),
            MountError::ChecksumMismatch => write!(f, "superblock checksum mismatch"),
            MountError::CorruptGeometry => write!(f, "superblock geometry is inconsistent"),
            MountError::DiskTooSmall {
                volume_blocks,
                disk_blocks,
            } => write!(
                f,
                "volume spans {volume_blocks} blocks but the store only has {disk_blocks}"
            ),
            MountError::CorruptVolume(why) => write!(f, "volume unrecoverable: {why}"),
        }
    }
}

impl std::error::Error for MountError {}

/// Parsed superblock contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Superblock {
    pub total_blocks: u64,
    pub inode_count: u32,
    pub ibmap_start: u64,
    pub bbmap_start: u64,
    pub itable_start: u64,
    pub data_start: u64,
    /// Filesystem tick at the last sync (mount resumes past it).
    pub tick: u64,
    /// Whether the on-disk bitmaps match the inode table.
    pub clean: bool,
}

impl Superblock {
    /// Serializes to a full superblock block (checksummed).
    pub fn to_block(self) -> Vec<u8> {
        let mut out = vec![0u8; BLOCK_SIZE];
        out[0..8].copy_from_slice(&SB_MAGIC);
        out[8..12].copy_from_slice(&SB_VERSION.to_be_bytes());
        out[12..20].copy_from_slice(&self.total_blocks.to_be_bytes());
        out[20..24].copy_from_slice(&self.inode_count.to_be_bytes());
        out[24..32].copy_from_slice(&self.ibmap_start.to_be_bytes());
        out[32..40].copy_from_slice(&self.bbmap_start.to_be_bytes());
        out[40..48].copy_from_slice(&self.itable_start.to_be_bytes());
        out[48..56].copy_from_slice(&self.data_start.to_be_bytes());
        out[56..64].copy_from_slice(&self.tick.to_be_bytes());
        out[64] = self.clean as u8;
        let checksum = Sha256::digest(&out[..SB_HASHED]);
        out[SB_CHECKSUM_AT..SB_CHECKSUM_AT + 32].copy_from_slice(&checksum);
        out
    }

    /// Parses and validates a superblock read from block 0.
    ///
    /// # Errors
    ///
    /// [`MountError::NoSuperblock`] when the magic is absent,
    /// [`MountError::UnsupportedVersion`] /
    /// [`MountError::ChecksumMismatch`] for recognizable-but-unusable
    /// headers.
    pub fn from_block(data: &[u8]) -> Result<Superblock, MountError> {
        if data.len() < BLOCK_SIZE || data[0..8] != SB_MAGIC {
            return Err(MountError::NoSuperblock);
        }
        let version = u32::from_be_bytes(data[8..12].try_into().expect("4 bytes"));
        if version != SB_VERSION {
            return Err(MountError::UnsupportedVersion(version));
        }
        let checksum = Sha256::digest(&data[..SB_HASHED]);
        if data[SB_CHECKSUM_AT..SB_CHECKSUM_AT + 32] != checksum[..] {
            return Err(MountError::ChecksumMismatch);
        }
        let u64_at =
            |off: usize| u64::from_be_bytes(data[off..off + 8].try_into().expect("8 bytes"));
        Ok(Superblock {
            total_blocks: u64_at(12),
            inode_count: u32::from_be_bytes(data[20..24].try_into().expect("4 bytes")),
            ibmap_start: u64_at(24),
            bbmap_start: u64_at(32),
            itable_start: u64_at(40),
            data_start: u64_at(48),
            tick: u64_at(56),
            clean: data[64] == 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Superblock {
        Superblock {
            total_blocks: 2048,
            inode_count: 1024,
            ibmap_start: 1,
            bbmap_start: 2,
            itable_start: 3,
            data_start: 35,
            tick: 42,
            clean: true,
        }
    }

    #[test]
    fn round_trip() {
        let sb = sample();
        assert_eq!(Superblock::from_block(&sb.to_block()), Ok(sb));
    }

    #[test]
    fn garbage_is_no_superblock() {
        let block = vec![0xA5u8; BLOCK_SIZE];
        assert_eq!(
            Superblock::from_block(&block),
            Err(MountError::NoSuperblock)
        );
        assert_eq!(
            Superblock::from_block(&vec![0u8; BLOCK_SIZE]),
            Err(MountError::NoSuperblock)
        );
    }

    #[test]
    fn bit_flip_fails_checksum() {
        let mut block = sample().to_block();
        block[13] ^= 0x80; // corrupt total_blocks
        assert_eq!(
            Superblock::from_block(&block),
            Err(MountError::ChecksumMismatch)
        );
    }

    #[test]
    fn future_version_is_rejected() {
        let mut block = sample().to_block();
        block[8..12].copy_from_slice(&7u32.to_be_bytes());
        assert_eq!(
            Superblock::from_block(&block),
            Err(MountError::UnsupportedVersion(7))
        );
    }
}
