//! `ffs` — an inode-based Unix filesystem over a simulated block device.
//!
//! This crate plays two roles in the DisCFS reproduction:
//!
//! 1. **The `FFS` baseline** of the paper's Figures 7–12: benchmarks run
//!    directly against this filesystem to obtain the "local file
//!    system" series.
//! 2. **The backing store** for the user-level NFS servers (CFS-NE and
//!    DisCFS) — the paper's prototype stored files in the server's
//!    local filesystem, identified by inode numbers; our `discfs` crate
//!    does the same, with the generation numbers the paper lists as
//!    future work.
//!
//! The design is a deliberately classic Berkeley-style layout on 8 KB
//! blocks: superblock, inode/block bitmaps, a fixed inode table, then
//! data blocks. Files grow through 12 direct pointers, one single- and
//! one double-indirect block. Directories store real `.`/`..` entries.
//! An [`fsck`][Ffs::check]-style invariant checker backs the property
//! tests.
//!
//! # Storage backends
//!
//! The filesystem is written against the [`BlockStore`] trait from the
//! `store` crate rather than a concrete device. Pick a backend at
//! format time:
//!
//! * [`Ffs::format_in_memory`] / [`Ffs::format_timed`] — the
//!   historical constructors: an in-memory simulated disk, untimed or
//!   charging the paper's Quantum Fireball timing model.
//! * [`Ffs::format_backend`] — any [`StoreBackend`]: `SimTimed`,
//!   `SimInstant`, `FileJournal` (persistent, write-ahead journaled;
//!   call [`Ffs::sync`] to apply the WAL), `Dedup`/`DedupPersistent`
//!   (content-addressed, SHA-256 deduplicated, reports a dedup hit
//!   ratio through [`BlockStore::stats`]), `DedupEncrypted` (dedup
//!   wrapped in ChaCha20 encryption-at-rest), or `EncryptedJournal`
//!   (encrypted persistent journaled storage).
//! * Composable wrappers nest around any of the above:
//!   `StoreBackend::Cached` (a sharded write-back LRU buffer cache —
//!   hot reads become refcounted handle clones and never touch the
//!   backend), `StoreBackend::Sharded` (one volume striped `i % N`
//!   across N inner stores with per-shard locks and parallel flush),
//!   and `StoreBackend::Timed` (the paper's disk timing model charged
//!   on any backend, so virtual-time figures can compare persistent
//!   backends too).
//! * [`Ffs::format_on`] — any hand-built `Arc<dyn BlockStore>`,
//!   including custom wrappers like `store::EncryptedStore`.
//!
//! **Hot-path note:** `BlockStore::read_block` returns a shared
//! `Bytes` handle, and the filesystem's read path consumes it without
//! copying per block at the store layer — on in-memory, dedup, and
//! cache-hit paths a block read performs **zero heap allocations**
//! (`crates/bench/benches/micro_store.rs` pins this with a counting
//! allocator). Writes on `FileJournal` are group-committed: journal
//! records reach disk in one syscall per [`store::JOURNAL_BATCH_RECORDS`]
//! batch with the on-disk record format unchanged.
//!
//! # Parallel I/O engine (the pipelined file path)
//!
//! File reads and writes no longer loop the store per block: each
//! operation resolves its whole block mapping first, then moves the
//! extent in **one vectored call** (`BlockStore::read_blocks` /
//! `write_blocks`; a one-block extent stays scalar). Partial head and
//! tail blocks are still read-modify-written through
//! `read_block_into`, but the RMW'd buffers ride in the same vectored
//! write as the full blocks, in ascending file order — so the journal
//! records of a journaled backend are the same records, in the same
//! order, as the per-block loop produced (the crash matrix is
//! unchanged and passing). What the batching buys per backend:
//!
//! * `Sharded { workers: true, .. }` fans the extent out one job per
//!   involved shard through bounded submission queues, so a *single*
//!   client's streaming burst drives all N shards concurrently
//!   (`crates/bench/benches/streaming.rs` pins the ≥ 2× speedup on
//!   ≥ 4 cores).
//! * `FileJournal` seals a W-block vectored write into exactly
//!   `ceil(W / JOURNAL_BATCH_RECORDS)` journal append syscalls — the
//!   vectored write is a durability unit (its records are sealed when
//!   the call returns).
//! * `CachedReadahead` detects ascending strides on the scalar read
//!   path (NFS-style 8 KB transfers) and prefetches a configurable
//!   window from the inner store vectored, so a sequential consumer
//!   finds its next blocks already cached
//!   (`StoreStats::readahead_blocks` counts the traffic).
//! * `Timed` charges a contiguous run one seek + rotation plus
//!   per-block transfer — exactly what the looped path charged for
//!   the same access order, so the paper's virtual-time figures are
//!   byte-stable.
//!
//! Shutdown/flush ordering: `Ffs::sync` still flushes before writing
//! the clean marker and flushes again after; on a worker-enabled
//! sharded backend each flush is a job submitted behind any queued
//! work (FIFO), so the clean marker can never overtake an in-flight
//! vectored write, and dropping the volume joins the workers before
//! the per-shard journals seal their final batches.
//!
//! # Persistence lifecycle
//!
//! A volume is a long-lived entity: format once, then mount on every
//! later life. The constructors split three ways:
//!
//! * **format** ([`Ffs::format_on`] and friends) — creates a fresh
//!   volume. Since the store now carries a checksummed superblock,
//!   the `format_*` paths *refuse* to touch a store that already
//!   holds one (the pre-mount behavior of silently reformatting — and
//!   destroying — an existing `FileJournal` directory is gone);
//!   [`Ffs::force_format_on`] is the explicit eraser.
//! * **mount** ([`Ffs::mount_on`] / [`Ffs::mount_backend`]) — reopens
//!   an existing volume: validates the superblock (magic, version,
//!   SHA-256 checksum, geometry against the store size — garbage
//!   fails closed with a [`MountError`]) and rebuilds in-memory state
//!   from disk.
//! * **open-or-format** ([`Ffs::open_or_format`] /
//!   [`Ffs::open_or_format_backend`]) — mounts when a superblock is
//!   present, formats when the store is virgin; a *damaged*
//!   superblock is still an error, never a silent reformat.
//!
//! Durability is sync-granular: [`Ffs::sync`] writes the in-memory
//! inode/block bitmaps to their durable regions, flushes the backend
//! (journaled backends apply their WAL; write-back caches write their
//! dirty blocks down first), marks the superblock clean, and flushes
//! once more — the flush *before* the clean marker guarantees the
//! marker can never reach the journal ahead of a mutation it claims
//! to cover, even through a `StoreBackend::Cached` composition. A
//! mount of a clean volume trusts the durable bitmaps; the
//! first mutation after a sync flips the superblock dirty, so a mount
//! after an unclean shutdown runs an fsck-style recovery sweep
//! instead: the inode table is authoritative, bitmaps are rebuilt
//! from it, directory entries pointing at lost inodes are dropped,
//! orphaned inodes/blocks are freed, and link counts are repaired —
//! landing on the last consistent state. On the `FileJournal` backend
//! every write is also journaled *before* [`Ffs::sync`], so an
//! acknowledged write survives a crash unless the journal record
//! itself was torn; the crash-injection tests truncate the journal at
//! every byte offset to pin that behavior down.
//!
//! The on-disk superblock layout (block 0) is documented in the
//! crate-private `sb` module: magic `FFSDISC1`, version, geometry
//! (`total_blocks`, `inode_count`, bitmap/inode-table/data offsets),
//! the sync tick, the clean flag, and a SHA-256 checksum over the
//! header.
//!
//! # Example
//!
//! ```
//! use ffs::{Ffs, FsConfig};
//!
//! let fs = Ffs::format_in_memory(FsConfig::small());
//! let root = fs.root();
//! let ino = fs.create(root, "hello.txt", 0o644, 0, 0).unwrap();
//! fs.write(ino, 0, b"hello world").unwrap();
//! assert_eq!(fs.read(ino, 0, 5).unwrap(), b"hello");
//! fs.check().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
pub mod disk;
mod fs;
mod inode;
mod sb;
#[cfg(test)]
mod tests;

pub use disk::{
    BlockStore, DiskModel, MemDisk, RemoteOptions, StoreBackend, StoreStats, BLOCK_SIZE,
};
pub use fs::{Attr, DirEntry, Ffs, FsConfig, FsStats, Ino, SetAttr};
pub use inode::FileKind;
pub use sb::MountError;

/// Errors returned by filesystem operations (errno-flavored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// No such file or directory.
    NoEnt,
    /// Entry already exists.
    Exists,
    /// Operation requires a directory.
    NotDir,
    /// Operation cannot apply to a directory.
    IsDir,
    /// Directory not empty.
    NotEmpty,
    /// Out of data blocks or inodes.
    NoSpace,
    /// Name too long or contains `/` or NUL.
    BadName,
    /// The handle's generation number is outdated (file was deleted and
    /// the inode reused) — NFS `ESTALE`.
    Stale,
    /// Inode number out of range or not allocated.
    BadInode,
    /// File too large for the pointer geometry.
    TooBig,
    /// Operation not supported on this file type.
    BadType,
    /// Cannot move a directory into its own subtree.
    InvalidMove,
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FsError::NoEnt => "no such file or directory",
            FsError::Exists => "file exists",
            FsError::NotDir => "not a directory",
            FsError::IsDir => "is a directory",
            FsError::NotEmpty => "directory not empty",
            FsError::NoSpace => "no space left on device",
            FsError::BadName => "invalid file name",
            FsError::Stale => "stale file handle",
            FsError::BadInode => "invalid inode",
            FsError::TooBig => "file too large",
            FsError::BadType => "inappropriate file type",
            FsError::InvalidMove => "invalid directory move",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for FsError {}
