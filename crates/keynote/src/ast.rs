//! Abstract syntax for KeyNote licensees expressions and conditions
//! programs.

use crate::Principal;

/// A licensees expression: who is delegated to, and how their support
/// combines (RFC 2704 §4.4).
#[derive(Debug, Clone, PartialEq)]
pub enum LicenseeExpr {
    /// A single principal.
    Principal(Principal),
    /// Conjunction: both sides must support the action (value = min).
    And(Box<LicenseeExpr>, Box<LicenseeExpr>),
    /// Disjunction: either side suffices (value = max).
    Or(Box<LicenseeExpr>, Box<LicenseeExpr>),
    /// Threshold: at least `k` of the sub-expressions must support the
    /// action (value = k-th largest sub-value).
    KOf(u32, Vec<LicenseeExpr>),
}

impl LicenseeExpr {
    /// Iterates over every principal mentioned in the expression.
    pub fn principals(&self) -> Vec<&Principal> {
        let mut out = Vec::new();
        self.collect_principals(&mut out);
        out
    }

    fn collect_principals<'a>(&'a self, out: &mut Vec<&'a Principal>) {
        match self {
            LicenseeExpr::Principal(p) => out.push(p),
            LicenseeExpr::And(a, b) | LicenseeExpr::Or(a, b) => {
                a.collect_principals(out);
                b.collect_principals(out);
            }
            LicenseeExpr::KOf(_, subs) => {
                for s in subs {
                    s.collect_principals(out);
                }
            }
        }
    }
}

/// A conditions program: an ordered list of clauses whose overall value
/// is the maximum clause value (RFC 2704 §4.6.4).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program(pub Vec<Clause>);

/// One `test -> outcome` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// The boolean guard.
    pub test: BoolExpr,
    /// What the clause yields when the guard holds.
    pub outcome: Outcome,
}

/// The right-hand side of a clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// No explicit `->`: a passing test yields `_MAX_TRUST`.
    MaxTrust,
    /// `-> "value"`: a passing test yields the named compliance value.
    Value(String),
    /// `-> { program }`: a passing test defers to a sub-program.
    Sub(Program),
}

/// Boolean expressions over action attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum BoolExpr {
    /// Literal `true`.
    True,
    /// Literal `false`.
    False,
    /// `!e`
    Not(Box<BoolExpr>),
    /// `a && b`
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// `a || b`
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// `lhs <op> rhs`
    Cmp(ValExpr, CmpOp, ValExpr),
    /// `subject ~= "pattern"` — regex search.
    Match(ValExpr, ValExpr),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

/// Value expressions (strings or numbers).
///
/// KeyNote is dynamically typed over strings; whether a comparison is
/// numeric is decided by the *syntactic kind* of its operands (see
/// `eval`): arithmetic expressions and numeric literals are numeric,
/// string literals and concatenations are strings, and attribute
/// references adopt the other side's kind.
#[derive(Debug, Clone, PartialEq)]
pub enum ValExpr {
    /// A quoted string literal.
    Str(String),
    /// A numeric literal (kept as written for exactness).
    Num(String),
    /// An attribute reference by name.
    Attr(String),
    /// `$expr` — the attribute whose *name* is the value of `expr`.
    Indirect(Box<ValExpr>),
    /// String concatenation `a . b`.
    Concat(Box<ValExpr>, Box<ValExpr>),
    /// Arithmetic `a <op> b`.
    Arith(ArithOp, Box<ValExpr>, Box<ValExpr>),
    /// Unary numeric negation.
    Neg(Box<ValExpr>),
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `^` (exponentiation)
    Pow,
}

impl ValExpr {
    /// Whether this expression is syntactically numeric.
    pub fn is_numeric_kind(&self) -> bool {
        matches!(self, ValExpr::Num(_) | ValExpr::Arith(..) | ValExpr::Neg(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn principals_collects_all() {
        let a = Principal::Opaque("a".into());
        let b = Principal::Opaque("b".into());
        let c = Principal::Opaque("c".into());
        let expr = LicenseeExpr::Or(
            Box::new(LicenseeExpr::Principal(a.clone())),
            Box::new(LicenseeExpr::KOf(
                2,
                vec![
                    LicenseeExpr::Principal(b.clone()),
                    LicenseeExpr::Principal(c.clone()),
                ],
            )),
        );
        let ps = expr.principals();
        assert_eq!(ps, vec![&a, &b, &c]);
    }

    #[test]
    fn numeric_kind() {
        assert!(ValExpr::Num("3".into()).is_numeric_kind());
        assert!(!ValExpr::Str("3".into()).is_numeric_kind());
        assert!(!ValExpr::Attr("x".into()).is_numeric_kind());
        assert!(ValExpr::Neg(Box::new(ValExpr::Attr("x".into()))).is_numeric_kind());
    }
}
