//! KeyNote assertions: parsing, canonical text, signing, verification.
//!
//! An assertion is a small text document of `Field: value` lines.
//! Continuation lines (starting with whitespace) extend the previous
//! field. Policies are unsigned assertions whose authorizer is the
//! literal `POLICY`; credentials are signed by their authorizer key and
//! the signature covers the raw text from the first byte up to the
//! start of the `Signature` field (so a credential cannot be altered in
//! transit — the property the paper relies on when credentials travel
//! by email).

use std::collections::HashMap;

use discfs_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use discfs_crypto::sha256::Sha256;
use discfs_crypto::{hex, Digest};

use crate::ast::{LicenseeExpr, Program};
use crate::parser;
use crate::{KeyNoteError, Principal};

/// The signature algorithm tag emitted and accepted by this crate.
pub(crate) const SIG_PREFIX: &str = "sig-ed25519-sha512-hex:";

/// A parsed KeyNote assertion.
#[derive(Debug, Clone)]
pub struct Assertion {
    raw: String,
    version: Option<String>,
    comment: Option<String>,
    authorizer: Principal,
    licensees: Option<LicenseeExpr>,
    conditions: Option<Program>,
    signature: Option<String>,
    /// Byte length of the raw text covered by the signature.
    signed_len: usize,
}

impl Assertion {
    /// Parses an assertion from its text form.
    ///
    /// # Errors
    ///
    /// Returns [`KeyNoteError::Syntax`] for malformed fields,
    /// duplicates, unknown field names or a missing `Authorizer`.
    pub fn parse(text: &str) -> Result<Assertion, KeyNoteError> {
        let mut fields: Vec<(String, String, usize)> = Vec::new(); // (name, body, byte offset)
        let mut offset = 0usize;
        for line in text.split_inclusive('\n') {
            let line_start = offset;
            offset += line.len();
            let trimmed_end = line.trim_end_matches(['\n', '\r']);
            if trimmed_end.trim().is_empty() {
                continue;
            }
            if trimmed_end.starts_with([' ', '\t']) {
                // Continuation of the previous field.
                match fields.last_mut() {
                    Some((_, body, _)) => {
                        body.push('\n');
                        body.push_str(trimmed_end.trim());
                    }
                    None => {
                        return Err(KeyNoteError::Syntax(
                            "continuation line before any field".into(),
                        ));
                    }
                }
            } else if let Some(colon) = trimmed_end.find(':') {
                let name = trimmed_end[..colon].trim().to_string();
                if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
                    return Err(KeyNoteError::Syntax(format!(
                        "malformed field name {name:?}"
                    )));
                }
                let body = trimmed_end[colon + 1..].trim().to_string();
                fields.push((name, body, line_start));
            } else {
                return Err(KeyNoteError::Syntax(format!(
                    "line is neither a field nor a continuation: {trimmed_end:?}"
                )));
            }
        }

        let mut version = None;
        let mut comment = None;
        let mut local_constants_body = None;
        let mut authorizer_body = None;
        let mut licensees_body = None;
        let mut conditions_body = None;
        let mut signature = None;
        let mut signed_len = text.len();

        for (name, body, field_offset) in fields {
            let lower = name.to_ascii_lowercase();
            let slot: &mut Option<String> = match lower.as_str() {
                "keynote-version" => &mut version,
                "comment" => &mut comment,
                "local-constants" => &mut local_constants_body,
                "authorizer" => &mut authorizer_body,
                "licensees" => &mut licensees_body,
                "conditions" => &mut conditions_body,
                "signature" => {
                    signed_len = field_offset;
                    &mut signature
                }
                other => {
                    return Err(KeyNoteError::Syntax(format!("unknown field {other:?}")));
                }
            };
            if slot.is_some() {
                return Err(KeyNoteError::Syntax(format!("duplicate field {name:?}")));
            }
            *slot = Some(body);
        }

        let constants: HashMap<String, String> = match &local_constants_body {
            Some(body) => parser::parse_local_constants(body)?.into_iter().collect(),
            None => HashMap::new(),
        };

        let authorizer_body = authorizer_body.ok_or(KeyNoteError::MissingField("Authorizer"))?;
        let authorizer = parser::parse_authorizer(&authorizer_body, &constants)?;

        let licensees = match &licensees_body {
            Some(body) => parser::parse_licensees(body, &constants)?,
            None => None,
        };
        let conditions = match &conditions_body {
            Some(body) => Some(parser::parse_conditions(body)?),
            None => None,
        };
        let signature = match signature {
            Some(body) => {
                let trimmed = body.trim();
                let unquoted = trimmed
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .unwrap_or(trimmed);
                Some(unquoted.to_string())
            }
            None => None,
        };

        Ok(Assertion {
            raw: text.to_string(),
            version,
            comment,
            authorizer,
            licensees,
            conditions,
            signature,
            signed_len,
        })
    }

    /// The assertion's raw text as parsed.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// The `KeyNote-Version` field, if present.
    pub fn version(&self) -> Option<&str> {
        self.version.as_deref()
    }

    /// The `Comment` field, if present.
    pub fn comment(&self) -> Option<&str> {
        self.comment.as_deref()
    }

    /// The authorizer principal.
    pub fn authorizer(&self) -> &Principal {
        &self.authorizer
    }

    /// The parsed licensees expression (`None` when the field is absent
    /// or empty, in which case the assertion delegates to nobody).
    pub fn licensees(&self) -> Option<&LicenseeExpr> {
        self.licensees.as_ref()
    }

    /// The parsed conditions program (`None` = no restrictions).
    pub fn conditions(&self) -> Option<&Program> {
        self.conditions.as_ref()
    }

    /// Whether a `Signature` field is present.
    pub fn is_signed(&self) -> bool {
        self.signature.is_some()
    }

    /// A stable content identifier: SHA-256 of the raw text (hex).
    ///
    /// DisCFS revocation lists reference credentials by this id.
    pub fn id(&self) -> String {
        hex::encode(&Sha256::digest(self.raw.as_bytes()))
    }

    /// Verifies the credential signature.
    ///
    /// # Errors
    ///
    /// * [`KeyNoteError::MissingField`] — unsigned assertion.
    /// * [`KeyNoteError::AuthorizerNotAKey`] — the authorizer cannot
    ///   have signed anything.
    /// * [`KeyNoteError::BadSignature`] — cryptographic failure or a
    ///   malformed signature string.
    pub fn verify(&self) -> Result<(), KeyNoteError> {
        let sig_text = self
            .signature
            .as_ref()
            .ok_or(KeyNoteError::MissingField("Signature"))?;
        let key: &VerifyingKey = self
            .authorizer
            .as_key()
            .ok_or(KeyNoteError::AuthorizerNotAKey)?;
        let sig_hex = sig_text
            .strip_prefix(SIG_PREFIX)
            .ok_or(KeyNoteError::BadSignature)?;
        let sig_bytes = hex::decode_array::<64>(sig_hex).map_err(|_| KeyNoteError::BadSignature)?;
        let signed = &self.raw.as_bytes()[..self.signed_len];
        key.verify(signed, &Signature(sig_bytes))
            .map_err(|_| KeyNoteError::BadSignature)
    }
}

/// Builds and signs KeyNote assertions with canonical formatting.
///
/// # Examples
///
/// ```
/// use discfs_crypto::ed25519::SigningKey;
/// use keynote::AssertionBuilder;
///
/// let issuer = SigningKey::from_seed(&[42; 32]);
/// let holder = SigningKey::from_seed(&[43; 32]);
/// let text = AssertionBuilder::new()
///     .licensee_key(&holder.public())
///     .conditions("(app_domain == \"DisCFS\") -> \"R\";")
///     .sign(&issuer);
/// let parsed = keynote::Assertion::parse(&text).unwrap();
/// parsed.verify().unwrap();
/// ```
#[derive(Debug, Default, Clone)]
pub struct AssertionBuilder {
    comment: Option<String>,
    local_constants: Vec<(String, String)>,
    licensees: Vec<String>,
    licensees_raw: Option<String>,
    conditions: Option<String>,
}

impl AssertionBuilder {
    /// Creates an empty builder.
    pub fn new() -> AssertionBuilder {
        AssertionBuilder::default()
    }

    /// Sets the `Comment` field (single line; newlines become spaces).
    pub fn comment(mut self, text: &str) -> Self {
        self.comment = Some(text.replace('\n', " "));
        self
    }

    /// Adds a `Local-Constants` binding.
    pub fn local_constant(mut self, name: &str, value: &str) -> Self {
        self.local_constants
            .push((name.to_string(), value.to_string()));
        self
    }

    /// Adds a key licensee (multiple calls are OR-ed together).
    pub fn licensee_key(mut self, key: &VerifyingKey) -> Self {
        self.licensees.push(crate::key_principal(key));
        self
    }

    /// Adds an arbitrary principal licensee (OR-ed with others).
    pub fn licensee(mut self, principal: &str) -> Self {
        self.licensees.push(principal.to_string());
        self
    }

    /// Sets the complete licensees expression verbatim, overriding any
    /// accumulated [`Self::licensee_key`] calls. Use for `&&` or
    /// threshold structures.
    pub fn licensees_expr(mut self, expr: &str) -> Self {
        self.licensees_raw = Some(expr.to_string());
        self
    }

    /// Sets the `Conditions` program text.
    pub fn conditions(mut self, program: &str) -> Self {
        self.conditions = Some(program.replace('\n', " "));
        self
    }

    fn body(&self, authorizer: &str) -> String {
        let mut out = String::new();
        out.push_str("KeyNote-Version: 2\n");
        if let Some(comment) = &self.comment {
            out.push_str(&format!("Comment: {comment}\n"));
        }
        if !self.local_constants.is_empty() {
            let pairs: Vec<String> = self
                .local_constants
                .iter()
                .map(|(k, v)| format!("{k} = \"{v}\""))
                .collect();
            out.push_str(&format!("Local-Constants: {}\n", pairs.join(" ")));
        }
        out.push_str(&format!("Authorizer: \"{authorizer}\"\n"));
        let licensees = match &self.licensees_raw {
            Some(raw) => raw.clone(),
            None => self
                .licensees
                .iter()
                .map(|p| format!("\"{p}\""))
                .collect::<Vec<_>>()
                .join(" || "),
        };
        out.push_str(&format!("Licensees: {licensees}\n"));
        if let Some(conditions) = &self.conditions {
            out.push_str(&format!("Conditions: {conditions}\n"));
        }
        out
    }

    /// Produces a signed credential issued by `issuer`.
    pub fn sign(&self, issuer: &SigningKey) -> String {
        let mut text = self.body(&crate::key_principal(&issuer.public()));
        let sig = issuer.sign(text.as_bytes());
        text.push_str(&format!(
            "Signature: \"{SIG_PREFIX}{}\"\n",
            hex::encode(&sig.0)
        ));
        text
    }

    /// Produces an unsigned local-policy assertion (authorizer `POLICY`).
    pub fn policy(&self) -> String {
        self.body("POLICY")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admin() -> SigningKey {
        SigningKey::from_seed(&[1; 32])
    }

    fn bob() -> SigningKey {
        SigningKey::from_seed(&[2; 32])
    }

    #[test]
    fn build_sign_parse_verify() {
        let text = AssertionBuilder::new()
            .comment("testdir")
            .licensee_key(&bob().public())
            .conditions("(app_domain == \"DisCFS\") && (HANDLE == \"666240\") -> \"RWX\";")
            .sign(&admin());
        let a = Assertion::parse(&text).unwrap();
        assert!(a.is_signed());
        assert_eq!(a.comment(), Some("testdir"));
        assert_eq!(a.authorizer(), &Principal::Key(admin().public()));
        a.verify().unwrap();
    }

    #[test]
    fn tampered_credential_rejected() {
        let text = AssertionBuilder::new()
            .licensee_key(&bob().public())
            .conditions("(HANDLE == \"1\") -> \"R\";")
            .sign(&admin());
        // Escalate R to RWX.
        let tampered = text.replace("\"R\"", "\"RWX\"");
        assert_ne!(text, tampered);
        let a = Assertion::parse(&tampered).unwrap();
        assert_eq!(a.verify(), Err(KeyNoteError::BadSignature));
    }

    #[test]
    fn policy_assertion_unsigned() {
        let text = AssertionBuilder::new()
            .licensee_key(&admin().public())
            .policy();
        let a = Assertion::parse(&text).unwrap();
        assert_eq!(a.authorizer(), &Principal::Policy);
        assert!(!a.is_signed());
        assert_eq!(a.verify(), Err(KeyNoteError::MissingField("Signature")));
    }

    #[test]
    fn missing_authorizer_rejected() {
        assert_eq!(
            Assertion::parse("Licensees: \"x\"\n").unwrap_err(),
            KeyNoteError::MissingField("Authorizer")
        );
    }

    #[test]
    fn unknown_field_rejected() {
        let err = Assertion::parse("Authorizer: \"POLICY\"\nEvil-Field: x\n").unwrap_err();
        assert!(matches!(err, KeyNoteError::Syntax(_)));
    }

    #[test]
    fn duplicate_field_rejected() {
        let err = Assertion::parse("Authorizer: \"POLICY\"\nAuthorizer: \"POLICY\"\n").unwrap_err();
        assert!(matches!(err, KeyNoteError::Syntax(_)));
    }

    #[test]
    fn continuation_lines() {
        let text = "Authorizer: \"POLICY\"\nConditions: (a == \"1\")\n\t-> \"true\";\n";
        let a = Assertion::parse(text).unwrap();
        assert!(a.conditions().is_some());
        assert_eq!(a.conditions().unwrap().0.len(), 1);
    }

    #[test]
    fn local_constants_resolve_in_licensees() {
        let bob_key = crate::key_principal(&bob().public());
        let text = format!(
            "Local-Constants: BOB = \"{bob_key}\"\nAuthorizer: \"POLICY\"\nLicensees: BOB\n"
        );
        let a = Assertion::parse(&text).unwrap();
        let principals = a.licensees().unwrap().principals();
        assert_eq!(principals, vec![&Principal::Key(bob().public())]);
    }

    #[test]
    fn field_names_case_insensitive() {
        let a = Assertion::parse("AUTHORIZER: \"POLICY\"\nlicensees: \"x\"\n").unwrap();
        assert_eq!(a.authorizer(), &Principal::Policy);
        assert!(a.licensees().is_some());
    }

    #[test]
    fn id_is_stable_and_distinct() {
        let t1 = AssertionBuilder::new().licensee("a").sign(&admin());
        let t2 = AssertionBuilder::new().licensee("b").sign(&admin());
        let a1 = Assertion::parse(&t1).unwrap();
        let a1_again = Assertion::parse(&t1).unwrap();
        let a2 = Assertion::parse(&t2).unwrap();
        assert_eq!(a1.id(), a1_again.id());
        assert_ne!(a1.id(), a2.id());
    }

    #[test]
    fn signature_covers_every_prior_field() {
        // Flipping the comment must break the signature even though the
        // comment is semantically inert.
        let text = AssertionBuilder::new()
            .comment("v1")
            .licensee_key(&bob().public())
            .sign(&admin());
        let tampered = text.replace("Comment: v1", "Comment: v2");
        let a = Assertion::parse(&tampered).unwrap();
        assert_eq!(a.verify(), Err(KeyNoteError::BadSignature));
    }

    #[test]
    fn wrong_issuer_key_rejected() {
        // Signature by bob but authorizer claims admin.
        let body = AssertionBuilder::new().licensee("x");
        let forged = {
            let mut text = body.body(&crate::key_principal(&admin().public()));
            let sig = bob().sign(text.as_bytes());
            text.push_str(&format!(
                "Signature: \"{SIG_PREFIX}{}\"\n",
                hex::encode(&sig.0)
            ));
            text
        };
        let a = Assertion::parse(&forged).unwrap();
        assert_eq!(a.verify(), Err(KeyNoteError::BadSignature));
    }
}
