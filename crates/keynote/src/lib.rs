//! The KeyNote trust-management system (RFC 2704).
//!
//! KeyNote is the policy engine at the heart of DisCFS: every access
//! decision is a *compliance check* asking whether a proposed action,
//! described as a set of name/value attributes, conforms to policy.
//! Policies are assertions; **credentials** are signed assertions that
//! can travel over the network, letting a local policy defer to remote
//! issuers and forming arbitrarily long delegation chains
//! (administrator → Bob → Alice in the paper's Figure 1).
//!
//! # Overview
//!
//! * [`Principal`] — a public key (`ed25519-hex:…`) or opaque name.
//! * [`Assertion`] — a parsed KeyNote assertion with `Authorizer`,
//!   `Licensees`, `Conditions`, `Local-Constants`, `Comment` and
//!   `Signature` fields.
//! * [`AssertionBuilder`] — constructs and signs credentials.
//! * [`Session`] — holds policies, credentials and an action attribute
//!   set, and answers queries with a value from an ordered
//!   *compliance value set* (for DisCFS: `false < X < W < WX < R < RX <
//!   RW < RWX`, translating directly to octal permission bits).
//!
//! # Example
//!
//! ```
//! use discfs_crypto::ed25519::SigningKey;
//! use keynote::{AssertionBuilder, Session};
//!
//! let admin = SigningKey::from_seed(&[1; 32]);
//! let bob = SigningKey::from_seed(&[2; 32]);
//!
//! // Local policy: the administrator key is the root of trust.
//! let policy = format!(
//!     "Authorizer: \"POLICY\"\nLicensees: \"{}\"\n",
//!     keynote::key_principal(&admin.public())
//! );
//!
//! // Credential: admin grants Bob read-write on handle 666240.
//! let cred = AssertionBuilder::new()
//!     .licensee_key(&bob.public())
//!     .conditions("(app_domain == \"DisCFS\") && (HANDLE == \"666240\") -> \"RW\";")
//!     .comment("testdir")
//!     .sign(&admin);
//!
//! let mut session = Session::new(&["false", "X", "W", "WX", "R", "RX", "RW", "RWX"]);
//! session.add_policy(&policy).unwrap();
//! session.add_credential(&cred).unwrap();
//! session.set_attribute("app_domain", "DisCFS");
//! session.set_attribute("HANDLE", "666240");
//! session.add_requester_key(&bob.public());
//! assert_eq!(session.query().unwrap().as_str(), "RW");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assertion;
mod ast;
mod eval;
mod lexer;
mod parser;
mod principal;
pub mod regex;
mod session;
mod values;

pub use assertion::{Assertion, AssertionBuilder};
pub use principal::{key_principal, Principal};
pub use session::{ComplianceValue, Session};
pub use values::ValueSet;

/// Errors produced while parsing or evaluating KeyNote assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyNoteError {
    /// The assertion text could not be parsed.
    Syntax(String),
    /// A credential's signature did not verify.
    BadSignature,
    /// A credential is missing a required field (e.g. `Signature`).
    MissingField(&'static str),
    /// The authorizer of a credential is not a cryptographic key.
    AuthorizerNotAKey,
    /// A principal string could not be understood.
    BadPrincipal(String),
    /// A compliance value was referenced that is not in the query's set.
    UnknownValue(String),
    /// The session was queried without any policy assertions.
    NoPolicy,
}

impl std::fmt::Display for KeyNoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyNoteError::Syntax(msg) => write!(f, "syntax error: {msg}"),
            KeyNoteError::BadSignature => write!(f, "credential signature verification failed"),
            KeyNoteError::MissingField(name) => write!(f, "missing assertion field: {name}"),
            KeyNoteError::AuthorizerNotAKey => {
                write!(f, "credential authorizer is not a cryptographic key")
            }
            KeyNoteError::BadPrincipal(p) => write!(f, "malformed principal: {p}"),
            KeyNoteError::UnknownValue(v) => write!(f, "compliance value not in query set: {v}"),
            KeyNoteError::NoPolicy => write!(f, "no POLICY assertions in session"),
        }
    }
}

impl std::error::Error for KeyNoteError {}
