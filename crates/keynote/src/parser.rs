//! Recursive-descent parsers for KeyNote field bodies.

use std::collections::HashMap;

use crate::ast::{ArithOp, BoolExpr, Clause, CmpOp, LicenseeExpr, Outcome, Program, ValExpr};
use crate::lexer::{tokenize, Token};
use crate::{KeyNoteError, Principal};

/// A token cursor with save/restore for backtracking.
struct Ts {
    tokens: Vec<Token>,
    pos: usize,
}

impl Ts {
    fn new(input: &str) -> Result<Ts, KeyNoteError> {
        Ok(Ts {
            tokens: tokenize(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<(), KeyNoteError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(KeyNoteError::Syntax(format!(
                "expected {tok:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }
}

// ---------------------------------------------------------------------------
// Licensees.
// ---------------------------------------------------------------------------

/// Parses a `Licensees:` field body. Returns `None` for an empty field
/// (an assertion that delegates to nobody).
///
/// Unquoted identifiers are resolved through the assertion's
/// `Local-Constants`.
pub fn parse_licensees(
    input: &str,
    constants: &HashMap<String, String>,
) -> Result<Option<LicenseeExpr>, KeyNoteError> {
    let mut ts = Ts::new(input)?;
    if ts.at_end() {
        return Ok(None);
    }
    let expr = parse_lic_or(&mut ts, constants)?;
    if !ts.at_end() {
        return Err(KeyNoteError::Syntax(format!(
            "trailing tokens in Licensees: {:?}",
            ts.peek()
        )));
    }
    Ok(Some(expr))
}

fn parse_lic_or(
    ts: &mut Ts,
    consts: &HashMap<String, String>,
) -> Result<LicenseeExpr, KeyNoteError> {
    let mut left = parse_lic_and(ts, consts)?;
    while ts.eat(&Token::OrOr) {
        let right = parse_lic_and(ts, consts)?;
        left = LicenseeExpr::Or(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_lic_and(
    ts: &mut Ts,
    consts: &HashMap<String, String>,
) -> Result<LicenseeExpr, KeyNoteError> {
    let mut left = parse_lic_atom(ts, consts)?;
    while ts.eat(&Token::AndAnd) {
        let right = parse_lic_atom(ts, consts)?;
        left = LicenseeExpr::And(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_lic_atom(
    ts: &mut Ts,
    consts: &HashMap<String, String>,
) -> Result<LicenseeExpr, KeyNoteError> {
    match ts.next() {
        Some(Token::LParen) => {
            let inner = parse_lic_or(ts, consts)?;
            ts.expect(&Token::RParen)?;
            Ok(inner)
        }
        Some(Token::KOf(k)) => {
            if k == 0 {
                return Err(KeyNoteError::Syntax("0-of threshold".into()));
            }
            ts.expect(&Token::LParen)?;
            let mut subs = vec![parse_lic_or(ts, consts)?];
            while ts.eat(&Token::Comma) {
                subs.push(parse_lic_or(ts, consts)?);
            }
            ts.expect(&Token::RParen)?;
            if (k as usize) > subs.len() {
                return Err(KeyNoteError::Syntax(format!(
                    "{k}-of threshold over only {} members",
                    subs.len()
                )));
            }
            Ok(LicenseeExpr::KOf(k, subs))
        }
        Some(Token::Str(s)) => Ok(LicenseeExpr::Principal(Principal::parse(&s)?)),
        Some(Token::Ident(name)) => {
            let value = consts.get(&name).ok_or_else(|| {
                KeyNoteError::Syntax(format!("undefined local constant {name:?} in Licensees"))
            })?;
            Ok(LicenseeExpr::Principal(Principal::parse(value)?))
        }
        other => Err(KeyNoteError::Syntax(format!(
            "unexpected token in Licensees: {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Authorizer.
// ---------------------------------------------------------------------------

/// Parses an `Authorizer:` field body (one principal, possibly through a
/// local constant).
pub fn parse_authorizer(
    input: &str,
    constants: &HashMap<String, String>,
) -> Result<Principal, KeyNoteError> {
    let mut ts = Ts::new(input)?;
    let principal = match ts.next() {
        Some(Token::Str(s)) => Principal::parse(&s)?,
        Some(Token::Ident(name)) => {
            if name == "POLICY" {
                Principal::Policy
            } else {
                let value = constants.get(&name).ok_or_else(|| {
                    KeyNoteError::Syntax(format!("undefined local constant {name:?} in Authorizer"))
                })?;
                Principal::parse(value)?
            }
        }
        other => {
            return Err(KeyNoteError::Syntax(format!(
                "unexpected token in Authorizer: {other:?}"
            )));
        }
    };
    if !ts.at_end() {
        return Err(KeyNoteError::Syntax("trailing tokens in Authorizer".into()));
    }
    Ok(principal)
}

// ---------------------------------------------------------------------------
// Local-Constants.
// ---------------------------------------------------------------------------

/// Parses a `Local-Constants:` field body: `NAME = "value"` pairs.
pub fn parse_local_constants(input: &str) -> Result<Vec<(String, String)>, KeyNoteError> {
    let mut ts = Ts::new(input)?;
    let mut out = Vec::new();
    while !ts.at_end() {
        let name = match ts.next() {
            Some(Token::Ident(n)) => n,
            other => {
                return Err(KeyNoteError::Syntax(format!(
                    "expected constant name, found {other:?}"
                )));
            }
        };
        ts.expect(&Token::Assign)?;
        let value = match ts.next() {
            Some(Token::Str(v)) => v,
            other => {
                return Err(KeyNoteError::Syntax(format!(
                    "expected quoted value for constant {name}, found {other:?}"
                )));
            }
        };
        out.push((name, value));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Conditions.
// ---------------------------------------------------------------------------

/// Parses a `Conditions:` field body into a [`Program`].
pub fn parse_conditions(input: &str) -> Result<Program, KeyNoteError> {
    let mut ts = Ts::new(input)?;
    let program = parse_program(&mut ts)?;
    if !ts.at_end() {
        return Err(KeyNoteError::Syntax(format!(
            "trailing tokens in Conditions: {:?}",
            ts.peek()
        )));
    }
    Ok(program)
}

fn parse_program(ts: &mut Ts) -> Result<Program, KeyNoteError> {
    let mut clauses = Vec::new();
    loop {
        while ts.eat(&Token::Semi) {}
        if ts.at_end() || ts.peek() == Some(&Token::RBrace) {
            break;
        }
        let test = parse_bool_or(ts)?;
        let outcome = if ts.eat(&Token::Arrow) {
            match ts.peek() {
                Some(Token::LBrace) => {
                    ts.next();
                    let sub = parse_program(ts)?;
                    ts.expect(&Token::RBrace)?;
                    Outcome::Sub(sub)
                }
                Some(Token::Str(_)) => {
                    if let Some(Token::Str(v)) = ts.next() {
                        Outcome::Value(v)
                    } else {
                        unreachable!("peeked Str")
                    }
                }
                Some(Token::Ident(_)) => {
                    // Allow unquoted values like `-> RWX` for convenience.
                    if let Some(Token::Ident(v)) = ts.next() {
                        Outcome::Value(v)
                    } else {
                        unreachable!("peeked Ident")
                    }
                }
                other => {
                    return Err(KeyNoteError::Syntax(format!(
                        "expected value or {{...}} after '->', found {other:?}"
                    )));
                }
            }
        } else {
            Outcome::MaxTrust
        };
        clauses.push(Clause { test, outcome });
        // A further clause requires a separating semicolon (consumed at
        // the top of the loop).
        if ts.peek() != Some(&Token::Semi) {
            break;
        }
    }
    Ok(Program(clauses))
}

fn parse_bool_or(ts: &mut Ts) -> Result<BoolExpr, KeyNoteError> {
    let mut left = parse_bool_and(ts)?;
    while ts.eat(&Token::OrOr) {
        let right = parse_bool_and(ts)?;
        left = BoolExpr::Or(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_bool_and(ts: &mut Ts) -> Result<BoolExpr, KeyNoteError> {
    let mut left = parse_bool_not(ts)?;
    while ts.eat(&Token::AndAnd) {
        let right = parse_bool_not(ts)?;
        left = BoolExpr::And(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_bool_not(ts: &mut Ts) -> Result<BoolExpr, KeyNoteError> {
    if ts.eat(&Token::Not) {
        Ok(BoolExpr::Not(Box::new(parse_bool_not(ts)?)))
    } else {
        parse_bool_primary(ts)
    }
}

fn parse_bool_primary(ts: &mut Ts) -> Result<BoolExpr, KeyNoteError> {
    // Boolean literals.
    if let Some(Token::Ident(name)) = ts.peek() {
        if name == "true" {
            // Only a literal when not the start of a comparison
            // (`true == x` compares the string "true").
            let save = ts.pos;
            ts.next();
            if !is_cmp_start(ts.peek()) {
                return Ok(BoolExpr::True);
            }
            ts.pos = save;
        } else if name == "false" {
            let save = ts.pos;
            ts.next();
            if !is_cmp_start(ts.peek()) {
                return Ok(BoolExpr::False);
            }
            ts.pos = save;
        }
    }

    // Try a comparison first; fall back to a parenthesized boolean.
    let save = ts.pos;
    match try_parse_comparison(ts) {
        Ok(cmp) => Ok(cmp),
        Err(_) => {
            ts.pos = save;
            if ts.eat(&Token::LParen) {
                let inner = parse_bool_or(ts)?;
                ts.expect(&Token::RParen)?;
                Ok(inner)
            } else {
                Err(KeyNoteError::Syntax(format!(
                    "expected test expression, found {:?}",
                    ts.peek()
                )))
            }
        }
    }
}

fn is_cmp_start(tok: Option<&Token>) -> bool {
    matches!(
        tok,
        Some(
            Token::Eq
                | Token::Ne
                | Token::Lt
                | Token::Gt
                | Token::Le
                | Token::Ge
                | Token::Match
                | Token::Dot
                | Token::Plus
                | Token::Minus
                | Token::Star
                | Token::Slash
                | Token::Percent
                | Token::Caret
        )
    )
}

fn try_parse_comparison(ts: &mut Ts) -> Result<BoolExpr, KeyNoteError> {
    let lhs = parse_val(ts)?;
    let op = match ts.next() {
        Some(Token::Eq) => CmpOp::Eq,
        Some(Token::Ne) => CmpOp::Ne,
        Some(Token::Lt) => CmpOp::Lt,
        Some(Token::Gt) => CmpOp::Gt,
        Some(Token::Le) => CmpOp::Le,
        Some(Token::Ge) => CmpOp::Ge,
        Some(Token::Match) => {
            let pattern = parse_val(ts)?;
            return Ok(BoolExpr::Match(lhs, pattern));
        }
        other => {
            return Err(KeyNoteError::Syntax(format!(
                "expected comparison operator, found {other:?}"
            )));
        }
    };
    let rhs = parse_val(ts)?;
    Ok(BoolExpr::Cmp(lhs, op, rhs))
}

// Value expression precedence (loosest to tightest):
// concatenation `.`, additive, multiplicative, power, unary minus, atom.

fn parse_val(ts: &mut Ts) -> Result<ValExpr, KeyNoteError> {
    let mut left = parse_val_add(ts)?;
    while ts.eat(&Token::Dot) {
        let right = parse_val_add(ts)?;
        left = ValExpr::Concat(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_val_add(ts: &mut Ts) -> Result<ValExpr, KeyNoteError> {
    let mut left = parse_val_mul(ts)?;
    loop {
        if ts.eat(&Token::Plus) {
            let right = parse_val_mul(ts)?;
            left = ValExpr::Arith(ArithOp::Add, Box::new(left), Box::new(right));
        } else if ts.eat(&Token::Minus) {
            let right = parse_val_mul(ts)?;
            left = ValExpr::Arith(ArithOp::Sub, Box::new(left), Box::new(right));
        } else {
            break;
        }
    }
    Ok(left)
}

fn parse_val_mul(ts: &mut Ts) -> Result<ValExpr, KeyNoteError> {
    let mut left = parse_val_pow(ts)?;
    loop {
        if ts.eat(&Token::Star) {
            let right = parse_val_pow(ts)?;
            left = ValExpr::Arith(ArithOp::Mul, Box::new(left), Box::new(right));
        } else if ts.eat(&Token::Slash) {
            let right = parse_val_pow(ts)?;
            left = ValExpr::Arith(ArithOp::Div, Box::new(left), Box::new(right));
        } else if ts.eat(&Token::Percent) {
            let right = parse_val_pow(ts)?;
            left = ValExpr::Arith(ArithOp::Rem, Box::new(left), Box::new(right));
        } else {
            break;
        }
    }
    Ok(left)
}

fn parse_val_pow(ts: &mut Ts) -> Result<ValExpr, KeyNoteError> {
    let base = parse_val_unary(ts)?;
    if ts.eat(&Token::Caret) {
        // Right-associative.
        let exp = parse_val_pow(ts)?;
        Ok(ValExpr::Arith(ArithOp::Pow, Box::new(base), Box::new(exp)))
    } else {
        Ok(base)
    }
}

fn parse_val_unary(ts: &mut Ts) -> Result<ValExpr, KeyNoteError> {
    if ts.eat(&Token::Minus) {
        Ok(ValExpr::Neg(Box::new(parse_val_unary(ts)?)))
    } else {
        parse_val_atom(ts)
    }
}

fn parse_val_atom(ts: &mut Ts) -> Result<ValExpr, KeyNoteError> {
    match ts.next() {
        Some(Token::Num(n)) => Ok(ValExpr::Num(n)),
        Some(Token::Str(s)) => Ok(ValExpr::Str(s)),
        Some(Token::Ident(name)) => Ok(ValExpr::Attr(name)),
        Some(Token::Dollar) => Ok(ValExpr::Indirect(Box::new(parse_val_atom(ts)?))),
        Some(Token::LParen) => {
            let inner = parse_val(ts)?;
            ts.expect(&Token::RParen)?;
            Ok(inner)
        }
        other => Err(KeyNoteError::Syntax(format!(
            "expected value, found {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_consts() -> HashMap<String, String> {
        HashMap::new()
    }

    #[test]
    fn licensees_single_principal() {
        let expr = parse_licensees("\"alice\"", &no_consts()).unwrap().unwrap();
        assert_eq!(
            expr,
            LicenseeExpr::Principal(Principal::Opaque("alice".into()))
        );
    }

    #[test]
    fn licensees_empty() {
        assert!(parse_licensees("", &no_consts()).unwrap().is_none());
        assert!(parse_licensees("   ", &no_consts()).unwrap().is_none());
    }

    #[test]
    fn licensees_boolean_structure() {
        let expr = parse_licensees("\"a\" && (\"b\" || \"c\")", &no_consts())
            .unwrap()
            .unwrap();
        match expr {
            LicenseeExpr::And(l, r) => {
                assert_eq!(*l, LicenseeExpr::Principal(Principal::Opaque("a".into())));
                assert!(matches!(*r, LicenseeExpr::Or(..)));
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn licensees_threshold() {
        let expr = parse_licensees("2-of(\"a\", \"b\", \"c\")", &no_consts())
            .unwrap()
            .unwrap();
        match expr {
            LicenseeExpr::KOf(2, subs) => assert_eq!(subs.len(), 3),
            other => panic!("expected KOf, got {other:?}"),
        }
    }

    #[test]
    fn licensees_threshold_too_large_rejected() {
        assert!(parse_licensees("3-of(\"a\", \"b\")", &no_consts()).is_err());
    }

    #[test]
    fn licensees_local_constant() {
        let mut consts = HashMap::new();
        consts.insert("ALICE".to_string(), "alice-key".to_string());
        let expr = parse_licensees("ALICE", &consts).unwrap().unwrap();
        assert_eq!(
            expr,
            LicenseeExpr::Principal(Principal::Opaque("alice-key".into()))
        );
        assert!(parse_licensees("BOB", &consts).is_err());
    }

    #[test]
    fn authorizer_policy() {
        assert_eq!(
            parse_authorizer("\"POLICY\"", &no_consts()).unwrap(),
            Principal::Policy
        );
        assert_eq!(
            parse_authorizer("POLICY", &no_consts()).unwrap(),
            Principal::Policy
        );
    }

    #[test]
    fn local_constants_pairs() {
        let consts = parse_local_constants("A = \"key-a\"  B = \"key-b\"").unwrap();
        assert_eq!(
            consts,
            vec![
                ("A".to_string(), "key-a".to_string()),
                ("B".to_string(), "key-b".to_string())
            ]
        );
    }

    #[test]
    fn conditions_paper_example() {
        // The paper's Figure 5 credential conditions.
        let p =
            parse_conditions("(app_domain == \"DisCFS\") && (HANDLE == \"666240\") -> \"RWX\";")
                .unwrap();
        assert_eq!(p.0.len(), 1);
        assert_eq!(p.0[0].outcome, Outcome::Value("RWX".into()));
    }

    #[test]
    fn conditions_multiple_clauses() {
        let p = parse_conditions("(a == \"1\") -> \"R\"; (b == \"2\") -> \"W\"; true -> \"X\";")
            .unwrap();
        assert_eq!(p.0.len(), 3);
    }

    #[test]
    fn conditions_nested_program() {
        let p = parse_conditions(
            "(app_domain == \"DisCFS\") -> { (op == \"read\") -> \"R\"; (op == \"write\") -> \"W\"; };",
        )
        .unwrap();
        assert_eq!(p.0.len(), 1);
        assert!(matches!(p.0[0].outcome, Outcome::Sub(ref sub) if sub.0.len() == 2));
    }

    #[test]
    fn conditions_bare_test_is_max_trust() {
        let p = parse_conditions("app_domain == \"DisCFS\"").unwrap();
        assert_eq!(p.0[0].outcome, Outcome::MaxTrust);
    }

    #[test]
    fn conditions_empty() {
        assert_eq!(parse_conditions("").unwrap().0.len(), 0);
        assert_eq!(parse_conditions(" ; ; ").unwrap().0.len(), 0);
    }

    #[test]
    fn conditions_arithmetic() {
        let p = parse_conditions("(size + 10 < 2 * limit) -> \"true\";").unwrap();
        match &p.0[0].test {
            BoolExpr::Cmp(l, CmpOp::Lt, r) => {
                assert!(l.is_numeric_kind());
                assert!(r.is_numeric_kind());
            }
            other => panic!("expected Cmp, got {other:?}"),
        }
    }

    #[test]
    fn conditions_regex_match() {
        let p = parse_conditions("(filename ~= \"^/discfs/.*\") -> \"R\";").unwrap();
        assert!(matches!(p.0[0].test, BoolExpr::Match(..)));
    }

    #[test]
    fn conditions_trailing_garbage_rejected() {
        assert!(parse_conditions("a == \"b\" }").is_err());
    }

    #[test]
    fn conditions_not_and_literals() {
        let p = parse_conditions("!(a == \"b\") && true;").unwrap();
        assert!(matches!(p.0[0].test, BoolExpr::And(..)));
    }

    #[test]
    fn dollar_indirection_parses() {
        let p = parse_conditions("($name == \"x\") -> \"true\";").unwrap();
        match &p.0[0].test {
            BoolExpr::Cmp(ValExpr::Indirect(_), CmpOp::Eq, _) => {}
            other => panic!("expected indirection, got {other:?}"),
        }
    }
}
