//! Tokenizer for KeyNote field bodies (licensees expressions, conditions
//! programs, local-constant lists).

use crate::KeyNoteError;

/// A lexical token of the KeyNote assertion language.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An identifier: `[A-Za-z_][A-Za-z0-9_]*`.
    Ident(String),
    /// A quoted string literal (quotes stripped, escapes resolved).
    Str(String),
    /// A numeric literal, kept as written.
    Num(String),
    /// A `k-of` threshold prefix, e.g. `2-of`.
    KOf(u32),
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `->`
    Arrow,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `~=` (regex match)
    Match,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^`
    Caret,
    /// `.` (string concatenation)
    Dot,
    /// `$` (attribute indirection)
    Dollar,
    /// `=` (assignment in Local-Constants)
    Assign,
}

/// Tokenizes a field body.
///
/// # Errors
///
/// Returns [`KeyNoteError::Syntax`] on unterminated strings or
/// unrecognized characters.
pub fn tokenize(input: &str) -> Result<Vec<Token>, KeyNoteError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semi);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '^' => {
                tokens.push(Token::Caret);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '$' => {
                tokens.push(Token::Dollar);
                i += 1;
            }
            '&' => {
                if chars.get(i + 1) == Some(&'&') {
                    tokens.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(KeyNoteError::Syntax("single '&'".into()));
                }
            }
            '|' => {
                if chars.get(i + 1) == Some(&'|') {
                    tokens.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(KeyNoteError::Syntax("single '|'".into()));
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Not);
                    i += 1;
                }
            }
            '=' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Eq);
                    i += 2;
                } else {
                    tokens.push(Token::Assign);
                    i += 1;
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '~' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Match);
                    i += 2;
                } else {
                    return Err(KeyNoteError::Syntax("'~' without '='".into()));
                }
            }
            '-' => {
                if chars.get(i + 1) == Some(&'>') {
                    tokens.push(Token::Arrow);
                    i += 2;
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => {
                            return Err(KeyNoteError::Syntax("unterminated string".into()));
                        }
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            match chars.get(i + 1) {
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                Some(&other) => s.push(other),
                                None => {
                                    return Err(KeyNoteError::Syntax(
                                        "dangling escape in string".into(),
                                    ));
                                }
                            }
                            i += 2;
                        }
                        Some(&other) => {
                            s.push(other);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            d if d.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                // `<num>-of` is the threshold prefix; otherwise allow an
                // optional fractional part.
                if chars.get(i) == Some(&'-')
                    && chars.get(i + 1) == Some(&'o')
                    && chars.get(i + 2) == Some(&'f')
                {
                    let n: u32 = chars[start..i]
                        .iter()
                        .collect::<String>()
                        .parse()
                        .map_err(|_| KeyNoteError::Syntax("k-of count overflow".into()))?;
                    tokens.push(Token::KOf(n));
                    i += 3;
                } else {
                    if chars.get(i) == Some(&'.')
                        && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                    {
                        i += 1;
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                    tokens.push(Token::Num(chars[start..i].iter().collect()));
                }
            }
            a if a.is_ascii_alphabetic() || a == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(KeyNoteError::Syntax(format!(
                    "unexpected character {other:?}"
                )));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators() {
        let toks = tokenize("(a == \"b\") && !(c != d) || e ~= \"f.*\"").unwrap();
        assert!(toks.contains(&Token::Eq));
        assert!(toks.contains(&Token::AndAnd));
        assert!(toks.contains(&Token::Not));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::OrOr));
        assert!(toks.contains(&Token::Match));
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(
            tokenize("a -> b - c").unwrap(),
            vec![
                Token::Ident("a".into()),
                Token::Arrow,
                Token::Ident("b".into()),
                Token::Minus,
                Token::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn k_of_threshold() {
        assert_eq!(
            tokenize("2-of(\"a\",\"b\",\"c\")").unwrap()[0],
            Token::KOf(2)
        );
        // A plain number stays a number.
        assert_eq!(tokenize("2 - 1").unwrap()[0], Token::Num("2".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(
            tokenize("3.25 10").unwrap(),
            vec![Token::Num("3.25".into()), Token::Num("10".into())]
        );
        // Trailing dot is concatenation, not a float.
        assert_eq!(
            tokenize("3.x").unwrap(),
            vec![Token::Num("3".into()), Token::Dot, Token::Ident("x".into())]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            tokenize(r#""he said \"hi\"\n""#).unwrap(),
            vec![Token::Str("he said \"hi\"\n".into())]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("\"abc").is_err());
    }

    #[test]
    fn single_amp_errors() {
        assert!(tokenize("a & b").is_err());
    }

    #[test]
    fn comparison_pair_tokens() {
        assert_eq!(
            tokenize("a <= b >= c < d > e").unwrap(),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Ge,
                Token::Ident("c".into()),
                Token::Lt,
                Token::Ident("d".into()),
                Token::Gt,
                Token::Ident("e".into()),
            ]
        );
    }
}
