//! Compliance checking: the KeyNote query engine.
//!
//! A [`Session`] mirrors the keynote(3) library interface the paper's
//! prototype used: create a session with a compliance value set, add
//! policy and credential assertions, describe the proposed action as
//! attributes, name the requesting principals, and query.
//!
//! The query computes, for the `POLICY` principal, the *support value*
//! of the delegation graph: a principal's support is `_MAX_TRUST` if it
//! signed the request, otherwise the maximum over assertions it
//! authorized of `min(conditions value, licensees value)`, where
//! licensee expressions combine sub-values with `min` (`&&`), `max`
//! (`||`) and k-th largest (`k-of`). Delegation chains therefore weaken
//! monotonically: no credential can grant more than its issuer holds —
//! the property that makes user-to-user delegation safe in DisCFS.

use std::collections::{HashMap, HashSet};

use discfs_crypto::ed25519::VerifyingKey;

use crate::assertion::Assertion;
use crate::ast::LicenseeExpr;
use crate::eval::{eval_program, EvalCtx};
use crate::values::ValueSet;
use crate::{KeyNoteError, Principal};

/// The result of a query: one value from the session's ordered set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComplianceValue {
    index: usize,
    text: String,
}

impl ComplianceValue {
    /// The value string (e.g. `"RW"`).
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// The value's position in the ordered set (0 = `_MIN_TRUST`).
    pub fn index(&self) -> usize {
        self.index
    }

    /// True when the result is `_MIN_TRUST` (no authority at all).
    pub fn is_min(&self) -> bool {
        self.index == 0
    }
}

impl std::fmt::Display for ComplianceValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// A KeyNote session: assertions + action description + requesters.
#[derive(Clone)]
pub struct Session {
    values: ValueSet,
    policies: Vec<Assertion>,
    credentials: Vec<Assertion>,
    attributes: HashMap<String, String>,
    requesters: HashSet<Principal>,
}

impl Session {
    /// Creates a session with the given ordered compliance value set
    /// (minimum trust first).
    pub fn new<S: AsRef<str>>(values: &[S]) -> Session {
        Session::with_value_set(ValueSet::new(values))
    }

    /// Creates a session from a pre-built [`ValueSet`].
    pub fn with_value_set(values: ValueSet) -> Session {
        Session {
            values,
            policies: Vec::new(),
            credentials: Vec::new(),
            attributes: HashMap::new(),
            requesters: HashSet::new(),
        }
    }

    /// The session's value set.
    pub fn values(&self) -> &ValueSet {
        &self.values
    }

    /// Adds an unsigned local policy assertion (authorizer `POLICY`).
    ///
    /// # Errors
    ///
    /// Parse errors, or [`KeyNoteError::Syntax`] if the authorizer is
    /// not `POLICY` (signed credentials go through
    /// [`Session::add_credential`]).
    pub fn add_policy(&mut self, text: &str) -> Result<(), KeyNoteError> {
        let assertion = Assertion::parse(text)?;
        if assertion.authorizer() != &Principal::Policy {
            return Err(KeyNoteError::Syntax(
                "policy assertions must have Authorizer: \"POLICY\"".into(),
            ));
        }
        self.policies.push(assertion);
        Ok(())
    }

    /// Adds a signed credential after verifying its signature.
    ///
    /// # Errors
    ///
    /// Parse errors, [`KeyNoteError::AuthorizerNotAKey`], or
    /// [`KeyNoteError::BadSignature`].
    pub fn add_credential(&mut self, text: &str) -> Result<(), KeyNoteError> {
        let assertion = Assertion::parse(text)?;
        assertion.verify()?;
        self.credentials.push(assertion);
        Ok(())
    }

    /// The credentials currently in the session.
    pub fn credentials(&self) -> &[Assertion] {
        &self.credentials
    }

    /// Number of policy assertions.
    pub fn policy_count(&self) -> usize {
        self.policies.len()
    }

    /// Drops credentials for which `keep` returns false (used by the
    /// DisCFS revocation path).
    pub fn retain_credentials<F: FnMut(&Assertion) -> bool>(&mut self, keep: F) {
        self.credentials.retain(keep);
    }

    /// Sets an action attribute (overwriting any previous value).
    pub fn set_attribute(&mut self, name: &str, value: &str) {
        self.attributes.insert(name.to_string(), value.to_string());
    }

    /// Removes all action attributes.
    pub fn clear_attributes(&mut self) {
        self.attributes.clear();
    }

    /// Adds a requesting principal (`_ACTION_AUTHORIZERS` member).
    pub fn add_requester(&mut self, principal: Principal) {
        self.requesters.insert(principal);
    }

    /// Convenience: adds a key requester.
    pub fn add_requester_key(&mut self, key: &VerifyingKey) {
        self.requesters.insert(Principal::Key(*key));
    }

    /// Removes all requesters.
    pub fn clear_requesters(&mut self) {
        self.requesters.clear();
    }

    /// Runs the compliance check.
    ///
    /// # Errors
    ///
    /// [`KeyNoteError::NoPolicy`] when no policy assertions exist; a
    /// session with policies always yields a value (possibly
    /// `_MIN_TRUST`).
    pub fn query(&self) -> Result<ComplianceValue, KeyNoteError> {
        if self.policies.is_empty() {
            return Err(KeyNoteError::NoPolicy);
        }

        // Group assertions by authorizer.
        let mut by_authorizer: HashMap<&Principal, Vec<&Assertion>> = HashMap::new();
        for a in self.policies.iter().chain(self.credentials.iter()) {
            by_authorizer.entry(a.authorizer()).or_default().push(a);
        }

        // Special attributes per RFC 2704 §3.
        let mut requester_names: Vec<String> =
            self.requesters.iter().map(|p| p.to_text()).collect();
        requester_names.sort();
        let action_authorizers = requester_names.join(",");
        let values_attr = self.values.values_attribute();
        let min_attr = self.values.min_value().to_string();
        let max_attr = self.values.max_value().to_string();

        let lookup = move |name: &str| -> Option<String> {
            match name {
                "_MIN_TRUST" => Some(min_attr.clone()),
                "_MAX_TRUST" => Some(max_attr.clone()),
                "_VALUES" => Some(values_attr.clone()),
                "_ACTION_AUTHORIZERS" => Some(action_authorizers.clone()),
                other => self.attributes.get(other).cloned(),
            }
        };
        let ctx = EvalCtx {
            attrs: &lookup,
            values: &self.values,
        };

        let mut memo: HashMap<Principal, Option<usize>> = HashMap::new();
        let index = self.support(&Principal::Policy, &by_authorizer, &ctx, &mut memo);
        Ok(ComplianceValue {
            index,
            text: self.values.value_at(index).to_string(),
        })
    }

    /// Computes a principal's support value by depth-first traversal of
    /// the delegation graph. `memo` holds `None` while a principal is
    /// on the current path (cycles contribute `_MIN_TRUST`).
    fn support(
        &self,
        principal: &Principal,
        by_authorizer: &HashMap<&Principal, Vec<&Assertion>>,
        ctx: &EvalCtx<'_>,
        memo: &mut HashMap<Principal, Option<usize>>,
    ) -> usize {
        if self.requesters.contains(principal) {
            return self.values.max_index();
        }
        match memo.get(principal) {
            Some(Some(v)) => return *v,
            Some(None) => return self.values.min_index(), // cycle
            None => {}
        }
        memo.insert(principal.clone(), None);

        let mut best = self.values.min_index();
        if let Some(assertions) = by_authorizer.get(principal) {
            for assertion in assertions {
                let lic_value = match assertion.licensees() {
                    Some(expr) => self.eval_licensees(expr, by_authorizer, ctx, memo),
                    None => self.values.min_index(),
                };
                if lic_value == self.values.min_index() {
                    continue;
                }
                let cond_value = match assertion.conditions() {
                    Some(program) => eval_program(program, ctx),
                    None => self.values.max_index(),
                };
                best = best.max(lic_value.min(cond_value));
            }
        }
        memo.insert(principal.clone(), Some(best));
        best
    }

    fn eval_licensees(
        &self,
        expr: &LicenseeExpr,
        by_authorizer: &HashMap<&Principal, Vec<&Assertion>>,
        ctx: &EvalCtx<'_>,
        memo: &mut HashMap<Principal, Option<usize>>,
    ) -> usize {
        match expr {
            LicenseeExpr::Principal(p) => self.support(p, by_authorizer, ctx, memo),
            LicenseeExpr::And(a, b) => self
                .eval_licensees(a, by_authorizer, ctx, memo)
                .min(self.eval_licensees(b, by_authorizer, ctx, memo)),
            LicenseeExpr::Or(a, b) => self
                .eval_licensees(a, by_authorizer, ctx, memo)
                .max(self.eval_licensees(b, by_authorizer, ctx, memo)),
            LicenseeExpr::KOf(k, subs) => {
                let mut values: Vec<usize> = subs
                    .iter()
                    .map(|s| self.eval_licensees(s, by_authorizer, ctx, memo))
                    .collect();
                values.sort_unstable_by(|a, b| b.cmp(a));
                // k ≥ 1 and k ≤ len are enforced at parse time.
                values[(*k as usize) - 1]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::AssertionBuilder;
    use discfs_crypto::ed25519::SigningKey;

    const PERMS: [&str; 8] = ["false", "X", "W", "WX", "R", "RX", "RW", "RWX"];

    fn admin() -> SigningKey {
        SigningKey::from_seed(&[1; 32])
    }
    fn bob() -> SigningKey {
        SigningKey::from_seed(&[2; 32])
    }
    fn alice() -> SigningKey {
        SigningKey::from_seed(&[3; 32])
    }

    fn admin_root_policy() -> String {
        AssertionBuilder::new()
            .licensee_key(&admin().public())
            .policy()
    }

    fn discfs_cred(issuer: &SigningKey, holder: &SigningKey, handle: &str, perm: &str) -> String {
        AssertionBuilder::new()
            .licensee_key(&holder.public())
            .conditions(&format!(
                "(app_domain == \"DisCFS\") && (HANDLE == \"{handle}\") -> \"{perm}\";"
            ))
            .sign(issuer)
    }

    fn discfs_session(handle: &str) -> Session {
        let mut s = Session::new(&PERMS);
        s.add_policy(&admin_root_policy()).unwrap();
        s.set_attribute("app_domain", "DisCFS");
        s.set_attribute("HANDLE", handle);
        s
    }

    #[test]
    fn direct_grant() {
        let mut s = discfs_session("666240");
        s.add_credential(&discfs_cred(&admin(), &bob(), "666240", "RWX"))
            .unwrap();
        s.add_requester_key(&bob().public());
        assert_eq!(s.query().unwrap().as_str(), "RWX");
    }

    #[test]
    fn no_credential_no_access() {
        let mut s = discfs_session("666240");
        s.add_requester_key(&bob().public());
        assert!(s.query().unwrap().is_min());
    }

    #[test]
    fn wrong_handle_no_access() {
        let mut s = discfs_session("111");
        s.add_credential(&discfs_cred(&admin(), &bob(), "666240", "RWX"))
            .unwrap();
        s.add_requester_key(&bob().public());
        assert!(s.query().unwrap().is_min());
    }

    #[test]
    fn figure1_delegation_chain() {
        // Paper Figure 1: administrator → Bob (RW) → Alice (R).
        let mut s = discfs_session("42");
        s.add_credential(&discfs_cred(&admin(), &bob(), "42", "RW"))
            .unwrap();
        s.add_credential(&discfs_cred(&bob(), &alice(), "42", "R"))
            .unwrap();
        s.add_requester_key(&alice().public());
        assert_eq!(s.query().unwrap().as_str(), "R");
    }

    #[test]
    fn chain_cannot_amplify() {
        // Bob holds R only, delegates "RWX" to Alice: chain min caps at R.
        let mut s = discfs_session("42");
        s.add_credential(&discfs_cred(&admin(), &bob(), "42", "R"))
            .unwrap();
        s.add_credential(&discfs_cred(&bob(), &alice(), "42", "RWX"))
            .unwrap();
        s.add_requester_key(&alice().public());
        assert_eq!(s.query().unwrap().as_str(), "R");
    }

    #[test]
    fn missing_middle_link_breaks_chain() {
        // Alice presents only Bob's credential; admin→Bob link absent.
        let mut s = discfs_session("42");
        s.add_credential(&discfs_cred(&bob(), &alice(), "42", "R"))
            .unwrap();
        s.add_requester_key(&alice().public());
        assert!(s.query().unwrap().is_min());
    }

    #[test]
    fn requester_must_sign_request() {
        // Bob has a credential but Alice is the requester.
        let mut s = discfs_session("42");
        s.add_credential(&discfs_cred(&admin(), &bob(), "42", "RWX"))
            .unwrap();
        s.add_requester_key(&alice().public());
        assert!(s.query().unwrap().is_min());
    }

    #[test]
    fn arbitrary_chain_length() {
        // The paper contrasts with Exokernel's 8-level limit: build a
        // 12-link chain and verify it still works.
        let mut s = discfs_session("7");
        let mut keys = vec![admin()];
        for i in 0..12 {
            keys.push(SigningKey::from_seed(&[10 + i as u8; 32]));
        }
        for w in keys.windows(2) {
            s.add_credential(&discfs_cred(&w[0], &w[1], "7", "R"))
                .unwrap();
        }
        s.add_requester_key(&keys.last().unwrap().public());
        assert_eq!(s.query().unwrap().as_str(), "R");
    }

    #[test]
    fn threshold_licensees() {
        // 2-of(bob, alice, carol) must sign together.
        let carol = SigningKey::from_seed(&[4; 32]);
        let expr = format!(
            "2-of(\"{}\", \"{}\", \"{}\")",
            crate::key_principal(&bob().public()),
            crate::key_principal(&alice().public()),
            crate::key_principal(&carol.public()),
        );
        let cred = AssertionBuilder::new()
            .licensees_expr(&expr)
            .conditions("(app_domain == \"DisCFS\") -> \"RW\";")
            .sign(&admin());

        let mut s = Session::new(&PERMS);
        s.add_policy(&admin_root_policy()).unwrap();
        s.set_attribute("app_domain", "DisCFS");
        s.add_credential(&cred).unwrap();

        s.add_requester_key(&bob().public());
        assert!(s.query().unwrap().is_min(), "one signer is not enough");

        s.add_requester_key(&alice().public());
        assert_eq!(s.query().unwrap().as_str(), "RW", "two signers suffice");
    }

    #[test]
    fn and_licensees_require_both() {
        let expr = format!(
            "\"{}\" && \"{}\"",
            crate::key_principal(&bob().public()),
            crate::key_principal(&alice().public()),
        );
        let cred = AssertionBuilder::new()
            .licensees_expr(&expr)
            .conditions("true -> \"R\";")
            .sign(&admin());
        let mut s = Session::new(&PERMS);
        s.add_policy(&admin_root_policy()).unwrap();
        s.add_credential(&cred).unwrap();
        s.add_requester_key(&bob().public());
        assert!(s.query().unwrap().is_min());
        s.add_requester_key(&alice().public());
        assert_eq!(s.query().unwrap().as_str(), "R");
    }

    #[test]
    fn multiple_credentials_max_wins() {
        let mut s = discfs_session("9");
        s.add_credential(&discfs_cred(&admin(), &bob(), "9", "W"))
            .unwrap();
        s.add_credential(&discfs_cred(&admin(), &bob(), "9", "RX"))
            .unwrap();
        s.add_requester_key(&bob().public());
        // max(W, RX) in the linear order is RX.
        assert_eq!(s.query().unwrap().as_str(), "RX");
    }

    #[test]
    fn cycle_terminates() {
        // bob delegates to alice, alice delegates back to bob; neither
        // signed the request and neither has root support.
        let mut s = discfs_session("5");
        s.add_credential(&discfs_cred(&bob(), &alice(), "5", "R"))
            .unwrap();
        s.add_credential(&discfs_cred(&alice(), &bob(), "5", "R"))
            .unwrap();
        s.add_requester_key(&SigningKey::from_seed(&[99; 32]).public());
        assert!(s.query().unwrap().is_min());
    }

    #[test]
    fn no_policy_is_error() {
        let s = Session::new(&PERMS);
        assert_eq!(s.query(), Err(KeyNoteError::NoPolicy));
    }

    #[test]
    fn bad_credential_signature_rejected_at_add() {
        let mut s = discfs_session("1");
        let cred = discfs_cred(&admin(), &bob(), "1", "R");
        let tampered = cred.replace("\"R\"", "\"RWX\"");
        assert_eq!(s.add_credential(&tampered), Err(KeyNoteError::BadSignature));
    }

    #[test]
    fn policy_with_key_authorizer_rejected() {
        let mut s = Session::new(&PERMS);
        let cred = discfs_cred(&admin(), &bob(), "1", "R");
        assert!(matches!(s.add_policy(&cred), Err(KeyNoteError::Syntax(_))));
    }

    #[test]
    fn retain_credentials_supports_revocation() {
        let mut s = discfs_session("8");
        let cred = discfs_cred(&admin(), &bob(), "8", "RW");
        s.add_credential(&cred).unwrap();
        s.add_requester_key(&bob().public());
        assert_eq!(s.query().unwrap().as_str(), "RW");

        let revoked_id = Assertion::parse(&cred).unwrap().id();
        s.retain_credentials(|a| a.id() != revoked_id);
        assert!(s.query().unwrap().is_min());
    }

    #[test]
    fn action_authorizers_attribute_visible() {
        let mut s = Session::new(&["false", "true"]);
        s.add_policy(&admin_root_policy()).unwrap();
        let cred = AssertionBuilder::new()
            .licensee_key(&bob().public())
            .conditions(&format!(
                "(_ACTION_AUTHORIZERS ~= \"{}\") -> \"true\";",
                crate::key_principal(&bob().public())
            ))
            .sign(&admin());
        s.add_credential(&cred).unwrap();
        s.add_requester_key(&bob().public());
        assert_eq!(s.query().unwrap().as_str(), "true");
    }

    #[test]
    fn policy_can_grant_directly_with_conditions() {
        // Policy with conditions and direct key licensee, no credentials.
        let mut s = Session::new(&["false", "true"]);
        let policy = AssertionBuilder::new()
            .licensee_key(&bob().public())
            .conditions("(door == \"front\") -> \"true\";")
            .policy();
        s.add_policy(&policy).unwrap();
        s.add_requester_key(&bob().public());
        s.set_attribute("door", "front");
        assert_eq!(s.query().unwrap().as_str(), "true");
        s.set_attribute("door", "back");
        assert_eq!(s.query().unwrap().as_str(), "false");
    }
}
