//! Evaluation of conditions programs against an action attribute set.
//!
//! RFC 2704 semantics implemented here:
//!
//! * A clause whose test holds contributes its outcome value; the
//!   program's value is the **maximum** over contributing clauses.
//! * A failing test, a reference to an undefined attribute used in a
//!   numeric context, a malformed number, or a bad regex all make the
//!   *enclosing test* evaluate to false — they never abort the query
//!   (robustness principle of §4.6.4: errors yield `_MIN_TRUST`, not
//!   failures).
//! * An undefined attribute dereferences to the empty string.
//! * A clause value that is not in the query's compliance value set is
//!   treated as `_MIN_TRUST`.

use crate::ast::{ArithOp, BoolExpr, CmpOp, Outcome, Program, ValExpr};
use crate::regex::Regex;
use crate::values::ValueSet;

/// Attribute lookup function: `None` means "not defined".
pub type AttrLookup<'a> = &'a dyn Fn(&str) -> Option<String>;

/// Evaluation context for one query.
pub struct EvalCtx<'a> {
    /// Action attribute lookup (includes the `_`-special attributes).
    pub attrs: AttrLookup<'a>,
    /// The ordered compliance value set of the query.
    pub values: &'a ValueSet,
}

/// Evaluates a conditions program to a compliance value index.
pub fn eval_program(program: &Program, ctx: &EvalCtx<'_>) -> usize {
    let mut best = ctx.values.min_index();
    for clause in &program.0 {
        if eval_bool(&clause.test, ctx) {
            let v = match &clause.outcome {
                Outcome::MaxTrust => ctx.values.max_index(),
                Outcome::Value(name) => ctx.values.index_of(name).unwrap_or(ctx.values.min_index()),
                Outcome::Sub(sub) => eval_program(sub, ctx),
            };
            best = best.max(v);
        }
    }
    best
}

/// Evaluates a boolean test; any evaluation error yields `false`.
pub fn eval_bool(expr: &BoolExpr, ctx: &EvalCtx<'_>) -> bool {
    match expr {
        BoolExpr::True => true,
        BoolExpr::False => false,
        BoolExpr::Not(inner) => !eval_bool(inner, ctx),
        BoolExpr::And(a, b) => eval_bool(a, ctx) && eval_bool(b, ctx),
        BoolExpr::Or(a, b) => eval_bool(a, ctx) || eval_bool(b, ctx),
        BoolExpr::Cmp(lhs, op, rhs) => eval_cmp(lhs, *op, rhs, ctx).unwrap_or(false),
        BoolExpr::Match(subject, pattern) => {
            let (Some(subject), Some(pattern)) = (eval_val(subject, ctx), eval_val(pattern, ctx))
            else {
                return false;
            };
            match Regex::new(&pattern) {
                Ok(re) => re.is_match(&subject),
                Err(_) => false,
            }
        }
    }
}

fn eval_cmp(lhs: &ValExpr, op: CmpOp, rhs: &ValExpr, ctx: &EvalCtx<'_>) -> Option<bool> {
    // A comparison is numeric when either operand is syntactically
    // numeric (a literal number or arithmetic); both sides must then
    // coerce to numbers or the test fails.
    let numeric = lhs.is_numeric_kind() || rhs.is_numeric_kind();
    let l = eval_val(lhs, ctx)?;
    let r = eval_val(rhs, ctx)?;
    if numeric {
        let ln: f64 = l.trim().parse().ok()?;
        let rn: f64 = r.trim().parse().ok()?;
        Some(match op {
            CmpOp::Eq => ln == rn,
            CmpOp::Ne => ln != rn,
            CmpOp::Lt => ln < rn,
            CmpOp::Gt => ln > rn,
            CmpOp::Le => ln <= rn,
            CmpOp::Ge => ln >= rn,
        })
    } else {
        Some(match op {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Gt => l > r,
            CmpOp::Le => l <= r,
            CmpOp::Ge => l >= r,
        })
    }
}

/// Evaluates a value expression to a string; `None` signals a numeric
/// evaluation error (which fails the enclosing test).
pub fn eval_val(expr: &ValExpr, ctx: &EvalCtx<'_>) -> Option<String> {
    match expr {
        ValExpr::Str(s) => Some(s.clone()),
        ValExpr::Num(n) => Some(n.clone()),
        // RFC 2704: dereferencing an undefined attribute yields "".
        ValExpr::Attr(name) => Some((ctx.attrs)(name).unwrap_or_default()),
        ValExpr::Indirect(inner) => {
            let name = eval_val(inner, ctx)?;
            Some((ctx.attrs)(&name).unwrap_or_default())
        }
        ValExpr::Concat(a, b) => {
            let mut s = eval_val(a, ctx)?;
            s.push_str(&eval_val(b, ctx)?);
            Some(s)
        }
        ValExpr::Neg(inner) => {
            let v: f64 = eval_val(inner, ctx)?.trim().parse().ok()?;
            Some(format_number(-v))
        }
        ValExpr::Arith(op, a, b) => {
            let l: f64 = eval_val(a, ctx)?.trim().parse().ok()?;
            let r: f64 = eval_val(b, ctx)?.trim().parse().ok()?;
            let result = match op {
                ArithOp::Add => l + r,
                ArithOp::Sub => l - r,
                ArithOp::Mul => l * r,
                ArithOp::Div => {
                    if r == 0.0 {
                        return None;
                    }
                    l / r
                }
                ArithOp::Rem => {
                    if r == 0.0 {
                        return None;
                    }
                    l % r
                }
                ArithOp::Pow => l.powf(r),
            };
            if result.is_finite() {
                Some(format_number(result))
            } else {
                None
            }
        }
    }
}

/// Formats a float the way users expect in string contexts: integers
/// print without a fractional part.
fn format_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_conditions;
    use std::collections::HashMap;

    fn eval_with(conditions: &str, attrs: &[(&str, &str)], values: &[&str]) -> String {
        let program = parse_conditions(conditions).unwrap();
        let map: HashMap<String, String> = attrs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let vs = ValueSet::new(values);
        let lookup = |name: &str| map.get(name).cloned();
        let ctx = EvalCtx {
            attrs: &lookup,
            values: &vs,
        };
        vs.value_at(eval_program(&program, &ctx)).to_string()
    }

    fn eval_bool_str(conditions: &str, attrs: &[(&str, &str)]) -> bool {
        eval_with(conditions, attrs, &["false", "true"]) == "true"
    }

    #[test]
    fn paper_figure5_credential() {
        let cond = "(app_domain == \"DisCFS\") && (HANDLE == \"666240\") -> \"RWX\";";
        let values = ["false", "X", "W", "WX", "R", "RX", "RW", "RWX"];
        assert_eq!(
            eval_with(
                cond,
                &[("app_domain", "DisCFS"), ("HANDLE", "666240")],
                &values
            ),
            "RWX"
        );
        assert_eq!(
            eval_with(cond, &[("app_domain", "DisCFS"), ("HANDLE", "1")], &values),
            "false"
        );
        assert_eq!(
            eval_with(
                cond,
                &[("app_domain", "other"), ("HANDLE", "666240")],
                &values
            ),
            "false"
        );
    }

    #[test]
    fn max_of_clauses_wins() {
        let cond = "(a == \"1\") -> \"R\"; (a == \"1\") -> \"RW\";";
        let values = ["false", "X", "W", "WX", "R", "RX", "RW", "RWX"];
        assert_eq!(eval_with(cond, &[("a", "1")], &values), "RW");
    }

    #[test]
    fn nested_subprogram() {
        let cond = "(app_domain == \"DisCFS\") -> { (op == \"read\") -> \"R\"; (op == \"write\") -> \"W\"; };";
        let values = ["false", "X", "W", "WX", "R", "RX", "RW", "RWX"];
        assert_eq!(
            eval_with(cond, &[("app_domain", "DisCFS"), ("op", "read")], &values),
            "R"
        );
        assert_eq!(
            eval_with(cond, &[("app_domain", "DisCFS"), ("op", "write")], &values),
            "W"
        );
        assert_eq!(
            eval_with(cond, &[("app_domain", "DisCFS")], &values),
            "false"
        );
        assert_eq!(eval_with(cond, &[("op", "read")], &values), "false");
    }

    #[test]
    fn bare_test_yields_max_trust() {
        assert!(eval_bool_str("a == \"x\"", &[("a", "x")]));
        assert!(!eval_bool_str("a == \"x\"", &[("a", "y")]));
    }

    #[test]
    fn undefined_attribute_is_empty_string() {
        assert!(eval_bool_str("missing == \"\"", &[]));
        assert!(!eval_bool_str("missing == \"x\"", &[]));
    }

    #[test]
    fn numeric_comparison() {
        // Numeric because one side is a numeric literal.
        assert!(eval_bool_str("size < 100", &[("size", "42")]));
        assert!(!eval_bool_str("size < 100", &[("size", "142")]));
        // String comparison would order "9" after "10"; numeric orders properly.
        assert!(eval_bool_str("n < 10", &[("n", "9")]));
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        assert!(eval_bool_str("a < \"b\"", &[("a", "apple")]));
        // Both sides string-kind: "10" < "9" lexicographically.
        assert!(eval_bool_str("x < \"9\"", &[("x", "10")]));
    }

    #[test]
    fn numeric_coercion_failure_fails_test() {
        assert!(!eval_bool_str("size < 100", &[("size", "not-a-number")]));
        // ...but does not poison other clauses.
        let values = ["false", "true"];
        assert_eq!(
            eval_with(
                "(size < 100) -> \"true\"; (ok == \"yes\") -> \"true\";",
                &[("size", "junk"), ("ok", "yes")],
                &values
            ),
            "true"
        );
    }

    #[test]
    fn arithmetic() {
        assert!(eval_bool_str("2 + 2 == 4", &[]));
        assert!(eval_bool_str(
            "(size * 2) <= limit",
            &[("size", "5"), ("limit", "10")]
        ));
        assert!(eval_bool_str("2 ^ 10 == 1024", &[]));
        assert!(eval_bool_str("10 % 3 == 1", &[]));
        assert!(!eval_bool_str("1 / 0 == 1", &[]));
    }

    #[test]
    fn unary_negation() {
        assert!(eval_bool_str("-balance < 0", &[("balance", "5")]));
    }

    #[test]
    fn concatenation() {
        assert!(eval_bool_str(
            "(dir . \"/\" . name) == \"/tmp/file\"",
            &[("dir", "/tmp"), ("name", "file")]
        ));
    }

    #[test]
    fn regex_match_operator() {
        assert!(eval_bool_str(
            "filename ~= \"^/discfs/.*\\.tex$\"",
            &[("filename", "/discfs/paper.tex")]
        ));
        assert!(!eval_bool_str(
            "filename ~= \"^/discfs/.*\\.tex$\"",
            &[("filename", "/etc/passwd")]
        ));
        // Bad pattern fails closed.
        assert!(!eval_bool_str("x ~= \"(unclosed\"", &[("x", "anything")]));
    }

    #[test]
    fn indirection() {
        assert!(eval_bool_str(
            "$selector == \"chosen\"",
            &[("selector", "target"), ("target", "chosen")]
        ));
    }

    #[test]
    fn unknown_compliance_value_is_min_trust() {
        let values = ["false", "true"];
        assert_eq!(eval_with("true -> \"SUPERUSER\";", &[], &values), "false");
    }

    #[test]
    fn boolean_literals_and_not() {
        assert!(eval_bool_str("true", &[]));
        assert!(!eval_bool_str("false", &[]));
        assert!(eval_bool_str("!false", &[]));
        assert!(eval_bool_str("true && !(false || false)", &[]));
    }

    #[test]
    fn time_of_day_policy() {
        // The paper's §3.1 example: leisure files unavailable during
        // office hours.
        let cond = "(hour >= 9 && hour < 17) -> \"false\"; (hour < 9 || hour >= 17) -> \"true\";";
        assert!(!eval_bool_str(cond, &[("hour", "10")]));
        assert!(eval_bool_str(cond, &[("hour", "20")]));
        assert!(eval_bool_str(cond, &[("hour", "8")]));
    }
}
