//! Principals: the parties named in assertions.
//!
//! RFC 2704 principals are either cryptographic keys (which can sign
//! credentials and requests) or opaque identifiers (which can only be
//! referred to). Keys are written `<algorithm>:<encoding>`, e.g.
//! `ed25519-hex:3081de02…`.

use discfs_crypto::ed25519::VerifyingKey;
use discfs_crypto::hex;

use crate::KeyNoteError;

/// The algorithm tag for Ed25519 keys in hex encoding.
pub const ED25519_HEX: &str = "ed25519-hex";

/// A KeyNote principal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Principal {
    /// The special local-policy root; only valid as an authorizer.
    Policy,
    /// An Ed25519 public key.
    Key(VerifyingKey),
    /// An opaque (non-cryptographic) identifier.
    Opaque(String),
}

impl Principal {
    /// Parses a principal string as it appears inside an assertion.
    ///
    /// `"POLICY"` (case-sensitive, per RFC 2704) maps to
    /// [`Principal::Policy`]; strings with a recognized algorithm prefix
    /// become keys; anything else is an opaque identifier.
    ///
    /// # Errors
    ///
    /// Returns [`KeyNoteError::BadPrincipal`] when a key prefix is
    /// present but the payload is not a valid key encoding.
    pub fn parse(s: &str) -> Result<Principal, KeyNoteError> {
        if s == "POLICY" {
            return Ok(Principal::Policy);
        }
        if let Some(hex_part) = s.strip_prefix("ed25519-hex:") {
            let bytes = hex::decode_array::<32>(hex_part)
                .map_err(|_| KeyNoteError::BadPrincipal(s.to_string()))?;
            let key = VerifyingKey::from_bytes(&bytes)
                .map_err(|_| KeyNoteError::BadPrincipal(s.to_string()))?;
            return Ok(Principal::Key(key));
        }
        // Unknown algorithm prefixes are an error (a typo in a key tag
        // must not silently become an opaque name that never matches).
        if s.contains(':') && s.split(':').next().is_some_and(|p| p.ends_with("-hex")) {
            return Err(KeyNoteError::BadPrincipal(s.to_string()));
        }
        Ok(Principal::Opaque(s.to_string()))
    }

    /// Renders the principal in assertion syntax.
    pub fn to_text(&self) -> String {
        match self {
            Principal::Policy => "POLICY".to_string(),
            Principal::Key(k) => format!("{ED25519_HEX}:{}", hex::encode(&k.0)),
            Principal::Opaque(s) => s.clone(),
        }
    }

    /// Returns the verifying key if this principal is a key.
    pub fn as_key(&self) -> Option<&VerifyingKey> {
        match self {
            Principal::Key(k) => Some(k),
            _ => None,
        }
    }
}

impl std::fmt::Display for Principal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

/// Renders a verifying key as a principal string (`ed25519-hex:…`).
///
/// This is the form used in `Authorizer`/`Licensees` fields and as the
/// identity DisCFS logs for auditing.
pub fn key_principal(key: &VerifyingKey) -> String {
    format!("{ED25519_HEX}:{}", hex::encode(&key.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use discfs_crypto::ed25519::SigningKey;

    #[test]
    fn parse_policy() {
        assert_eq!(Principal::parse("POLICY").unwrap(), Principal::Policy);
        // Case-sensitive: lowercase is an opaque name.
        assert!(matches!(
            Principal::parse("policy").unwrap(),
            Principal::Opaque(_)
        ));
    }

    #[test]
    fn parse_key_round_trip() {
        let key = SigningKey::from_seed(&[9; 32]).public();
        let text = key_principal(&key);
        let parsed = Principal::parse(&text).unwrap();
        assert_eq!(parsed, Principal::Key(key));
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn parse_opaque() {
        let p = Principal::parse("alice@example.com").unwrap();
        assert_eq!(p, Principal::Opaque("alice@example.com".into()));
    }

    #[test]
    fn bad_key_hex_rejected() {
        assert!(Principal::parse("ed25519-hex:zznothex").is_err());
        assert!(Principal::parse("ed25519-hex:abcd").is_err()); // too short
    }

    #[test]
    fn unknown_key_algorithm_rejected() {
        assert!(Principal::parse("rsa-hex:abcdef").is_err());
    }

    #[test]
    fn as_key() {
        let key = SigningKey::from_seed(&[9; 32]).public();
        assert!(Principal::Key(key).as_key().is_some());
        assert!(Principal::Policy.as_key().is_none());
        assert!(Principal::Opaque("x".into()).as_key().is_none());
    }
}
