//! A small backtracking regular-expression engine.
//!
//! KeyNote's `~=` operator performs POSIX-style regex *search* (a match
//! anywhere in the subject unless anchored). To keep the workspace
//! dependency-free this module implements the subset of POSIX extended
//! regexps that trust-management policies actually use:
//!
//! * literals, `.` (any char), escaped metacharacters
//! * `*`, `+`, `?` postfix repetition (greedy)
//! * `[...]` / `[^...]` character classes with ranges
//! * `(...)` grouping and `|` alternation
//! * `^` / `$` anchors
//!
//! The matcher is a straightforward recursive backtracker; policy
//! patterns are short and written by trusted issuers, so worst-case
//! exponential inputs are not a practical concern, and a depth cap
//! turns pathological cases into a clean non-match.

use std::cell::Cell;

/// Backtracking step budget; pathological patterns fail to match rather
/// than hang.
const MAX_STEPS: usize = 1_000_000;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    alt: Alt,
}

/// Alternation: any branch may match.
#[derive(Debug, Clone)]
struct Alt(Vec<Seq>);

/// A sequence of repeated atoms.
#[derive(Debug, Clone)]
struct Seq(Vec<Rep>);

#[derive(Debug, Clone, Copy, PartialEq)]
enum RepKind {
    One,
    Star,
    Plus,
    Opt,
}

#[derive(Debug, Clone)]
struct Rep {
    atom: Atom,
    kind: RepKind,
}

#[derive(Debug, Clone)]
enum Atom {
    Char(char),
    Any,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    Group(Alt),
    Start,
    End,
}

#[derive(Debug, Clone)]
enum ClassItem {
    Single(char),
    Range(char, char),
}

/// Errors from pattern compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegexError {
    /// The pattern ended unexpectedly (e.g. unclosed group or class).
    UnexpectedEnd,
    /// A repetition operator had nothing to repeat.
    DanglingRepeat,
    /// An unmatched closing parenthesis was found.
    UnbalancedParen,
}

impl std::fmt::Display for RegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegexError::UnexpectedEnd => write!(f, "pattern ended unexpectedly"),
            RegexError::DanglingRepeat => write!(f, "repetition operator with no operand"),
            RegexError::UnbalancedParen => write!(f, "unbalanced parenthesis"),
        }
    }
}

impl std::error::Error for RegexError {}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn parse_alt(&mut self, in_group: bool) -> Result<Alt, RegexError> {
        let mut branches = vec![self.parse_seq(in_group)?];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            branches.push(self.parse_seq(in_group)?);
        }
        Ok(Alt(branches))
    }

    fn parse_seq(&mut self, in_group: bool) -> Result<Seq, RegexError> {
        let mut items = Vec::new();
        loop {
            match self.chars.peek().copied() {
                None => break,
                Some('|') => break,
                Some(')') => {
                    if in_group {
                        break;
                    }
                    return Err(RegexError::UnbalancedParen);
                }
                Some(_) => {
                    let atom = self.parse_atom()?;
                    let kind = match self.chars.peek().copied() {
                        Some('*') => {
                            self.chars.next();
                            RepKind::Star
                        }
                        Some('+') => {
                            self.chars.next();
                            RepKind::Plus
                        }
                        Some('?') => {
                            self.chars.next();
                            RepKind::Opt
                        }
                        _ => RepKind::One,
                    };
                    items.push(Rep { atom, kind });
                }
            }
        }
        Ok(Seq(items))
    }

    fn parse_atom(&mut self) -> Result<Atom, RegexError> {
        let c = self.chars.next().ok_or(RegexError::UnexpectedEnd)?;
        match c {
            '.' => Ok(Atom::Any),
            '^' => Ok(Atom::Start),
            '$' => Ok(Atom::End),
            '(' => {
                let inner = self.parse_alt(true)?;
                match self.chars.next() {
                    Some(')') => Ok(Atom::Group(inner)),
                    _ => Err(RegexError::UnexpectedEnd),
                }
            }
            '[' => self.parse_class(),
            '\\' => {
                let esc = self.chars.next().ok_or(RegexError::UnexpectedEnd)?;
                Ok(Atom::Char(match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }))
            }
            '*' | '+' | '?' => Err(RegexError::DanglingRepeat),
            other => Ok(Atom::Char(other)),
        }
    }

    fn parse_class(&mut self) -> Result<Atom, RegexError> {
        let mut negated = false;
        if self.chars.peek() == Some(&'^') {
            self.chars.next();
            negated = true;
        }
        let mut items = Vec::new();
        let mut first = true;
        loop {
            let c = self.chars.next().ok_or(RegexError::UnexpectedEnd)?;
            if c == ']' && !first {
                break;
            }
            first = false;
            let c = if c == '\\' {
                self.chars.next().ok_or(RegexError::UnexpectedEnd)?
            } else {
                c
            };
            // Range if followed by '-' and a char that is not ']'.
            if self.chars.peek() == Some(&'-') {
                let mut look_ahead = self.chars.clone();
                look_ahead.next();
                if let Some(&end) = look_ahead.peek() {
                    if end != ']' {
                        self.chars.next(); // consume '-'
                        let end = self.chars.next().ok_or(RegexError::UnexpectedEnd)?;
                        items.push(ClassItem::Range(c, end));
                        continue;
                    }
                }
            }
            items.push(ClassItem::Single(c));
        }
        Ok(Atom::Class { negated, items })
    }
}

/// Shared matcher state: the subject text plus a step budget.
struct Ctx<'t> {
    text: &'t [char],
    steps: Cell<usize>,
}

impl<'t> Ctx<'t> {
    /// Accounts one backtracking step; false when the budget is spent.
    fn tick(&self) -> bool {
        let n = self.steps.get() + 1;
        self.steps.set(n);
        n <= MAX_STEPS
    }
}

type Cont<'c> = &'c dyn Fn(usize) -> bool;

impl Regex {
    /// Compiles a pattern.
    ///
    /// # Errors
    ///
    /// Returns a [`RegexError`] describing the first syntax problem.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let mut parser = Parser {
            chars: pattern.chars().peekable(),
        };
        let alt = parser.parse_alt(false)?;
        if parser.chars.next().is_some() {
            return Err(RegexError::UnbalancedParen);
        }
        Ok(Regex { alt })
    }

    /// Returns true when the pattern matches anywhere in `text`
    /// (POSIX search semantics; use `^`/`$` to anchor).
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        let ctx = Ctx {
            text: &chars,
            steps: Cell::new(0),
        };
        (0..=chars.len()).any(|start| match_alt(&self.alt, &ctx, start, &|_| true))
    }
}

fn match_alt(alt: &Alt, ctx: &Ctx, pos: usize, cont: Cont) -> bool {
    if !ctx.tick() {
        return false;
    }
    alt.0.iter().any(|seq| match_seq(&seq.0, 0, ctx, pos, cont))
}

fn match_seq(items: &[Rep], idx: usize, ctx: &Ctx, pos: usize, cont: Cont) -> bool {
    if !ctx.tick() {
        return false;
    }
    if idx == items.len() {
        return cont(pos);
    }
    let item = &items[idx];
    let next = |p: usize| match_seq(items, idx + 1, ctx, p, cont);
    match item.kind {
        RepKind::One => match_atom(&item.atom, ctx, pos, &next),
        RepKind::Opt => match_atom(&item.atom, ctx, pos, &next) || next(pos),
        RepKind::Star => match_star(&item.atom, items, idx, ctx, pos, cont),
        RepKind::Plus => match_atom(&item.atom, ctx, pos, &|p| {
            match_star(&item.atom, items, idx, ctx, p, cont)
        }),
    }
}

/// Greedy star: try one more repetition first (requiring progress so
/// nullable atoms terminate), then fall back to the sequence tail.
fn match_star(atom: &Atom, items: &[Rep], idx: usize, ctx: &Ctx, pos: usize, cont: Cont) -> bool {
    if !ctx.tick() {
        return false;
    }
    let more = match_atom(atom, ctx, pos, &|p| {
        p != pos && match_star(atom, items, idx, ctx, p, cont)
    });
    more || match_seq(items, idx + 1, ctx, pos, cont)
}

fn match_atom(atom: &Atom, ctx: &Ctx, pos: usize, cont: Cont) -> bool {
    if !ctx.tick() {
        return false;
    }
    let text = ctx.text;
    match atom {
        Atom::Char(c) => pos < text.len() && text[pos] == *c && cont(pos + 1),
        Atom::Any => pos < text.len() && cont(pos + 1),
        Atom::Class { negated, items } => {
            if pos >= text.len() {
                return false;
            }
            let ch = text[pos];
            let in_class = items.iter().any(|item| match item {
                ClassItem::Single(c) => ch == *c,
                ClassItem::Range(a, b) => ch >= *a && ch <= *b,
            });
            (in_class != *negated) && cont(pos + 1)
        }
        Atom::Start => pos == 0 && cont(pos),
        Atom::End => pos == text.len() && cont(pos),
        Atom::Group(alt) => match_alt(alt, ctx, pos, cont),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, text: &str) -> bool {
        Regex::new(pattern).unwrap().is_match(text)
    }

    #[test]
    fn literals_search_anywhere() {
        assert!(m("abc", "xxabcxx"));
        assert!(!m("abc", "ab"));
        assert!(m("", "anything"));
    }

    #[test]
    fn anchors() {
        assert!(m("^abc", "abcdef"));
        assert!(!m("^abc", "xabc"));
        assert!(m("def$", "abcdef"));
        assert!(!m("def$", "defx"));
        assert!(m("^abc$", "abc"));
        assert!(!m("^abc$", "abcd"));
    }

    #[test]
    fn dot_and_star() {
        assert!(m("a.c", "abc"));
        assert!(m("a.*c", "a-------c"));
        assert!(m("a.*c", "ac"));
        assert!(!m("a.c", "ac"));
    }

    #[test]
    fn plus_and_opt() {
        assert!(m("ab+c", "abbbc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("^ab?c$", "abbc"));
    }

    #[test]
    fn classes() {
        assert!(m("[abc]+", "cab"));
        assert!(m("[a-z0-9]+", "hello42"));
        assert!(!m("^[a-z]+$", "Hello"));
        assert!(m("[^0-9]", "a"));
        assert!(!m("^[^0-9]+$", "a1"));
        // ']' as the first class member is a literal.
        assert!(m("[]a]", "]"));
        // '-' at the end is a literal.
        assert!(m("[a-]", "-"));
    }

    #[test]
    fn groups_and_alternation() {
        assert!(m("^(ab|cd)+$", "abcdab"));
        assert!(!m("^(ab|cd)+$", "abc"));
        assert!(m("cat|dog", "hotdog"));
    }

    #[test]
    fn escapes() {
        assert!(m("a\\.b", "a.b"));
        assert!(!m("^a\\.b$", "axb"));
        assert!(m("\\$100", "$100"));
        assert!(m("a\\\\b", "a\\b"));
    }

    #[test]
    fn keynote_style_email_pattern() {
        // The RFC 2704 example pattern shape.
        let pattern = ".*@keynote\\.research\\.att\\.com$";
        assert!(m(pattern, "angelos@keynote.research.att.com"));
        assert!(!m(pattern, "angelos@research.att.com"));
        assert!(!m(pattern, "angelos@keynote.research.att.com.evil.org"));
    }

    #[test]
    fn path_prefix_pattern() {
        // DisCFS-style: grant over a directory subtree.
        let pattern = "^/discfs/projects/.*";
        assert!(m(pattern, "/discfs/projects/paper.tex"));
        assert!(!m(pattern, "/discfs/private/secret"));
    }

    #[test]
    fn syntax_errors() {
        assert_eq!(Regex::new("a)b").unwrap_err(), RegexError::UnbalancedParen);
        assert_eq!(Regex::new("(ab").unwrap_err(), RegexError::UnexpectedEnd);
        assert_eq!(Regex::new("*a").unwrap_err(), RegexError::DanglingRepeat);
        assert_eq!(Regex::new("[abc").unwrap_err(), RegexError::UnexpectedEnd);
        assert_eq!(Regex::new("a\\").unwrap_err(), RegexError::UnexpectedEnd);
    }

    #[test]
    fn nested_repetition_terminates() {
        // Nullable inner star must not loop forever.
        assert!(m("^(a*)*$", "aaaa"));
        assert!(m("(x?)*y", "y"));
    }

    #[test]
    fn unicode_subject() {
        assert!(m("naïve", "a naïve approach"));
        assert!(m("^é+$", "ééé"));
    }
}
