//! Ordered compliance value sets.
//!
//! Every KeyNote query names an ordered set of values from `_MIN_TRUST`
//! to `_MAX_TRUST` (RFC 2704 §5.1). The classic set is
//! `["false", "true"]`; DisCFS uses the eight Unix permission combos
//! `["false", "X", "W", "WX", "R", "RX", "RW", "RWX"]`, whose order
//! translates directly to octal 0–7 (paper §5).

/// An ordered compliance value set.
///
/// Index 0 is `_MIN_TRUST`, the last index is `_MAX_TRUST`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueSet {
    values: Vec<String>,
}

impl ValueSet {
    /// Creates a value set from an ordered list (minimum first).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two values are supplied — RFC 2704 requires
    /// at least `_MIN_TRUST` and `_MAX_TRUST` to be distinct.
    pub fn new<S: AsRef<str>>(values: &[S]) -> ValueSet {
        assert!(
            values.len() >= 2,
            "a compliance value set needs at least two values"
        );
        ValueSet {
            values: values.iter().map(|s| s.as_ref().to_string()).collect(),
        }
    }

    /// The boolean set `["false", "true"]`.
    pub fn boolean() -> ValueSet {
        ValueSet::new(&["false", "true"])
    }

    /// The index of `_MIN_TRUST` (always 0).
    pub fn min_index(&self) -> usize {
        0
    }

    /// The index of `_MAX_TRUST`.
    pub fn max_index(&self) -> usize {
        self.values.len() - 1
    }

    /// Looks up a value's index; `None` when not a member.
    pub fn index_of(&self, value: &str) -> Option<usize> {
        self.values.iter().position(|v| v == value)
    }

    /// The value string at `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range (indices always originate
    /// from this set, so this indicates an internal logic error).
    pub fn value_at(&self, index: usize) -> &str {
        &self.values[index]
    }

    /// The number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `_VALUES` attribute string: values joined by commas.
    pub fn values_attribute(&self) -> String {
        self.values.join(",")
    }

    /// The `_MIN_TRUST` value string.
    pub fn min_value(&self) -> &str {
        &self.values[0]
    }

    /// The `_MAX_TRUST` value string.
    pub fn max_value(&self) -> &str {
        &self.values[self.values.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_set() {
        let vs = ValueSet::boolean();
        assert_eq!(vs.min_value(), "false");
        assert_eq!(vs.max_value(), "true");
        assert_eq!(vs.index_of("true"), Some(1));
        assert_eq!(vs.index_of("maybe"), None);
        assert_eq!(vs.len(), 2);
    }

    #[test]
    fn discfs_set_orders_like_octal() {
        let vs = ValueSet::new(&["false", "X", "W", "WX", "R", "RX", "RW", "RWX"]);
        // The paper's observation: index == octal permission value.
        assert_eq!(vs.index_of("false"), Some(0));
        assert_eq!(vs.index_of("X"), Some(1));
        assert_eq!(vs.index_of("W"), Some(2));
        assert_eq!(vs.index_of("WX"), Some(3));
        assert_eq!(vs.index_of("R"), Some(4));
        assert_eq!(vs.index_of("RX"), Some(5));
        assert_eq!(vs.index_of("RW"), Some(6));
        assert_eq!(vs.index_of("RWX"), Some(7));
        assert_eq!(vs.max_index(), 7);
    }

    #[test]
    fn values_attribute_joins() {
        assert_eq!(ValueSet::boolean().values_attribute(), "false,true");
    }

    #[test]
    #[should_panic(expected = "at least two values")]
    fn singleton_rejected() {
        ValueSet::new(&["only"]);
    }
}
