//! Property tests for the KeyNote engine.
//!
//! The two critical properties:
//! 1. **No panic, ever** — assertions and conditions arrive over the
//!    network from strangers; parsing and evaluation must fail closed,
//!    not crash the server.
//! 2. **Delegation monotonicity** — a chain can only narrow rights; no
//!    combination of credentials grants more than the weakest link.

use discfs_crypto::ed25519::SigningKey;
use keynote::{Assertion, AssertionBuilder, Session};
use proptest::prelude::*;

const PERMS: [&str; 8] = ["false", "X", "W", "WX", "R", "RX", "RW", "RWX"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes never panic the assertion parser.
    #[test]
    fn parser_never_panics(input in ".{0,500}") {
        let _ = Assertion::parse(&input);
    }

    /// Structured-looking garbage never panics either.
    #[test]
    fn structured_garbage_never_panics(
        field in "[A-Za-z-]{1,20}",
        body in ".{0,200}"
    ) {
        let text = format!("{field}: {body}\nAuthorizer: \"POLICY\"\n");
        let _ = Assertion::parse(&text);
    }

    /// Arbitrary conditions bodies never panic parse or evaluation.
    #[test]
    fn conditions_never_panic(body in ".{0,300}") {
        let text = format!("Authorizer: \"POLICY\"\nLicensees: \"user\"\nConditions: {body}\n");
        if let Ok(_assertion) = Assertion::parse(&text) {
            let mut session = Session::new(&PERMS);
            if session.add_policy(&text).is_ok() {
                session.set_attribute("app_domain", "DisCFS");
                session.add_requester(keynote::Principal::Opaque("user".into()));
                // Whatever happens, it must be a value or a clean error.
                let _ = session.query();
            }
        }
    }

    /// Builder output always reparses and verifies.
    #[test]
    fn builder_round_trip(
        seed in 1u8..255,
        holder_seed in 1u8..255,
        handle in "[0-9]{1,8}\\.[0-9]{1,4}",
        perm_idx in 1usize..8,
        comment in "[ -~]{0,60}",
    ) {
        let issuer = SigningKey::from_seed(&[seed; 32]);
        let holder = SigningKey::from_seed(&[holder_seed; 32]);
        let text = AssertionBuilder::new()
            .comment(&comment)
            .licensee_key(&holder.public())
            .conditions(&format!(
                "(app_domain == \"DisCFS\") && (HANDLE == \"{handle}\") -> \"{}\";",
                PERMS[perm_idx]
            ))
            .sign(&issuer);
        let assertion = Assertion::parse(&text).expect("builder output parses");
        assertion.verify().expect("builder output verifies");
    }

    /// Any single-byte corruption of the SIGNED PORTION of a credential
    /// is caught (either it stops parsing or the signature fails).
    /// Corruption inside the Signature field itself may be semantically
    /// inert (hex is case-insensitive), but then the authorized content
    /// is untouched — which is exactly the guarantee that matters.
    #[test]
    fn corruption_detected(pos_fraction in 0.0f64..1.0, delta in 1u8..255) {
        let issuer = SigningKey::from_seed(&[1; 32]);
        let holder = SigningKey::from_seed(&[2; 32]);
        let text = AssertionBuilder::new()
            .licensee_key(&holder.public())
            .conditions("(HANDLE == \"42.1\") -> \"RW\";")
            .sign(&issuer);
        let signed_prefix_len = text.find("Signature:").expect("signed credential");
        let mut bytes = text.clone().into_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_fraction) as usize;
        bytes[pos] = bytes[pos].wrapping_add(delta);
        let corrupted = String::from_utf8_lossy(&bytes).into_owned();
        if let Ok(assertion) = Assertion::parse(&corrupted) {
            if assertion.verify().is_ok() {
                // Verification can only still succeed when the signed
                // portion is byte-identical — i.e. the flip landed in
                // the Signature field and decoded to the same bytes.
                prop_assert!(pos >= signed_prefix_len, "flip at {pos} inside signed portion passed verify");
                prop_assert_eq!(&corrupted[..signed_prefix_len], &text[..signed_prefix_len]);
            }
        }
    }

    /// Delegation monotonicity: the value granted to the end of a chain
    /// never exceeds the minimum link grant.
    #[test]
    fn chain_never_amplifies(grants in proptest::collection::vec(0usize..8, 1..6)) {
        let admin = SigningKey::from_seed(&[1; 32]);
        let policy = AssertionBuilder::new().licensee_key(&admin.public()).policy();
        let mut keys = vec![admin];
        for i in 0..grants.len() {
            keys.push(SigningKey::from_seed(&[10 + i as u8; 32]));
        }
        let mut session = Session::new(&PERMS);
        session.add_policy(&policy).unwrap();
        for (i, pair) in keys.windows(2).enumerate() {
            let cred = AssertionBuilder::new()
                .licensee_key(&pair[1].public())
                .conditions(&format!(
                    "(app_domain == \"DisCFS\") -> \"{}\";",
                    PERMS[grants[i]]
                ))
                .sign(&pair[0]);
            session.add_credential(&cred).unwrap();
        }
        session.set_attribute("app_domain", "DisCFS");
        session.add_requester_key(&keys.last().unwrap().public());
        let value = session.query().unwrap();
        let min_grant = *grants.iter().min().expect("non-empty");
        prop_assert!(
            value.index() <= min_grant,
            "chain yielded {} but weakest link grants {}",
            value.as_str(),
            PERMS[min_grant]
        );
        // And with all links present it is exactly the minimum.
        prop_assert_eq!(value.index(), min_grant);
    }

    /// Regex engine: never panics, and literal self-match always holds.
    #[test]
    fn regex_never_panics(pattern in ".{0,40}", subject in ".{0,80}") {
        if let Ok(re) = keynote::regex::Regex::new(&pattern) {
            let _ = re.is_match(&subject);
        }
    }

    /// Literal strings (no metacharacters) always match themselves.
    #[test]
    fn regex_literal_self_match(subject in "[a-zA-Z0-9 ]{1,40}") {
        let re = keynote::regex::Regex::new(&subject).expect("literal compiles");
        prop_assert!(re.is_match(&subject));
    }
}
