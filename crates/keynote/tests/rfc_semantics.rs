//! RFC 2704 semantic details beyond the core delegation tests: special
//! attributes, opaque principals, conditions-free assertions, and
//! Local-Constants in signed credentials.

use discfs_crypto::ed25519::SigningKey;
use keynote::{key_principal, Assertion, AssertionBuilder, Principal, Session};

const PERMS: [&str; 8] = ["false", "X", "W", "WX", "R", "RX", "RW", "RWX"];

fn admin() -> SigningKey {
    SigningKey::from_seed(&[1; 32])
}
fn bob() -> SigningKey {
    SigningKey::from_seed(&[2; 32])
}

#[test]
fn special_attributes_visible_to_conditions() {
    // _MIN_TRUST, _MAX_TRUST and _VALUES are implicit action attributes
    // (RFC 2704 §3).
    let mut session = Session::new(&PERMS);
    let policy = AssertionBuilder::new()
        .licensee_key(&bob().public())
        .conditions(
            "(_MIN_TRUST == \"false\") && (_MAX_TRUST == \"RWX\") && \
             (_VALUES == \"false,X,W,WX,R,RX,RW,RWX\") -> \"R\";",
        )
        .policy();
    session.add_policy(&policy).unwrap();
    session.add_requester_key(&bob().public());
    assert_eq!(session.query().unwrap().as_str(), "R");
}

#[test]
fn action_authorizers_lists_requesters() {
    let mut session = Session::new(&["false", "true"]);
    let policy = AssertionBuilder::new()
        .licensee_key(&bob().public())
        .conditions("(_ACTION_AUTHORIZERS ~= \"ed25519-hex:\") -> \"true\";")
        .policy();
    session.add_policy(&policy).unwrap();
    session.add_requester_key(&bob().public());
    assert_eq!(session.query().unwrap().as_str(), "true");
}

#[test]
fn opaque_principals_can_request() {
    // RFC 2704 allows non-cryptographic principals; they cannot sign
    // credentials but can appear as requesters (e.g. IP-address
    // principals vouched for by the transport).
    let mut session = Session::new(&["false", "true"]);
    let policy = "Authorizer: \"POLICY\"\nLicensees: \"gateway-7\"\n";
    session.add_policy(policy).unwrap();
    session.add_requester(Principal::Opaque("gateway-7".into()));
    assert_eq!(session.query().unwrap().as_str(), "true");

    // A different opaque name gets nothing.
    session.clear_requesters();
    session.add_requester(Principal::Opaque("gateway-8".into()));
    assert_eq!(session.query().unwrap().as_str(), "false");
}

#[test]
fn assertion_without_conditions_grants_max() {
    // RFC 2704: a missing Conditions field places no restrictions.
    let mut session = Session::new(&PERMS);
    let policy = format!(
        "Authorizer: \"POLICY\"\nLicensees: \"{}\"\n",
        key_principal(&bob().public())
    );
    session.add_policy(&policy).unwrap();
    session.add_requester_key(&bob().public());
    assert_eq!(session.query().unwrap().as_str(), "RWX");
}

#[test]
fn multiple_policy_assertions_combine_by_max() {
    let mut session = Session::new(&PERMS);
    let p1 = AssertionBuilder::new()
        .licensee_key(&bob().public())
        .conditions("true -> \"R\";")
        .policy();
    let p2 = AssertionBuilder::new()
        .licensee_key(&bob().public())
        .conditions("true -> \"W\";")
        .policy();
    session.add_policy(&p1).unwrap();
    session.add_policy(&p2).unwrap();
    session.add_requester_key(&bob().public());
    // max(R, W) in the linear order is R (index 4 > 2).
    assert_eq!(session.query().unwrap().as_str(), "R");
}

#[test]
fn local_constants_in_signed_credential() {
    let bob_principal = key_principal(&bob().public());
    let credential = AssertionBuilder::new()
        .local_constant("BOB", &bob_principal)
        .licensees_expr("BOB")
        .conditions("(app_domain == \"DisCFS\") -> \"RW\";")
        .sign(&admin());
    let assertion = Assertion::parse(&credential).unwrap();
    assertion.verify().unwrap();
    assert_eq!(
        assertion.licensees().unwrap().principals(),
        vec![&Principal::Key(bob().public())]
    );

    // And the chain works through a session.
    let mut session = Session::new(&PERMS);
    let policy = format!(
        "Authorizer: \"POLICY\"\nLicensees: \"{}\"\n",
        key_principal(&admin().public())
    );
    session.add_policy(&policy).unwrap();
    session.add_credential(&credential).unwrap();
    session.set_attribute("app_domain", "DisCFS");
    session.add_requester_key(&bob().public());
    assert_eq!(session.query().unwrap().as_str(), "RW");
}

#[test]
fn sub_clause_values_cap_at_their_branch() {
    // A nested program's value flows up through the clause that guards
    // it; other clauses still compete by max.
    let mut session = Session::new(&PERMS);
    let policy = AssertionBuilder::new()
        .licensee_key(&bob().public())
        .conditions(
            "(dir == \"shared\") -> { (op == \"read\") -> \"R\"; true -> \"X\"; }; \
             (dir == \"public\") -> \"RX\";",
        )
        .policy();
    session.add_policy(&policy).unwrap();
    session.add_requester_key(&bob().public());

    session.set_attribute("dir", "shared");
    session.set_attribute("op", "read");
    assert_eq!(session.query().unwrap().as_str(), "R");

    session.set_attribute("op", "write");
    assert_eq!(session.query().unwrap().as_str(), "X");

    session.set_attribute("dir", "public");
    assert_eq!(session.query().unwrap().as_str(), "RX");

    session.set_attribute("dir", "private");
    assert_eq!(session.query().unwrap().as_str(), "false");
}

#[test]
fn and_licensees_weakest_branch_governs() {
    // (A && B): the assertion's support is min(support(A), support(B)).
    // B is not a requester, but B has its own credential chain with a
    // weaker grant — the conjunction is capped by it.
    let carol = SigningKey::from_seed(&[3; 32]);
    let mut session = Session::new(&PERMS);
    let policy = format!(
        "Authorizer: \"POLICY\"\nLicensees: \"{}\"\n",
        key_principal(&admin().public())
    );
    session.add_policy(&policy).unwrap();

    // admin → (bob && carol) : RWX
    let conj = AssertionBuilder::new()
        .licensees_expr(&format!(
            "\"{}\" && \"{}\"",
            key_principal(&bob().public()),
            key_principal(&carol.public())
        ))
        .conditions("true -> \"RWX\";")
        .sign(&admin());
    session.add_credential(&conj).unwrap();

    // Only bob signs the request: carol's support is MIN_TRUST, so the
    // conjunction contributes nothing.
    session.add_requester_key(&bob().public());
    assert!(session.query().unwrap().is_min());

    // Both sign: full grant.
    session.add_requester_key(&carol.public());
    assert_eq!(session.query().unwrap().as_str(), "RWX");
}

#[test]
fn comment_does_not_affect_semantics() {
    let c1 = AssertionBuilder::new()
        .comment("for the weekly report")
        .licensee_key(&bob().public())
        .conditions("true -> \"R\";")
        .sign(&admin());
    let a = Assertion::parse(&c1).unwrap();
    assert_eq!(a.comment(), Some("for the weekly report"));

    let mut session = Session::new(&PERMS);
    let policy = format!(
        "Authorizer: \"POLICY\"\nLicensees: \"{}\"\n",
        key_principal(&admin().public())
    );
    session.add_policy(&policy).unwrap();
    session.add_credential(&c1).unwrap();
    session.add_requester_key(&bob().public());
    assert_eq!(session.query().unwrap().as_str(), "R");
}

#[test]
fn keynote_version_field_accepted() {
    let text = "KeyNote-Version: 2\nAuthorizer: \"POLICY\"\nLicensees: \"x\"\n";
    let a = Assertion::parse(text).unwrap();
    assert_eq!(a.version(), Some("2"));
}

#[test]
fn empty_licensees_assertion_grants_nothing() {
    let mut session = Session::new(&PERMS);
    session
        .add_policy("Authorizer: \"POLICY\"\nLicensees:\n")
        .unwrap();
    session.add_requester_key(&bob().public());
    assert!(session.query().unwrap().is_min());
}
