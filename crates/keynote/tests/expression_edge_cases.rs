//! Edge cases of the conditions expression language: operator
//! precedence, numeric corner values, string/number typing rules.

use keynote::{AssertionBuilder, Principal, Session};

/// Evaluates a conditions program against attributes, boolean result.
fn holds(conditions: &str, attrs: &[(&str, &str)]) -> bool {
    let policy = AssertionBuilder::new()
        .licensee("tester")
        .conditions(conditions)
        .policy();
    let mut session = Session::new(&["false", "true"]);
    session.add_policy(&policy).unwrap();
    for (k, v) in attrs {
        session.set_attribute(k, v);
    }
    session.add_requester(Principal::Opaque("tester".into()));
    session.query().unwrap().as_str() == "true"
}

#[test]
fn precedence_and_binds_tighter_than_or() {
    // a || b && c  ≡  a || (b && c)
    assert!(holds(
        "x == \"1\" || x == \"2\" && x == \"3\"",
        &[("x", "1")]
    ));
    assert!(!holds(
        "x == \"9\" || x == \"2\" && x == \"3\"",
        &[("x", "2")]
    ));
}

#[test]
fn arithmetic_precedence() {
    assert!(holds("2 + 3 * 4 == 14", &[]));
    assert!(holds("(2 + 3) * 4 == 20", &[]));
    assert!(holds("2 ^ 3 ^ 2 == 512", &[])); // right-associative: 2^(3^2)
    assert!(holds("10 - 4 - 3 == 3", &[])); // left-associative
    assert!(holds("-2 + 5 == 3", &[]));
}

#[test]
fn float_and_integer_mixing() {
    assert!(holds("1.5 * 2 == 3", &[]));
    assert!(holds("7 / 2 == 3.5", &[]));
    assert!(holds("0.1 + 0.2 < 0.31", &[]));
}

#[test]
fn division_and_modulo_by_zero_fail_closed() {
    assert!(!holds("1 / 0 == 0", &[]));
    assert!(!holds("1 % 0 == 0", &[]));
    // And do not poison sibling clauses combined with ||.
    assert!(holds("(1 / 0 == 0) || true", &[]));
}

#[test]
fn string_vs_numeric_comparison_rules() {
    // Two attributes: string comparison (lexicographic).
    assert!(holds("a < b", &[("a", "10"), ("b", "9")]));
    // One numeric literal forces numeric comparison.
    assert!(holds("a > 9", &[("a", "10")]));
    // Arithmetic forces numeric even with attributes on both sides.
    assert!(holds("a + 0 > b - 0", &[("a", "10"), ("b", "9")]));
}

#[test]
fn comparison_chains_of_same_attribute() {
    assert!(holds("n >= 5 && n <= 10", &[("n", "7")]));
    assert!(!holds("n >= 5 && n <= 10", &[("n", "11")]));
}

#[test]
fn string_concat_in_comparisons() {
    assert!(holds(
        "(prefix . \"/\" . name) == \"data/file\"",
        &[("prefix", "data"), ("name", "file")]
    ));
    // Concat binds looser than arithmetic: "1" . 2+3 is "1" . 5 = "15".
    assert!(holds("(\"1\" . 2 + 3) == \"15\"", &[]));
}

#[test]
fn not_operator_and_double_negation() {
    assert!(holds("!(x == \"1\")", &[("x", "2")]));
    assert!(holds("!!(x == \"1\")", &[("x", "1")]));
}

#[test]
fn missing_attribute_comparisons() {
    // Missing attributes read as "" — equality with "" holds, numeric
    // coercion of "" fails closed.
    assert!(holds("ghost == \"\"", &[]));
    assert!(!holds("ghost > 0", &[]));
    assert!(!holds("ghost < 0", &[]));
}

#[test]
fn regex_alternation_and_classes_in_conditions() {
    assert!(holds(
        "file ~= \"\\\\.(c|h)$\"",
        &[("file", "kern/sched.c")]
    ));
    assert!(!holds("file ~= \"\\\\.(c|h)$\"", &[("file", "README.md")]));
    assert!(holds("id ~= \"^[a-f0-9]+$\"", &[("id", "deadbeef42")]));
}

#[test]
fn large_numbers_and_negatives() {
    assert!(holds("n == 4294967296", &[("n", "4294967296")]));
    assert!(holds("t - 100 < 0", &[("t", "50")]));
    assert!(holds("-5 < -4", &[]));
}

#[test]
fn indirection_chain() {
    assert!(holds(
        "$($which) == \"target-value\"",
        &[
            ("which", "pointer"),
            ("pointer", "final"),
            ("final", "target-value")
        ]
    ));
}

#[test]
fn whitespace_and_newlines_in_conditions() {
    assert!(holds("  x   ==\t\"1\"  ", &[("x", "1")]));
}

#[test]
fn empty_string_literals() {
    assert!(holds("\"\" == \"\"", &[]));
    assert!(holds("(\"\" . \"a\") == \"a\"", &[]));
}
