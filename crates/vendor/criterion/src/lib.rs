//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the macro and builder surface the workspace's benches
//! use, with a deliberately simple measurement loop: a short warm-up,
//! then a fixed number of timed iterations, reporting mean time per
//! iteration (and throughput when configured) as plain text. No
//! statistics, plotting or disk output — good enough to compare
//! backends and catch order-of-magnitude regressions offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    samples: u64,
    /// Mean elapsed wall time per iteration of the last `iter` call.
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        std_black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std_black_box(routine());
        }
        self.elapsed_per_iter = start.elapsed() / (self.samples as u32);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the iterations per measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the target measurement time (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut bencher);
        self.criterion.report(
            &self.name,
            &id.label,
            bencher.elapsed_per_iter,
            self.throughput,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.criterion.report(
            &self.name,
            &id.label,
            bencher.elapsed_per_iter,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 50,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: 50,
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(name, "", bencher.elapsed_per_iter, None);
        self
    }

    fn report(&self, group: &str, label: &str, per_iter: Duration, throughput: Option<Throughput>) {
        let name = if label.is_empty() {
            group.to_string()
        } else {
            format!("{group}/{label}")
        };
        let rate = match throughput {
            Some(Throughput::Bytes(bytes)) if !per_iter.is_zero() => {
                let mbps = bytes as f64 / per_iter.as_secs_f64() / 1e6;
                format!("  ({mbps:.1} MB/s)")
            }
            Some(Throughput::Elements(n)) if !per_iter.is_zero() => {
                let eps = n as f64 / per_iter.as_secs_f64();
                format!("  ({eps:.0} elem/s)")
            }
            _ => String::new(),
        };
        println!("bench {name:<40} {per_iter:>12.3?}/iter{rate}");
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
