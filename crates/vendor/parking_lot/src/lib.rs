//! Offline, API-compatible subset of `parking_lot` backed by
//! `std::sync` primitives.
//!
//! Matches the parking_lot calling convention the workspace relies on:
//! `lock()`, `read()` and `write()` return guards directly (no
//! `Result`). Poisoning is transparently recovered — parking_lot locks
//! are not poisoned by panics, and the simulation code assumes that.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (non-poisoning facade over std).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader-writer lock (non-poisoning facade over std).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}
