//! Offline, API-compatible subset of `crossbeam` backed by
//! `std::sync::mpsc`.
//!
//! Only the `channel` module surface used by `netsim` is provided:
//! unbounded channels with blocking, non-blocking-with-timeout receive
//! and disconnect detection.

#![forbid(unsafe_code)]

/// Multi-producer channels (subset of `crossbeam-channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message available.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    ///
    /// `crossbeam` receivers are `Sync` (shared receive from multiple
    /// threads); `std::sync::mpsc::Receiver` is not, so the inner
    /// receiver sits behind a mutex. Contention is per-endpoint and
    /// receive-side only.
    pub struct Receiver<T> {
        inner: Mutex<mpsc::Receiver<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            self.lock().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.inner.lock().expect("receiver poisoned")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Mutex::new(rx),
            },
        )
    }
}
