//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A `Vec<T>` of `size.start..size.end` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_range(self.size.start, self.size.end);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
