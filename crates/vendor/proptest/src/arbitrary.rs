//! [`Arbitrary`] — default strategies per type — and [`any`].

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mild edge bias toward boundary values.
                if rng.below(16) == 0 {
                    return match rng.below(4) {
                        0 => 0 as $t,
                        1 => 1 as $t,
                        2 => <$t>::MAX,
                        _ => <$t>::MIN,
                    };
                }
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        crate::string::any_char(rng)
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in out.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}
