//! The [`Strategy`] trait and its combinators.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategy arms (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedArm<T>>,
}

/// A type-erased strategy arm.
pub type BoxedArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Boxes a strategy into a [`Union`] arm.
pub fn boxed_arm<S: Strategy + 'static>(strategy: S) -> BoxedArm<S::Value> {
    Box::new(move |rng| strategy.generate(rng))
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedArm<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.usize_range(0, self.arms.len());
        (self.arms[pick])(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Mild edge bias: boundary values surface off-by-ones
                // that uniform sampling rarely hits.
                if rng.below(16) == 0 {
                    return if rng.below(2) == 0 {
                        self.start
                    } else {
                        self.end - 1
                    };
                }
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// String strategies: a `&str` is interpreted as a regex subset and
/// generates matching strings (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
