//! The case runner and its deterministic random source.

use std::fmt;

/// Per-test configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with `message`.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError { message }
    }

    /// Attaches the generated inputs to the failure report.
    pub fn with_inputs(mut self, inputs: &[String]) -> TestCaseError {
        self.message = format!("{}\n  inputs: [{}]", self.message, inputs.join(", "));
        self
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// A small, fast, deterministic random source (SplitMix64 core).
///
/// Not cryptographic — it only drives test-case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs a property over `cases` deterministic random cases.
pub struct TestRunner {
    config: Config,
    name: &'static str,
}

impl TestRunner {
    /// Creates a runner for the property named `name`.
    pub fn new(config: Config, name: &'static str) -> TestRunner {
        TestRunner { config, name }
    }

    /// Runs `case` once per configured case, panicking with the case
    /// number and inputs on the first failure.
    ///
    /// # Panics
    ///
    /// Panics when any case returns an error (how `#[test]` learns of
    /// the failure).
    pub fn run<F>(&self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(self.name);
        for i in 0..self.config.cases {
            let mut rng = TestRng::from_seed(
                base.wrapping_add((i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)),
            );
            if let Err(e) = case(&mut rng) {
                panic!(
                    "proptest property '{}' failed at case {}/{}: {}",
                    self.name, i, self.config.cases, e
                );
            }
        }
    }
}
