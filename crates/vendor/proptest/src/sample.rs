//! Sampling helpers (`prop::sample::Index`).

/// A length-agnostic index: generated once, projected onto any
/// collection length with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Builds an index from raw random bits.
    pub fn from_raw(raw: u64) -> Index {
        Index { raw }
    }

    /// Projects onto `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics when `len` is zero, matching the real crate.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.raw % len as u64) as usize
    }
}
