//! String generation from a regex subset.
//!
//! The real proptest interprets `&str` strategies as regexes. This stub
//! supports the subset the workspace tests use: literal characters,
//! `.`, `\PC`, escaped literals (`\.`), character classes with ranges
//! and negation (`[a-z]`, `[^/\u{0}]`), and the quantifiers `{m}`,
//! `{m,n}`, `*`, `+`, `?` — all applied to single atoms and
//! concatenated.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any char except newline.
    Any,
    /// `\PC` — any non-control char.
    NotControl,
    /// A literal character.
    Literal(char),
    /// `[...]` — ranges plus negation flag.
    Class {
        ranges: Vec<(char, char)>,
        negated: bool,
    },
}

#[derive(Debug, Clone)]
struct Quantified {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Chars `.`/negated-class generation draws from: printable ASCII with
/// a sprinkling of multi-byte and whitespace characters so UTF-8
/// handling gets exercised.
const EXOTIC: [char; 10] = ['é', 'ß', 'λ', '→', '日', '本', '\u{7f}', '\t', '«', '🌀'];

/// Samples an arbitrary generatable char (used by `any::<char>()`).
pub fn any_char(rng: &mut TestRng) -> char {
    pool_char(rng)
}

fn pool_char(rng: &mut TestRng) -> char {
    if rng.below(8) == 0 {
        EXOTIC[rng.usize_range(0, EXOTIC.len())]
    } else {
        char::from_u32(rng.usize_range(0x20, 0x7f) as u32).expect("printable ascii")
    }
}

fn class_matches(ranges: &[(char, char)], negated: bool, c: char) -> bool {
    let inside = ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
    inside != negated
}

fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Any => loop {
            let c = pool_char(rng);
            if c != '\n' {
                return c;
            }
        },
        Atom::NotControl => loop {
            let c = pool_char(rng);
            if !c.is_control() {
                return c;
            }
        },
        Atom::Class { ranges, negated } => {
            if !negated {
                // Pick a range, then a char inside it.
                let (lo, hi) = ranges[rng.usize_range(0, ranges.len())];
                let span = hi as u32 - lo as u32 + 1;
                for _ in 0..64 {
                    let v = lo as u32 + rng.below(span as u64) as u32;
                    if let Some(c) = char::from_u32(v) {
                        return c;
                    }
                }
                lo
            } else {
                // Rejection-sample the general pool.
                for _ in 0..256 {
                    let c = pool_char(rng);
                    if class_matches(ranges, true, c) {
                        return c;
                    }
                }
                panic!("negated class excludes the whole generator pool");
            }
        }
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn bail(&self, what: &str) -> ! {
        panic!(
            "unsupported regex construct ({what}) in strategy pattern {:?} — \
             the vendored proptest stub supports literals, '.', '\\PC', \
             classes and {{m,n}} quantifiers",
            self.pattern
        );
    }

    fn escape(&mut self) -> char {
        match self.chars.next() {
            Some('u') => {
                if self.chars.next() != Some('{') {
                    self.bail("\\u without {…}");
                }
                let mut hex = String::new();
                for c in self.chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    hex.push(c);
                }
                let v = u32::from_str_radix(&hex, 16).unwrap_or_else(|_| self.bail("bad \\u{…}"));
                char::from_u32(v).unwrap_or_else(|| self.bail("bad \\u{…} scalar"))
            }
            Some('n') => '\n',
            Some('r') => '\r',
            Some('t') => '\t',
            Some('0') => '\0',
            Some(c) if !c.is_alphanumeric() => c,
            Some(c) => {
                if c == 'P' || c == 'p' {
                    self.bail("\\P inside class")
                }
                c
            }
            None => self.bail("trailing backslash"),
        }
    }

    fn class(&mut self) -> Atom {
        let negated = self.chars.peek() == Some(&'^');
        if negated {
            self.chars.next();
        }
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = match self.chars.next() {
                Some(']') => break,
                Some('\\') => self.escape(),
                Some(c) => c,
                None => self.bail("unterminated class"),
            };
            if c == '-' && pending.is_some() && self.chars.peek() != Some(&']') {
                let lo = pending.take().expect("pending start of range");
                let hi = match self.chars.next() {
                    Some('\\') => self.escape(),
                    Some(c) => c,
                    None => self.bail("unterminated range"),
                };
                ranges.push((lo, hi));
            } else {
                if let Some(p) = pending.replace(c) {
                    ranges.push((p, p));
                }
            }
        }
        if let Some(p) = pending {
            ranges.push((p, p));
        }
        if ranges.is_empty() {
            self.bail("empty class");
        }
        Atom::Class { ranges, negated }
    }

    fn quantifier(&mut self) -> (usize, usize) {
        match self.chars.peek() {
            Some('{') => {
                self.chars.next();
                let mut body = String::new();
                for c in self.chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                match body.split_once(',') {
                    Some((m, n)) => {
                        let min = m.trim().parse().unwrap_or_else(|_| self.bail("bad {m,n}"));
                        let max = n.trim().parse().unwrap_or_else(|_| self.bail("bad {m,n}"));
                        (min, max)
                    }
                    None => {
                        let exact = body.trim().parse().unwrap_or_else(|_| self.bail("bad {m}"));
                        (exact, exact)
                    }
                }
            }
            Some('*') => {
                self.chars.next();
                (0, 8)
            }
            Some('+') => {
                self.chars.next();
                (1, 8)
            }
            Some('?') => {
                self.chars.next();
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    fn parse(mut self) -> Vec<Quantified> {
        let mut out = Vec::new();
        while let Some(c) = self.chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '[' => self.class(),
                '\\' => match self.chars.peek() {
                    Some('P') => {
                        self.chars.next();
                        match self.chars.next() {
                            Some('C') => Atom::NotControl,
                            _ => self.bail("\\P other than \\PC"),
                        }
                    }
                    _ => Atom::Literal(self.escape()),
                },
                '(' | ')' | '|' | '^' | '$' => self.bail("grouping/anchors"),
                c => Atom::Literal(c),
            };
            let (min, max) = self.quantifier();
            out.push(Quantified { atom, min, max });
        }
        out
    }
}

/// Generates a string matching `pattern` (regex subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let parts = Parser {
        chars: pattern.chars().peekable(),
        pattern,
    }
    .parse();
    let mut out = String::new();
    for part in &parts {
        let count = if part.min == part.max {
            part.min
        } else {
            rng.usize_range(part.min, part.max + 1)
        };
        for _ in 0..count {
            out.push(gen_char(&part.atom, rng));
        }
    }
    out
}
