//! Offline, API-compatible subset of `proptest`.
//!
//! The container building this workspace cannot reach crates.io, so
//! this vendored stub implements the parts of proptest the test suite
//! uses: the [`proptest!`]/[`prop_oneof!`]/`prop_assert*` macros, the
//! [`strategy::Strategy`] trait with `prop_map`, range / tuple / array
//! / collection strategies, [`arbitrary::any`], a regex-subset string
//! strategy, and [`sample::Index`].
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (reproducible across runs) and failing
//! cases are **not shrunk** — the panic message reports the failing
//! values via their `Debug` form instead.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias of the crate root, so `prop::sample::Index` etc. resolve.
    pub use crate as prop;
}

pub use test_runner::Config as ProptestConfig;

/// Defines property tests.
///
/// Supports the standard form: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions
/// whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!{ $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __runner = $crate::test_runner::TestRunner::new(__config, stringify!($name));
                __runner.run(|__proptest_rng| {
                    let mut __inputs: Vec<String> = Vec::new();
                    $(
                        let __gen = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
                        __inputs.push(format!("{:?}", __gen));
                        let $pat = __gen;
                    )+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __result.map_err(|e| e.with_inputs(&__inputs))
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the case with a
/// formatted message instead of panicking the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

/// Picks uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_arm($strat)),+
        ])
    };
}
