//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Provides [`Bytes`] as a cheaply-clonable immutable byte handle,
//! [`BytesMut`] as a growable byte buffer, plus the [`Buf`] /
//! [`BufMut`] trait methods the XDR codec uses. All integers are
//! big-endian, as in the real crate.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// A cheaply-clonable handle to an immutable byte buffer.
///
/// Like the real crate's `Bytes`: cloning bumps a reference count
/// instead of copying the payload, so passing block-sized buffers
/// around is pointer-cheap. Backed by `Arc<[u8]>` (no unsafe, no
/// sub-slicing views — the workspace hands whole blocks around).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty handle.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh, mutable `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Borrows the contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.data.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        *self.data == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        *self.data == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.data == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == *other.data
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == *other.data
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

/// Read access to a contiguous byte cursor.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `n`.
    fn advance(&mut self, n: usize);
    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads a big-endian `u32`, advancing the cursor.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `i32`, advancing the cursor.
    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    /// Reads a big-endian `u64`, advancing the cursor.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `i64`, advancing the cursor.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Reads a single byte, advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable, contiguous byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Borrows the contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Converts into an immutable, cheaply-clonable [`Bytes`] handle.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}
