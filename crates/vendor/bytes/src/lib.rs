//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Provides [`Bytes`] as a cheaply-clonable immutable byte handle,
//! [`BytesMut`] as a growable byte buffer, plus the [`Buf`] /
//! [`BufMut`] trait methods the XDR codec uses. All integers are
//! big-endian, as in the real crate.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// A cheaply-clonable handle to an immutable byte buffer.
///
/// Like the real crate's `Bytes`: cloning bumps a reference count
/// instead of copying the payload, and [`Bytes::slice`] returns a
/// zero-copy sub-view sharing the same allocation (the remote block
/// protocol slices one response frame into per-block handles). Backed
/// by `Arc<[u8]>` plus view bounds — no unsafe.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty handle.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    fn from_arc(data: Arc<[u8]>) -> Bytes {
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_arc(data.into())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the contents into a fresh, mutable `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Borrows the contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A zero-copy sub-view of this handle: the returned `Bytes`
    /// shares the same allocation, narrowed to `range` (relative to
    /// this view).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range inverted: {begin} > {end}");
        assert!(end <= len, "slice end {end} out of bounds (len {len})");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_arc(v.into())
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from_arc(v.into())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.as_slice() == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == *other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == *other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Read access to a contiguous byte cursor.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `n`.
    fn advance(&mut self, n: usize);
    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads a big-endian `u32`, advancing the cursor.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `i32`, advancing the cursor.
    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    /// Reads a big-endian `u64`, advancing the cursor.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `i64`, advancing the cursor.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Reads a single byte, advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable, contiguous byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Borrows the contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Converts into an immutable, cheaply-clonable [`Bytes`] handle.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_a_zero_copy_view() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5, 6]);
        let mid = b.slice(1..5);
        assert_eq!(mid, [2u8, 3, 4, 5][..]);
        let inner = mid.slice(1..=2);
        assert_eq!(inner, [3u8, 4][..]);
        assert_eq!(mid.slice(..), mid);
        assert_eq!(b.slice(6..).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8, 2]).slice(..3);
    }
}
