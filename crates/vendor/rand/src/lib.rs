//! Offline, API-compatible subset of the `rand` crate.
//!
//! The container building this workspace has no access to crates.io, so
//! this vendored stub provides exactly the trait surface the workspace
//! consumes: [`RngCore`], the [`CryptoRng`] marker, and [`Error`]. All
//! actual random streams in the workspace come from `discfs_crypto`'s
//! deterministic ChaCha20 generator, which implements these traits.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type reported by fallible RNG operations.
///
/// The deterministic generators in this workspace never fail, so this
/// exists purely to satisfy the `try_fill_bytes` signature.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Error {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core trait every random number generator implements.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest`, reporting failure instead of panicking.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Marker trait for cryptographically secure generators.
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// A process-local generator seeded from ambient entropy.
///
/// SplitMix64 over a seed mixed from the clock, the PID and ASLR —
/// adequate for the tests that use it, NOT cryptographically secure.
/// Deterministic flows should use `discfs_crypto::rng::DetRng`.
pub struct ThreadRng {
    state: u64,
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl CryptoRng for ThreadRng {}

/// Utility generators (subset of `rand::rngs`).
pub mod rngs {
    /// Mock generators for tests.
    pub mod mock {
        use crate::RngCore;

        /// A generator returning an arithmetic progression — useful
        /// for deterministic tests.
        pub struct StepRng {
            value: u64,
            step: u64,
        }

        impl StepRng {
            /// Starts at `initial`, adding `step` per call.
            pub fn new(initial: u64, step: u64) -> StepRng {
                StepRng {
                    value: initial,
                    step,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let v = self.value;
                self.value = self.value.wrapping_add(self.step);
                v
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let bytes = self.next_u64().to_le_bytes();
                    chunk.copy_from_slice(&bytes[..chunk.len()]);
                }
            }
        }
    }
}

/// Returns a generator seeded from ambient process entropy.
pub fn thread_rng() -> ThreadRng {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let stack_probe = &now as *const _ as u64;
    ThreadRng {
        state: now ^ (std::process::id() as u64).rotate_left(32) ^ stack_probe,
    }
}
