//! An in-process replica of the paper's experimental setup (Figure 6):
//! "Alice" the server host and any number of "Bob" clients, connected
//! by simulated 100 Mbps Ethernet.
//!
//! Examples, integration tests and the benchmark harness all build
//! their worlds through this module so the topology stays consistent.
//!
//! Since the engine migration the server side is **not**
//! thread-per-connection: every accepted endpoint — including its IKE
//! responder handshake — is multiplexed onto one [`nfsv2::Engine`]
//! with a fixed worker pool. A testbed serving 10 000 clients still
//! runs `workers + 1` server threads.

use std::sync::Arc;

use discfs_crypto::ed25519::{SigningKey, VerifyingKey};
use discfs_crypto::rng::DetRng;
use ffs::{BlockStore, Ffs, FsConfig, StoreBackend};
use ipsec::ike::SecureChannel;
use netsim::{Endpoint, Link, LinkConfig, SimClock};
use nfsv2::{Engine, EngineConfig};

use crate::client::{DiscfsClient, DiscfsClientError};
use crate::server::{DiscfsConfig, DiscfsService};

/// A running DisCFS server plus the network it lives on.
pub struct Testbed {
    clock: SimClock,
    fs_config: FsConfig,
    link_config: LinkConfig,
    cache_size: usize,
    backend: StoreBackend,
    /// A caller-constructed store mounted via [`Testbed::with_store`];
    /// [`Testbed::reboot`] remounts it instead of rebuilding from the
    /// `backend` spec.
    prebuilt: Option<Arc<dyn BlockStore>>,
    service: Arc<DiscfsService>,
    server_public: VerifyingKey,
    admin: SigningKey,
    connection_counter: std::sync::atomic::AtomicU64,
    /// The event-driven request engine serving every connection.
    engine: Engine,
}

impl Testbed {
    /// Builds a testbed with the paper's network/disk models.
    pub fn new() -> Testbed {
        Testbed::with_config(FsConfig::standard(), LinkConfig::ethernet_100mbps(), 128)
    }

    /// Builds a zero-latency testbed (fast unit tests).
    pub fn instant() -> Testbed {
        Testbed::with_config(FsConfig::small(), LinkConfig::instant(), 128)
    }

    /// Full control over geometry, link model and cache size, on the
    /// paper's timing-model disk.
    pub fn with_config(fs_config: FsConfig, link_config: LinkConfig, cache_size: usize) -> Testbed {
        Testbed::with_backend(fs_config, link_config, cache_size, &StoreBackend::SimTimed)
    }

    /// Full control including the storage backend the server's volume
    /// lives on (see [`StoreBackend`] for the options).
    ///
    /// On a persistent backend whose directory already holds a
    /// formatted volume, the testbed **mounts** it instead of
    /// reformatting — files, directories, and dedup state from a
    /// previous testbed come back intact, and credentials issued
    /// against the old instance keep working (the admin key is
    /// deterministic). See [`Testbed::reboot`] for the full cycle.
    ///
    /// # Panics
    ///
    /// Panics when the backend holds a damaged volume (superblock
    /// present but unusable) — data is never silently destroyed.
    pub fn with_backend(
        fs_config: FsConfig,
        link_config: LinkConfig,
        cache_size: usize,
        backend: &StoreBackend,
    ) -> Testbed {
        Testbed::with_engine_config(
            fs_config,
            link_config,
            cache_size,
            backend,
            EngineConfig::default(),
        )
    }

    /// As [`Testbed::with_backend`], with explicit engine sizing
    /// (worker count, per-connection queue bound, batch quantum).
    pub fn with_engine_config(
        fs_config: FsConfig,
        link_config: LinkConfig,
        cache_size: usize,
        backend: &StoreBackend,
        engine_config: EngineConfig,
    ) -> Testbed {
        let clock = SimClock::new();
        let fs = Arc::new(
            Ffs::open_or_format_backend(backend, &clock, fs_config)
                .expect("mount or format the server volume"),
        );
        Testbed::assemble(
            clock,
            fs,
            fs_config,
            link_config,
            cache_size,
            backend.clone(),
            None,
            engine_config,
        )
    }

    /// Builds a testbed on a **prebuilt** block store that shares
    /// `clock` — for chaos tests that assemble the storage fleet by
    /// hand (fault plans, tuned [`ffs::RemoteOptions`], rebuild
    /// budgets) before mounting DisCFS on it. A store already holding
    /// a formatted volume is mounted, not reformatted, and
    /// [`Testbed::reboot`] remounts the **same** store instead of
    /// rebuilding from a [`StoreBackend`] spec.
    ///
    /// # Panics
    ///
    /// Panics when the store holds a damaged volume (superblock
    /// present but unusable) — data is never silently destroyed.
    pub fn with_store(
        fs_config: FsConfig,
        link_config: LinkConfig,
        cache_size: usize,
        clock: &SimClock,
        store: Arc<dyn BlockStore>,
    ) -> Testbed {
        let fs = Arc::new(
            Ffs::open_or_format(Arc::clone(&store), fs_config)
                .expect("mount or format the server volume"),
        );
        Testbed::assemble(
            clock.clone(),
            fs,
            fs_config,
            link_config,
            cache_size,
            StoreBackend::SimInstant,
            Some(store),
            EngineConfig::default(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        clock: SimClock,
        fs: Arc<Ffs>,
        fs_config: FsConfig,
        link_config: LinkConfig,
        cache_size: usize,
        backend: StoreBackend,
        prebuilt: Option<Arc<dyn BlockStore>>,
        engine_config: EngineConfig,
    ) -> Testbed {
        let admin = SigningKey::from_seed(&[0xAD; 32]);
        let server_key = SigningKey::from_seed(&SERVER_KEY_SEED);
        let server_public = server_key.public();
        let mut config = DiscfsConfig::standard(admin.public(), server_key.clone());
        config.cache_size = cache_size;
        let service = Arc::new(DiscfsService::new(fs, config));
        // Charge policy decisions to the virtual clock: a cache hit is a
        // hash lookup (~2 µs on the paper's 450 MHz PIII); a miss runs a
        // signature-verified KeyNote query (~200 µs).
        service.set_policy_charge(crate::server::PolicyCharge {
            clock: clock.clone(),
            cache_hit: std::time::Duration::from_micros(2),
            cache_miss: std::time::Duration::from_micros(200),
        });
        let engine = Engine::start(service.clone(), server_key, engine_config);
        Testbed {
            clock,
            fs_config,
            link_config,
            cache_size,
            backend,
            prebuilt,
            service,
            server_public,
            admin,
            connection_counter: std::sync::atomic::AtomicU64::new(1),
            engine,
        }
    }

    /// Syncs the server volume: durable bitmaps + clean superblock,
    /// then a backend flush (see `ffs::Ffs::sync`). Call before
    /// dropping a testbed whose volume should reopen cleanly.
    ///
    /// # Errors
    ///
    /// I/O failure of the backing store.
    pub fn sync(&self) -> std::io::Result<()> {
        self.fs().sync()
    }

    /// Simulates a server reboot: quiesces the engine, syncs the
    /// volume, tears this testbed down, and builds a fresh one on the
    /// same backend configuration.
    ///
    /// On a persistent backend ([`StoreBackend::is_persistent`]) the
    /// new instance mounts the old volume — every file, directory and
    /// credential-protected handle survives. On an in-memory backend
    /// the reboot necessarily formats from scratch (there is nothing
    /// durable to come back to).
    ///
    /// The engine shutdown **joins** every server thread after
    /// draining all queued requests, so no thread still holds the old
    /// store — and no acknowledged write is in flight — when the sync
    /// runs and the volume reopens. Clients of the old instance simply
    /// observe a dead connection.
    pub fn reboot(self) -> Testbed {
        // Quiesce FIRST: the engine threads own a clone of the service
        // (and through it the store); a straggler finishing an
        // acknowledged write after the sync would leave that write
        // uncovered by it.
        self.engine.shutdown();
        self.sync().expect("sync volume before reboot");
        let Testbed {
            clock,
            fs_config,
            link_config,
            cache_size,
            backend,
            prebuilt,
            service,
            engine,
            ..
        } = self;
        drop(engine);
        drop(service);
        match prebuilt {
            Some(store) => Testbed::with_store(fs_config, link_config, cache_size, &clock, store),
            None => Testbed::with_backend(fs_config, link_config, cache_size, &backend),
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The server's backing volume (block-store stats, fsck).
    pub fn fs(&self) -> &Arc<Ffs> {
        self.service.storage().fs()
    }

    /// Counters of the volume's storage backend — e.g. the dedup hit
    /// ratio when the testbed runs on [`StoreBackend::Dedup`].
    pub fn store_stats(&self) -> ffs::StoreStats {
        self.fs().disk().stats()
    }

    /// The server service (policy cache stats, audit log, env control).
    pub fn service(&self) -> &Arc<DiscfsService> {
        &self.service
    }

    /// The request engine (stats, per-connection queue high-water).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The administrator signing key (root of the trust graph).
    pub fn admin(&self) -> &SigningKey {
        &self.admin
    }

    /// The server's public identity (what clients pin).
    pub fn server_public(&self) -> VerifyingKey {
        self.server_public
    }

    /// Connects a new client with `identity`, running IKE and mounting
    /// the root export. The server side joins the shared engine — no
    /// thread is spawned per connection.
    ///
    /// # Errors
    ///
    /// Handshake or mount failures.
    pub fn connect(&self, identity: &SigningKey) -> Result<DiscfsClient, DiscfsClientError> {
        let (client_end, conn_id, _token) = self.accept_endpoint();
        let mut rng = DetRng::new(0xC11E_0000 + conn_id);
        DiscfsClient::attach(
            client_end,
            identity,
            Some(&self.server_public),
            "/",
            &mut rng,
        )
    }

    /// Connects like [`Testbed::connect`] but also returns the engine
    /// token of the server-side connection, for tests that inspect
    /// per-connection engine state (queue high-water, liveness).
    ///
    /// # Errors
    ///
    /// Handshake or mount failures.
    pub fn connect_tracked(
        &self,
        identity: &SigningKey,
    ) -> Result<(DiscfsClient, u64), DiscfsClientError> {
        let (client_end, conn_id, token) = self.accept_endpoint();
        let mut rng = DetRng::new(0xC11E_0000 + conn_id);
        let client = DiscfsClient::attach(
            client_end,
            identity,
            Some(&self.server_public),
            "/",
            &mut rng,
        )?;
        Ok((client, token))
    }

    /// Runs IKE as `identity` and returns the **raw** secure channel
    /// plus the engine token, without mounting anything — for tests
    /// that speak the wire protocol directly (e.g. sending malformed
    /// frames).
    ///
    /// # Errors
    ///
    /// Handshake failures.
    pub fn connect_raw(
        &self,
        identity: &SigningKey,
    ) -> Result<(SecureChannel<Endpoint>, u64), ipsec::IpsecError> {
        let (client_end, conn_id, token) = self.accept_endpoint();
        let mut rng = DetRng::new(0xC11E_0000 + conn_id);
        let chan = ipsec::ike::initiate(client_end, identity, Some(&self.server_public), &mut rng)?;
        Ok((chan, token))
    }

    fn accept_endpoint(&self) -> (Endpoint, u64, u64) {
        let conn_id = self
            .connection_counter
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let (client_end, server_end) = Link::pair(&self.clock, self.link_config);
        let token = self.engine.accept(server_end);
        (client_end, conn_id, token)
    }
}

/// Deterministic server key seed (identity survives reboots).
const SERVER_KEY_SEED: [u8; 32] = [0x5E; 32];

impl Default for Testbed {
    fn default() -> Self {
        Testbed::new()
    }
}
