//! An in-process replica of the paper's experimental setup (Figure 6):
//! "Alice" the server host and any number of "Bob" clients, connected
//! by simulated 100 Mbps Ethernet.
//!
//! Examples, integration tests and the benchmark harness all build
//! their worlds through this module so the topology stays consistent.

use std::sync::Arc;

use discfs_crypto::ed25519::{SigningKey, VerifyingKey};
use discfs_crypto::rng::DetRng;
use ffs::{Ffs, FsConfig, StoreBackend};
use netsim::{Link, LinkConfig, SimClock};

use crate::client::{DiscfsClient, DiscfsClientError};
use crate::server::{DiscfsConfig, DiscfsService};

/// A running DisCFS server plus the network it lives on.
pub struct Testbed {
    clock: SimClock,
    fs_config: FsConfig,
    link_config: LinkConfig,
    cache_size: usize,
    backend: StoreBackend,
    service: Arc<DiscfsService>,
    server_key_seed: [u8; 32],
    server_public: VerifyingKey,
    admin: SigningKey,
    connection_counter: std::sync::atomic::AtomicU64,
    /// Per-connection server threads; joined by [`Testbed::reboot`] so
    /// no thread still holds the old store when the volume reopens.
    connections: std::sync::Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Testbed {
    /// Builds a testbed with the paper's network/disk models.
    pub fn new() -> Testbed {
        Testbed::with_config(FsConfig::standard(), LinkConfig::ethernet_100mbps(), 128)
    }

    /// Builds a zero-latency testbed (fast unit tests).
    pub fn instant() -> Testbed {
        Testbed::with_config(FsConfig::small(), LinkConfig::instant(), 128)
    }

    /// Full control over geometry, link model and cache size, on the
    /// paper's timing-model disk.
    pub fn with_config(fs_config: FsConfig, link_config: LinkConfig, cache_size: usize) -> Testbed {
        Testbed::with_backend(fs_config, link_config, cache_size, &StoreBackend::SimTimed)
    }

    /// Full control including the storage backend the server's volume
    /// lives on (see [`StoreBackend`] for the options).
    ///
    /// On a persistent backend whose directory already holds a
    /// formatted volume, the testbed **mounts** it instead of
    /// reformatting — files, directories, and dedup state from a
    /// previous testbed come back intact, and credentials issued
    /// against the old instance keep working (the admin key is
    /// deterministic). See [`Testbed::reboot`] for the full cycle.
    ///
    /// # Panics
    ///
    /// Panics when the backend holds a damaged volume (superblock
    /// present but unusable) — data is never silently destroyed.
    pub fn with_backend(
        fs_config: FsConfig,
        link_config: LinkConfig,
        cache_size: usize,
        backend: &StoreBackend,
    ) -> Testbed {
        let clock = SimClock::new();
        let fs = Arc::new(
            Ffs::open_or_format_backend(backend, &clock, fs_config)
                .expect("mount or format the server volume"),
        );
        let admin = SigningKey::from_seed(&[0xAD; 32]);
        let server_key_seed = [0x5E; 32];
        let server_key = SigningKey::from_seed(&server_key_seed);
        let server_public = server_key.public();
        let mut config = DiscfsConfig::standard(admin.public(), server_key);
        config.cache_size = cache_size;
        let service = Arc::new(DiscfsService::new(fs, config));
        // Charge policy decisions to the virtual clock: a cache hit is a
        // hash lookup (~2 µs on the paper's 450 MHz PIII); a miss runs a
        // signature-verified KeyNote query (~200 µs).
        service.set_policy_charge(crate::server::PolicyCharge {
            clock: clock.clone(),
            cache_hit: std::time::Duration::from_micros(2),
            cache_miss: std::time::Duration::from_micros(200),
        });
        Testbed {
            clock,
            fs_config,
            link_config,
            cache_size,
            backend: backend.clone(),
            service,
            server_key_seed,
            server_public,
            admin,
            connection_counter: std::sync::atomic::AtomicU64::new(1),
            connections: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Syncs the server volume: durable bitmaps + clean superblock,
    /// then a backend flush (see `ffs::Ffs::sync`). Call before
    /// dropping a testbed whose volume should reopen cleanly.
    ///
    /// # Errors
    ///
    /// I/O failure of the backing store.
    pub fn sync(&self) -> std::io::Result<()> {
        self.fs().sync()
    }

    /// Simulates a server reboot: syncs the volume, tears this testbed
    /// down, and builds a fresh one on the same backend configuration.
    ///
    /// On a persistent backend ([`StoreBackend::is_persistent`]) the
    /// new instance mounts the old volume — every file, directory and
    /// credential-protected handle survives. On an in-memory backend
    /// the reboot necessarily formats from scratch (there is nothing
    /// durable to come back to).
    ///
    /// Any clients connected to the old instance must be dropped
    /// first: reboot **joins** their server threads (so no stale
    /// handle to the old store survives into the new life), and a
    /// still-connected client would make that join wait forever.
    pub fn reboot(self) -> Testbed {
        // Join the per-connection threads FIRST — each owns a clone of
        // the service (and through it the store), and a straggler
        // finishing an acknowledged write after the sync would leave
        // that write uncovered by it. They exit once their client end
        // is dropped.
        for handle in self
            .connections
            .lock()
            .expect("connection list lock")
            .drain(..)
        {
            handle.join().ok();
        }
        self.sync().expect("sync volume before reboot");
        let Testbed {
            fs_config,
            link_config,
            cache_size,
            backend,
            service,
            ..
        } = self;
        drop(service);
        Testbed::with_backend(fs_config, link_config, cache_size, &backend)
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The server's backing volume (block-store stats, fsck).
    pub fn fs(&self) -> &Arc<Ffs> {
        self.service.storage().fs()
    }

    /// Counters of the volume's storage backend — e.g. the dedup hit
    /// ratio when the testbed runs on [`StoreBackend::Dedup`].
    pub fn store_stats(&self) -> ffs::StoreStats {
        self.fs().disk().stats()
    }

    /// The server service (policy cache stats, audit log, env control).
    pub fn service(&self) -> &Arc<DiscfsService> {
        &self.service
    }

    /// The administrator signing key (root of the trust graph).
    pub fn admin(&self) -> &SigningKey {
        &self.admin
    }

    /// The server's public identity (what clients pin).
    pub fn server_public(&self) -> VerifyingKey {
        self.server_public
    }

    /// Connects a new client with `identity`, running IKE and mounting
    /// the root export. A fresh server thread handles the connection —
    /// one connection per client, as in the paper's setup.
    ///
    /// # Errors
    ///
    /// Handshake or mount failures.
    pub fn connect(&self, identity: &SigningKey) -> Result<DiscfsClient, DiscfsClientError> {
        let conn_id = self
            .connection_counter
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let (client_end, server_end) = Link::pair(&self.clock, self.link_config);
        let service = self.service.clone();
        let server_key = SigningKey::from_seed(&self.server_key_seed);
        let handle = std::thread::spawn(move || {
            let mut rng = DetRng::new(0x5EED_0000 + conn_id);
            match ipsec::ike::respond(server_end, &server_key, &mut rng) {
                Ok(chan) => nfsv2::server::serve_connection(service, Box::new(chan)),
                Err(_) => { /* handshake failed; connection dropped */ }
            }
        });
        let mut connections = self.connections.lock().expect("connection list lock");
        // Reap handles of threads that already exited so a long-lived
        // testbed churning through connections stays bounded.
        connections.retain(|h| !h.is_finished());
        connections.push(handle);
        drop(connections);
        let mut rng = DetRng::new(0xC11E_0000 + conn_id);
        DiscfsClient::attach(
            client_end,
            identity,
            Some(&self.server_public),
            "/",
            &mut rng,
        )
    }
}

impl Default for Testbed {
    fn default() -> Self {
        Testbed::new()
    }
}
