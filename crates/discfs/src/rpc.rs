//! The DisCFS auxiliary RPC program.
//!
//! Paper §5: *"We wrote a utility which allows a user to submit
//! credential assertions to the DisCFS daemon over RPC"* and *"we had
//! to add our own procedures that upon successful creation of a
//! file/directory return a credential with full access to the creator
//! of the file."* Both live in this side program, multiplexed on the
//! same secure connection as the NFS traffic.

use onc_rpc::{Decoder, Encoder, XdrError};

use nfsv2::{FHandle, Fattr, NfsStat};

/// Program number for the DisCFS control procedures (outside the
/// IANA-assigned range, like any site-local RPC program).
pub const DISCFS_PROGRAM: u32 = 395_555;
/// Program version.
pub const DISCFS_VERSION: u32 = 1;

/// Procedure numbers.
#[allow(missing_docs)]
pub mod proc_discfs {
    pub const NULL: u32 = 0;
    /// Submit a credential assertion: `string → u32 status`.
    pub const SUBMIT_CRED: u32 = 1;
    /// Create a file and receive its credential.
    pub const CREATE: u32 = 2;
    /// Create a directory and receive its credential.
    pub const MKDIR: u32 = 3;
    /// Number of credentials in this connection's session.
    pub const CRED_COUNT: u32 = 4;
    /// Revoke a key (administrators only).
    pub const REVOKE_KEY: u32 = 5;
    /// Revoke a credential by id (administrators only).
    pub const REVOKE_CRED: u32 = 6;
}

/// Status codes for the control procedures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscfsRpcStatus {
    /// Success.
    Ok = 0,
    /// Credential failed to parse or verify.
    BadCredential = 1,
    /// Credential (or its issuer key) is revoked.
    Revoked = 2,
    /// Caller lacks permission for this procedure.
    Denied = 3,
    /// Underlying filesystem error (accompanied by an NfsStat).
    FsError = 4,
}

impl DiscfsRpcStatus {
    /// Decodes from a wire word.
    pub fn from_u32(v: u32) -> Result<DiscfsRpcStatus, XdrError> {
        Ok(match v {
            0 => DiscfsRpcStatus::Ok,
            1 => DiscfsRpcStatus::BadCredential,
            2 => DiscfsRpcStatus::Revoked,
            3 => DiscfsRpcStatus::Denied,
            4 => DiscfsRpcStatus::FsError,
            _ => return Err(XdrError::BadValue),
        })
    }
}

/// Result of the credential-returning CREATE/MKDIR procedures.
#[derive(Debug, Clone)]
pub struct CreateWithCredRes {
    /// The new file's handle.
    pub fh: FHandle,
    /// Its attributes.
    pub attr: Fattr,
    /// A signed credential granting the creator RWX on the new file.
    pub credential: String,
}

/// Encodes a CREATE/MKDIR result.
pub fn encode_create_res(result: &Result<CreateWithCredRes, NfsStat>) -> Vec<u8> {
    let mut e = Encoder::new();
    match result {
        Ok(res) => {
            e.put_u32(DiscfsRpcStatus::Ok as u32);
            e.put_opaque_fixed(&res.fh.0);
            res.attr.encode(&mut e);
            e.put_string(&res.credential);
        }
        Err(stat) => {
            e.put_u32(DiscfsRpcStatus::FsError as u32);
            e.put_u32(*stat as u32);
        }
    }
    e.finish()
}

/// Decodes a CREATE/MKDIR result.
///
/// # Errors
///
/// `Ok(Err(stat))` for server-reported filesystem errors; `Err` for
/// wire-format problems.
pub fn decode_create_res(data: &[u8]) -> Result<Result<CreateWithCredRes, NfsStat>, XdrError> {
    let mut d = Decoder::new(data);
    match DiscfsRpcStatus::from_u32(d.get_u32()?)? {
        DiscfsRpcStatus::Ok => {
            let fh = FHandle(d.get_opaque_fixed(32)?.try_into().expect("32-byte handle"));
            let attr = Fattr::decode(&mut d)?;
            let credential = d.get_string()?;
            Ok(Ok(CreateWithCredRes {
                fh,
                attr,
                credential,
            }))
        }
        DiscfsRpcStatus::FsError => Ok(Err(NfsStat::from_u32(d.get_u32()?)?)),
        DiscfsRpcStatus::Denied => Ok(Err(NfsStat::Acces)),
        _ => Err(XdrError::BadValue),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsv2::{FType, TimeVal};

    fn fattr() -> Fattr {
        Fattr {
            ftype: FType::Regular,
            mode: 0o100644,
            nlink: 1,
            uid: 0,
            gid: 0,
            size: 0,
            blocksize: 8192,
            rdev: 0,
            blocks: 0,
            fsid: 1,
            fileid: 9,
            atime: TimeVal::default(),
            mtime: TimeVal::default(),
            ctime: TimeVal::default(),
        }
    }

    #[test]
    fn create_res_round_trip_ok() {
        let res = CreateWithCredRes {
            fh: FHandle::pack(1, 9, 2),
            attr: fattr(),
            credential: "KeyNote-Version: 2\n...".to_string(),
        };
        let bytes = encode_create_res(&Ok(res.clone()));
        let decoded = decode_create_res(&bytes).unwrap().unwrap();
        assert_eq!(decoded.fh, res.fh);
        assert_eq!(decoded.attr, res.attr);
        assert_eq!(decoded.credential, res.credential);
    }

    #[test]
    fn create_res_round_trip_error() {
        let bytes = encode_create_res(&Err(NfsStat::Acces));
        assert_eq!(
            decode_create_res(&bytes).unwrap().unwrap_err(),
            NfsStat::Acces
        );
    }

    #[test]
    fn status_codes_round_trip() {
        for status in [
            DiscfsRpcStatus::Ok,
            DiscfsRpcStatus::BadCredential,
            DiscfsRpcStatus::Revoked,
            DiscfsRpcStatus::Denied,
            DiscfsRpcStatus::FsError,
        ] {
            assert_eq!(DiscfsRpcStatus::from_u32(status as u32).unwrap(), status);
        }
        assert!(DiscfsRpcStatus::from_u32(99).is_err());
    }
}
