//! Credential and key revocation.
//!
//! Paper §4.1: *"the traditional problem of credential revocation is
//! fairly straightforward to address: since the credentials related to
//! a specific file have to be examined by the DisCFS server where the
//! file is stored, revocation (especially if it is infrequent) can be
//! done by notifying the server about bad keys or credentials. If the
//! credentials are relatively short-lived, the server need only
//! remember such information for a short period of time."*
//!
//! This module is that server-side memory: sets of bad keys and bad
//! credential ids, each with an optional expiry (virtual time) after
//! which the entry can be forgotten — exactly the short-lived-credential
//! optimization the paper describes.

use std::collections::HashMap;

use discfs_crypto::ed25519::VerifyingKey;

/// The revocation list.
#[derive(Debug, Default)]
pub struct RevocationList {
    /// Bad keys → optional forget-after time.
    keys: HashMap<[u8; 32], Option<u64>>,
    /// Bad credential ids (see [`keynote::Assertion::id`]) → forget-after.
    credentials: HashMap<String, Option<u64>>,
}

impl RevocationList {
    /// An empty list.
    pub fn new() -> RevocationList {
        RevocationList::default()
    }

    /// Revokes every credential issued to or by `key`.
    ///
    /// `forget_after`: virtual time after which the server may drop the
    /// entry (pass the credential-lifetime horizon; `None` = keep
    /// forever).
    pub fn revoke_key(&mut self, key: &VerifyingKey, forget_after: Option<u64>) {
        self.keys.insert(key.0, forget_after);
    }

    /// Revokes a single credential by content id.
    pub fn revoke_credential(&mut self, id: &str, forget_after: Option<u64>) {
        self.credentials.insert(id.to_string(), forget_after);
    }

    /// Is this key revoked?
    pub fn is_key_revoked(&self, key: &VerifyingKey) -> bool {
        self.keys.contains_key(&key.0)
    }

    /// Is this credential revoked?
    pub fn is_credential_revoked(&self, id: &str) -> bool {
        self.credentials.contains_key(id)
    }

    /// Forgets entries whose horizon has passed (the "short period of
    /// time" bound from the paper).
    pub fn expire(&mut self, now: u64) {
        self.keys.retain(|_, t| t.is_none_or(|t| t > now));
        self.credentials.retain(|_, t| t.is_none_or(|t| t > now));
    }

    /// Number of live entries (keys + credentials).
    pub fn len(&self) -> usize {
        self.keys.len() + self.credentials.len()
    }

    /// True when nothing is revoked.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty() && self.credentials.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discfs_crypto::ed25519::SigningKey;

    fn key(seed: u8) -> VerifyingKey {
        SigningKey::from_seed(&[seed; 32]).public()
    }

    #[test]
    fn revoke_and_check_key() {
        let mut list = RevocationList::new();
        assert!(!list.is_key_revoked(&key(1)));
        list.revoke_key(&key(1), None);
        assert!(list.is_key_revoked(&key(1)));
        assert!(!list.is_key_revoked(&key(2)));
    }

    #[test]
    fn revoke_and_check_credential() {
        let mut list = RevocationList::new();
        list.revoke_credential("abc123", None);
        assert!(list.is_credential_revoked("abc123"));
        assert!(!list.is_credential_revoked("def456"));
    }

    #[test]
    fn expiry_forgets_old_entries() {
        let mut list = RevocationList::new();
        list.revoke_key(&key(1), Some(100));
        list.revoke_credential("short-lived", Some(50));
        list.revoke_credential("permanent", None);
        assert_eq!(list.len(), 3);

        list.expire(49);
        assert_eq!(list.len(), 3, "nothing expires before its horizon");

        list.expire(75);
        assert!(!list.is_credential_revoked("short-lived"));
        assert!(list.is_key_revoked(&key(1)));

        list.expire(1000);
        assert!(!list.is_key_revoked(&key(1)));
        assert!(
            list.is_credential_revoked("permanent"),
            "None = never forget"
        );
        assert_eq!(list.len(), 1);
    }
}
