//! Credential issuing: the user-facing "grant access" API.
//!
//! This is the heart of the paper's usage model: *"if Alice wants to
//! read Bob's paper, Bob only has to issue the appropriate credential
//! and send it to Alice (e.g., via email)."* A credential is a signed
//! KeyNote assertion whose conditions gate on `app_domain == "DisCFS"`
//! and the file `HANDLE`, returning a permission value from the octal
//! lattice (Figure 5 of the paper). Issuers simply sign with their own
//! key; whether the resulting chain reaches the server's policy is
//! decided at access time by the compliance checker — no contact with
//! the server or an administrator is needed to delegate.

use discfs_crypto::ed25519::{SigningKey, VerifyingKey};
use keynote::AssertionBuilder;
use nfsv2::FHandle;

use crate::perm::Perm;

/// Extra conditions attached to a grant.
#[derive(Debug, Clone, Copy, Default)]
pub struct Restrictions {
    /// Valid only while the server's virtual time is below this value.
    pub expires_at: Option<u64>,
    /// Valid only when the server's hour-of-day lies in `[start, end)`.
    /// (Paper §3.1: "the access policy can consider factors such as
    /// time-of-day, so that leisure-related files may not be available
    /// during office hours.")
    pub hours: Option<(u32, u32)>,
}

/// Builder for DisCFS credentials.
///
/// # Examples
///
/// ```
/// use discfs::{CredentialIssuer, Perm};
/// use discfs_crypto::ed25519::SigningKey;
/// use nfsv2::FHandle;
///
/// let bob = SigningKey::from_seed(&[2; 32]);
/// let alice = SigningKey::from_seed(&[3; 32]);
/// let handle = FHandle::pack(1, 666240, 1);
///
/// let cred = CredentialIssuer::new(&bob)
///     .holder(&alice.public())
///     .grant(&handle, Perm::R)
///     .comment("bob's paper, read-only for alice")
///     .issue();
/// assert!(cred.contains("Conditions:"));
/// keynote::Assertion::parse(&cred).unwrap().verify().unwrap();
/// ```
pub struct CredentialIssuer<'a> {
    issuer: &'a SigningKey,
    holders: Vec<VerifyingKey>,
    licensees_expr: Option<String>,
    grants: Vec<(String, Perm)>,
    restrictions: Restrictions,
    comment: Option<String>,
}

impl<'a> CredentialIssuer<'a> {
    /// Starts a credential signed by `issuer`.
    pub fn new(issuer: &'a SigningKey) -> CredentialIssuer<'a> {
        CredentialIssuer {
            issuer,
            holders: Vec::new(),
            licensees_expr: None,
            grants: Vec::new(),
            restrictions: Restrictions::default(),
            comment: None,
        }
    }

    /// Adds a holder key (multiple holders are OR-ed: any may use it).
    pub fn holder(mut self, key: &VerifyingKey) -> Self {
        self.holders.push(*key);
        self
    }

    /// Overrides the licensees structure entirely (e.g. a `k-of`
    /// threshold among co-authors).
    pub fn licensees_expr(mut self, expr: &str) -> Self {
        self.licensees_expr = Some(expr.to_string());
        self
    }

    /// Grants `perms` on `handle` (repeatable: one credential can cover
    /// a whole document set, like Bob's product literature in §2).
    pub fn grant(mut self, handle: &FHandle, perms: Perm) -> Self {
        self.grants.push((handle.credential_string(), perms));
        self
    }

    /// Grants by raw handle string (for pre-serialized handles).
    pub fn grant_handle_string(mut self, handle: &str, perms: Perm) -> Self {
        self.grants.push((handle.to_string(), perms));
        self
    }

    /// Expires the credential at virtual time `t`.
    pub fn expires_at(mut self, t: u64) -> Self {
        self.restrictions.expires_at = Some(t);
        self
    }

    /// Restricts validity to hours `[start, end)`.
    pub fn valid_hours(mut self, start: u32, end: u32) -> Self {
        self.restrictions.hours = Some((start, end));
        self
    }

    /// Attaches a human-readable comment (like `"testdir"` in Figure 5).
    pub fn comment(mut self, text: &str) -> Self {
        self.comment = Some(text.to_string());
        self
    }

    /// Renders the conditions program.
    fn conditions(&self) -> String {
        let mut guards = Vec::new();
        if let Some(expiry) = self.restrictions.expires_at {
            guards.push(format!("(time < {expiry})"));
        }
        if let Some((start, end)) = self.restrictions.hours {
            guards.push(format!("(hour >= {start} && hour < {end})"));
        }
        let extra = if guards.is_empty() {
            String::new()
        } else {
            format!(" && {}", guards.join(" && "))
        };
        self.grants
            .iter()
            .map(|(handle, perms)| {
                format!(
                    "(app_domain == \"DisCFS\") && (HANDLE == \"{handle}\"){extra} -> \"{}\";",
                    perms.value_string()
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Signs and returns the credential text.
    ///
    /// # Panics
    ///
    /// Panics when no holder and no grant were specified — an empty
    /// credential is always an authoring bug.
    pub fn issue(self) -> String {
        assert!(
            !self.holders.is_empty() || self.licensees_expr.is_some(),
            "credential needs at least one holder"
        );
        assert!(
            !self.grants.is_empty(),
            "credential needs at least one grant"
        );
        let mut builder = AssertionBuilder::new();
        if let Some(comment) = &self.comment {
            builder = builder.comment(comment);
        }
        match &self.licensees_expr {
            Some(expr) => builder = builder.licensees_expr(expr),
            None => {
                for holder in &self.holders {
                    builder = builder.licensee_key(holder);
                }
            }
        }
        builder.conditions(&self.conditions()).sign(self.issuer)
    }
}

/// Builds the administrator's root policy: trust `roots` uncondition-
/// ally in the `DisCFS` application domain.
///
/// The server key must be among the roots so that the credentials it
/// auto-issues at CREATE/MKDIR (paper §5's added procedures) form valid
/// chains.
pub fn root_policy(roots: &[VerifyingKey]) -> String {
    let mut builder = AssertionBuilder::new().comment("DisCFS administrator root policy");
    for root in roots {
        builder = builder.licensee_key(root);
    }
    builder
        .conditions("app_domain == \"DisCFS\" -> \"RWX\";")
        .policy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use keynote::{Assertion, Session};

    fn admin() -> SigningKey {
        SigningKey::from_seed(&[1; 32])
    }
    fn bob() -> SigningKey {
        SigningKey::from_seed(&[2; 32])
    }
    fn alice() -> SigningKey {
        SigningKey::from_seed(&[3; 32])
    }

    fn query(
        policy: &str,
        creds: &[String],
        requester: &SigningKey,
        handle: &str,
        hour: u32,
        time: u64,
    ) -> Perm {
        let mut session = Session::new(&Perm::VALUE_SET);
        session.add_policy(policy).unwrap();
        for cred in creds {
            session.add_credential(cred).unwrap();
        }
        session.set_attribute("app_domain", "DisCFS");
        session.set_attribute("HANDLE", handle);
        session.set_attribute("hour", &hour.to_string());
        session.set_attribute("time", &time.to_string());
        session.add_requester_key(&requester.public());
        Perm::from_value_string(session.query().unwrap().as_str())
    }

    #[test]
    fn basic_grant_verifies_and_evaluates() {
        let handle = FHandle::pack(1, 666240, 1);
        let cred = CredentialIssuer::new(&admin())
            .holder(&bob().public())
            .grant(&handle, Perm::RWX)
            .comment("testdir")
            .issue();
        Assertion::parse(&cred).unwrap().verify().unwrap();
        let policy = root_policy(&[admin().public()]);
        assert_eq!(
            query(
                &policy,
                std::slice::from_ref(&cred),
                &bob(),
                "666240.1",
                12,
                0
            ),
            Perm::RWX
        );
        // Wrong handle: nothing.
        assert_eq!(
            query(&policy, &[cred], &bob(), "666240.2", 12, 0),
            Perm::NONE
        );
    }

    #[test]
    fn delegation_chain_narrows() {
        let handle = FHandle::pack(1, 42, 1);
        let policy = root_policy(&[admin().public()]);
        let to_bob = CredentialIssuer::new(&admin())
            .holder(&bob().public())
            .grant(&handle, Perm::RW)
            .issue();
        let to_alice = CredentialIssuer::new(&bob())
            .holder(&alice().public())
            .grant(&handle, Perm::R)
            .issue();
        let creds = vec![to_bob, to_alice];
        assert_eq!(query(&policy, &creds, &alice(), "42.1", 12, 0), Perm::R);
        // Alice cannot exceed what Bob delegated, even if Bob tries to
        // grant more than he holds.
        let to_carol_too_much = CredentialIssuer::new(&bob())
            .holder(&alice().public())
            .grant(&handle, Perm::RWX)
            .issue();
        let creds = vec![creds[0].clone(), to_carol_too_much];
        assert_eq!(query(&policy, &creds, &alice(), "42.1", 12, 0), Perm::RW);
    }

    #[test]
    fn multi_file_credential() {
        let h1 = FHandle::pack(1, 10, 1);
        let h2 = FHandle::pack(1, 11, 1);
        let policy = root_policy(&[admin().public()]);
        let cred = CredentialIssuer::new(&admin())
            .holder(&bob().public())
            .grant(&h1, Perm::R)
            .grant(&h2, Perm::RW)
            .issue();
        let creds = vec![cred];
        assert_eq!(query(&policy, &creds, &bob(), "10.1", 12, 0), Perm::R);
        assert_eq!(query(&policy, &creds, &bob(), "11.1", 12, 0), Perm::RW);
        assert_eq!(query(&policy, &creds, &bob(), "12.1", 12, 0), Perm::NONE);
    }

    #[test]
    fn expiry_condition() {
        let handle = FHandle::pack(1, 5, 1);
        let policy = root_policy(&[admin().public()]);
        let cred = CredentialIssuer::new(&admin())
            .holder(&bob().public())
            .grant(&handle, Perm::R)
            .expires_at(1000)
            .issue();
        let creds = vec![cred];
        assert_eq!(query(&policy, &creds, &bob(), "5.1", 12, 999), Perm::R);
        assert_eq!(query(&policy, &creds, &bob(), "5.1", 12, 1000), Perm::NONE);
        assert_eq!(query(&policy, &creds, &bob(), "5.1", 12, 5000), Perm::NONE);
    }

    #[test]
    fn office_hours_condition() {
        let handle = FHandle::pack(1, 6, 1);
        let policy = root_policy(&[admin().public()]);
        // Leisure files: available only OUTSIDE office hours would be
        // two ranges; here grant within 17–23 only.
        let cred = CredentialIssuer::new(&admin())
            .holder(&bob().public())
            .grant(&handle, Perm::R)
            .valid_hours(17, 23)
            .issue();
        let creds = vec![cred];
        assert_eq!(query(&policy, &creds, &bob(), "6.1", 12, 0), Perm::NONE);
        assert_eq!(query(&policy, &creds, &bob(), "6.1", 17, 0), Perm::R);
        assert_eq!(query(&policy, &creds, &bob(), "6.1", 22, 0), Perm::R);
        assert_eq!(query(&policy, &creds, &bob(), "6.1", 23, 0), Perm::NONE);
    }

    #[test]
    fn multiple_holders_any_may_use() {
        let handle = FHandle::pack(1, 7, 1);
        let policy = root_policy(&[admin().public()]);
        let cred = CredentialIssuer::new(&admin())
            .holder(&bob().public())
            .holder(&alice().public())
            .grant(&handle, Perm::RW)
            .issue();
        let creds = vec![cred];
        assert_eq!(query(&policy, &creds, &bob(), "7.1", 12, 0), Perm::RW);
        assert_eq!(query(&policy, &creds, &alice(), "7.1", 12, 0), Perm::RW);
    }

    #[test]
    fn threshold_licensees_via_expr() {
        let handle = FHandle::pack(1, 8, 1);
        let policy = root_policy(&[admin().public()]);
        let expr = format!(
            "2-of(\"{}\", \"{}\")",
            keynote::key_principal(&bob().public()),
            keynote::key_principal(&alice().public()),
        );
        let cred = CredentialIssuer::new(&admin())
            .licensees_expr(&expr)
            .grant(&handle, Perm::RW)
            .issue();

        let mut session = Session::new(&Perm::VALUE_SET);
        session.add_policy(&policy).unwrap();
        session.add_credential(&cred).unwrap();
        session.set_attribute("app_domain", "DisCFS");
        session.set_attribute("HANDLE", "8.1");
        session.add_requester_key(&bob().public());
        assert!(
            session.query().unwrap().is_min(),
            "one signature insufficient"
        );
        session.add_requester_key(&alice().public());
        assert_eq!(session.query().unwrap().as_str(), "RW");
    }

    #[test]
    #[should_panic(expected = "at least one holder")]
    fn empty_holder_rejected() {
        let handle = FHandle::pack(1, 1, 1);
        CredentialIssuer::new(&admin())
            .grant(&handle, Perm::R)
            .issue();
    }

    #[test]
    #[should_panic(expected = "at least one grant")]
    fn empty_grant_rejected() {
        CredentialIssuer::new(&admin())
            .holder(&bob().public())
            .issue();
    }
}
