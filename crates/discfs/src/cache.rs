//! The policy-result cache.
//!
//! Paper §5: *"When read or write operations occur however, the KeyNote
//! \[session\] is consulted again on whether the specific requests should
//! be granted ... To improve performance, we use a cache of requested
//! operations and policy results."* Figure 12's search benchmark ran
//! with a cache of 128 policy results; that is this module's default.
//!
//! Keys are `(peer key, handle, epoch)`. Epochs make invalidation O(1):
//! submitting credentials bumps the peer's epoch, revocation or
//! environment changes (time-of-day) bump a global epoch, and stale
//! entries simply stop matching until LRU eviction reclaims them.
//!
//! # Concurrency
//!
//! The cache is **sharded** so N concurrent clients resolving cached
//! decisions never convoy on one lock: entries hash to one of up to
//! [`MAX_SHARDS`] shards, each behind its own `RwLock`. A *hit* takes
//! only a shard **read** lock — the LRU recency stamp is an `AtomicU64`
//! inside the entry, so hits from many clients proceed in parallel.
//! Only misses (insert) and invalidation take a shard write lock.
//!
//! Small caches stay exact: the shard count starts from a power-of-two
//! **hint** ([`PolicyCache::with_shard_hint`], default [`MAX_SHARDS`])
//! and halves until every shard holds at least [`MIN_PER_SHARD`]
//! entries, so an ablation-sized cache (≤ 15 entries) is a single
//! shard with precise LRU order, while the paper's 128-entry
//! configuration spreads over 16 shards with per-shard LRU (an
//! approximation of global LRU that preserves the Figure 12 shape). A
//! deployment expecting thousands of concurrent tenants passes a
//! larger hint through `DiscfsConfig::peer_shards`, and a big cache
//! then spreads over up to [`MAX_SHARD_HINT`] shards.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::perm::Perm;

/// Default shard-count hint (what [`PolicyCache::new`] asks for; a
/// 128-entry cache reaches it).
pub const MAX_SHARDS: usize = 16;

/// Hard ceiling on the shard hint accepted by
/// [`PolicyCache::with_shard_hint`].
pub const MAX_SHARD_HINT: usize = 256;

/// Minimum entries per shard before another shard is added — keeps
/// small ablation caches single-sharded (exact LRU).
pub const MIN_PER_SHARD: usize = 8;

/// A cache key: requester, file, and invalidation epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Requester public key bytes.
    pub peer: [u8; 32],
    /// `(inode, generation)` of the file.
    pub handle: (u32, u32),
    /// Peer-session epoch (bumped on credential submission) and global
    /// environment epoch (bumped on time/revocation changes). Kept as a
    /// pair — combining them arithmetically invites collisions.
    pub epoch: (u64, u64),
}

/// Hit/miss/eviction counters (for the Figure 12 analysis and the cache
/// ablation bench).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheStats {
    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// One cached decision. The recency stamp is atomic so a hit can bump
/// it under a shard *read* lock.
struct Entry {
    perm: Perm,
    stamp: AtomicU64,
}

/// A bounded, sharded LRU map from [`CacheKey`] to granted [`Perm`].
pub struct PolicyCache {
    shards: Vec<RwLock<HashMap<CacheKey, Entry>>>,
    /// Per-shard capacities summing exactly to the requested total.
    shard_capacity: Vec<usize>,
    total_capacity: usize,
    tick: AtomicU64,
    stats: CacheStats,
}

impl PolicyCache {
    /// Creates a cache holding at most `capacity` results with the
    /// default shard hint ([`MAX_SHARDS`]). A capacity of 0 disables
    /// caching (every check is a full KeyNote query — the ablation
    /// baseline).
    pub fn new(capacity: usize) -> PolicyCache {
        PolicyCache::with_shard_hint(capacity, MAX_SHARDS)
    }

    /// Creates a cache whose shard geometry is sized from `hint` (the
    /// expected concurrent client population — `DiscfsConfig`'s
    /// `peer_shards`): the hint is rounded to a power of two, clamped
    /// to `[1, `[`MAX_SHARD_HINT`]`]`, then halved until every shard
    /// holds at least [`MIN_PER_SHARD`] entries — so small ablation
    /// caches stay single-sharded with exact LRU no matter the hint,
    /// and the per-shard capacities always sum exactly to `capacity`.
    pub fn with_shard_hint(capacity: usize, hint: usize) -> PolicyCache {
        let mut shards = hint.clamp(1, MAX_SHARD_HINT).next_power_of_two();
        while shards > 1 && capacity / shards < MIN_PER_SHARD {
            shards /= 2;
        }
        // Distribute the capacity exactly: the first `capacity % shards`
        // shards hold one extra entry.
        let base = capacity / shards;
        let extra = capacity % shards;
        PolicyCache {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            shard_capacity: (0..shards).map(|i| base + usize::from(i < extra)).collect(),
            total_capacity: capacity,
            tick: AtomicU64::new(0),
            stats: CacheStats::default(),
        }
    }

    /// The paper's configuration: 128 entries.
    pub fn paper_default() -> PolicyCache {
        PolicyCache::new(128)
    }

    /// Total capacity across shards.
    pub fn capacity(&self) -> usize {
        self.total_capacity
    }

    /// Number of shards (1 for small caches, up to [`MAX_SHARDS`]).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        // Cheap spread: peer identity and inode decide the shard, so
        // one client's working set fans out and different clients
        // rarely collide. Epochs are excluded — an epoch bump must not
        // migrate a key's shard (stale entries die in place).
        let h = key.peer[0] as u64 ^ (key.peer[1] as u64) << 3 ^ key.handle.0 as u64;
        (h % self.shards.len() as u64) as usize
    }

    /// Looks up a cached decision. Hits touch only a shard read lock
    /// plus atomic counters — concurrent lookups never serialize.
    pub fn get(&self, key: &CacheKey) -> Option<Perm> {
        if self.capacity() == 0 {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let shard = self.shards[self.shard_of(key)].read();
        match shard.get(key) {
            Some(entry) => {
                entry
                    .stamp
                    .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.perm)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a decision, evicting the shard's least-recently-used
    /// entry when the shard is full. (Linear eviction scan: at ≤ 8
    /// entries per shard this is cheaper than a linked list.)
    pub fn insert(&self, key: CacheKey, perm: Perm) {
        let idx = self.shard_of(&key);
        let capacity = self.shard_capacity[idx];
        if capacity == 0 {
            return;
        }
        let mut shard = self.shards[idx].write();
        if shard.len() >= capacity && !shard.contains_key(&key) {
            if let Some(oldest) = shard
                .iter()
                .min_by_key(|(_, entry)| entry.stamp.load(Ordering::Relaxed))
                .map(|(k, _)| *k)
            {
                shard.remove(&oldest);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        shard.insert(
            key,
            Entry {
                perm,
                stamp: AtomicU64::new(stamp),
            },
        );
    }

    /// Drops every entry (full invalidation after revocation).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Access to the counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(peer: u8, ino: u32, epoch: u64) -> CacheKey {
        CacheKey {
            peer: [peer; 32],
            handle: (ino, 1),
            epoch: (epoch, 0),
        }
    }

    #[test]
    fn hit_after_insert() {
        let cache = PolicyCache::new(4);
        cache.insert(key(1, 10, 0), Perm::RW);
        assert_eq!(cache.get(&key(1, 10, 0)), Some(Perm::RW));
        assert_eq!(cache.stats().hits(), 1);
    }

    #[test]
    fn different_epoch_misses() {
        let cache = PolicyCache::new(4);
        cache.insert(key(1, 10, 0), Perm::RW);
        assert_eq!(cache.get(&key(1, 10, 1)), None);
    }

    #[test]
    fn different_peer_misses() {
        let cache = PolicyCache::new(4);
        cache.insert(key(1, 10, 0), Perm::RW);
        assert_eq!(cache.get(&key(2, 10, 0)), None);
    }

    #[test]
    fn small_caches_are_single_sharded_with_exact_lru() {
        let cache = PolicyCache::new(2);
        assert_eq!(cache.shard_count(), 1);
        cache.insert(key(1, 1, 0), Perm::R);
        cache.insert(key(1, 2, 0), Perm::W);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&key(1, 1, 0)).is_some());
        cache.insert(key(1, 3, 0), Perm::X);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1, 1, 0)).is_some());
        assert!(cache.get(&key(1, 2, 0)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(1, 3, 0)).is_some());
        assert_eq!(cache.stats().evictions(), 1);
    }

    #[test]
    fn paper_config_shards_and_keeps_capacity() {
        let cache = PolicyCache::new(128);
        assert_eq!(cache.shard_count(), MAX_SHARDS);
        assert_eq!(cache.capacity(), 128);
        // Insert far more than capacity: the cache never exceeds it.
        for i in 0..1000u32 {
            cache.insert(key((i % 251) as u8, i, 0), Perm::R);
        }
        assert!(cache.len() <= 128, "len {} > capacity", cache.len());
        assert!(cache.stats().evictions() > 0);
    }

    #[test]
    fn per_shard_lru_evicts_oldest_in_shard() {
        // Keys sharing peer+ino map to the same shard regardless of
        // epoch, so a shard can be driven to its capacity exactly.
        let cache = PolicyCache::new(128);
        let k = |e| key(7, 42, e);
        for e in 0..100 {
            cache.insert(k(e), Perm::R);
        }
        // The most recent epochs survive; the earliest were evicted.
        assert!(cache.get(&k(99)).is_some());
        assert!(cache.get(&k(0)).is_none());
        assert!(cache.stats().evictions() > 0);
    }

    #[test]
    fn shard_hint_is_clamped_to_a_power_of_two() {
        // A non-power-of-two hint rounds up; capacity still bounds it.
        let cache = PolicyCache::with_shard_hint(1024, 100);
        assert_eq!(cache.shard_count(), 128);
        assert_eq!(cache.capacity(), 1024);
        // An absurd hint hits the ceiling.
        let cache = PolicyCache::with_shard_hint(1 << 20, 100_000);
        assert_eq!(cache.shard_count(), MAX_SHARD_HINT);
        // A big hint over a small cache halves down to exact LRU.
        let cache = PolicyCache::with_shard_hint(4, 1024);
        assert_eq!(cache.shard_count(), 1);
        // Per-shard capacities always sum exactly to the total.
        for (capacity, hint) in [(0, 64), (7, 64), (100, 64), (1000, 3)] {
            let cache = PolicyCache::with_shard_hint(capacity, hint);
            assert_eq!(
                cache.shard_capacity.iter().sum::<usize>(),
                capacity,
                "capacity {capacity}, hint {hint}"
            );
            assert!(cache.shard_count().is_power_of_two());
        }
    }

    #[test]
    fn hinted_cache_keeps_exact_accounting() {
        let cache = PolicyCache::with_shard_hint(256, 64);
        assert_eq!(cache.shard_count(), 32);
        for i in 0..1000u32 {
            let k = key((i % 251) as u8, i % 40, 0);
            if cache.get(&k).is_none() {
                cache.insert(k, Perm::R);
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.hits() + stats.misses(), 1000);
        assert!(cache.len() <= 256);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = PolicyCache::new(0);
        cache.insert(key(1, 1, 0), Perm::R);
        assert_eq!(cache.get(&key(1, 1, 0)), None);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn clear_empties() {
        let cache = PolicyCache::new(4);
        cache.insert(key(1, 1, 0), Perm::R);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(1, 1, 0)), None);
    }

    #[test]
    fn reinsert_updates_value() {
        let cache = PolicyCache::new(4);
        cache.insert(key(1, 1, 0), Perm::R);
        cache.insert(key(1, 1, 0), Perm::RWX);
        assert_eq!(cache.get(&key(1, 1, 0)), Some(Perm::RWX));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_hits_and_inserts_account_exactly() {
        // hits + misses == total gets, across 4 threads.
        let cache = std::sync::Arc::new(PolicyCache::new(64));
        let threads = 4;
        let per_thread = 1000u32;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = cache.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let k = key(t as u8, i % 16, 0);
                        if cache.get(&k).is_none() {
                            cache.insert(k, Perm::R);
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits() + stats.misses(), (threads * per_thread) as u64);
    }
}
