//! The policy-result cache.
//!
//! Paper §5: *"When read or write operations occur however, the KeyNote
//! \[session\] is consulted again on whether the specific requests should
//! be granted ... To improve performance, we use a cache of requested
//! operations and policy results."* Figure 12's search benchmark ran
//! with a cache of 128 policy results; that is this module's default.
//!
//! Keys are `(peer key, handle, epoch)`. Epochs make invalidation O(1):
//! submitting credentials bumps the peer's epoch, revocation or
//! environment changes (time-of-day) bump a global epoch, and stale
//! entries simply stop matching until LRU eviction reclaims them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::perm::Perm;

/// A cache key: requester, file, and invalidation epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Requester public key bytes.
    pub peer: [u8; 32],
    /// `(inode, generation)` of the file.
    pub handle: (u32, u32),
    /// Peer-session epoch (bumped on credential submission) and global
    /// environment epoch (bumped on time/revocation changes). Kept as a
    /// pair — combining them arithmetically invites collisions.
    pub epoch: (u64, u64),
}

/// Hit/miss/eviction counters (for the Figure 12 analysis and the cache
/// ablation bench).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheStats {
    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// A bounded LRU map from [`CacheKey`] to granted [`Perm`].
pub struct PolicyCache {
    capacity: usize,
    state: Mutex<HashMap<CacheKey, (Perm, u64)>>,
    tick: AtomicU64,
    stats: CacheStats,
}

impl PolicyCache {
    /// Creates a cache holding at most `capacity` results. A capacity
    /// of 0 disables caching (every check is a full KeyNote query —
    /// the ablation baseline).
    pub fn new(capacity: usize) -> PolicyCache {
        PolicyCache {
            capacity,
            state: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            stats: CacheStats::default(),
        }
    }

    /// The paper's configuration: 128 entries.
    pub fn paper_default() -> PolicyCache {
        PolicyCache::new(128)
    }

    /// Looks up a cached decision.
    pub fn get(&self, key: &CacheKey) -> Option<Perm> {
        if self.capacity == 0 {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut map = self.state.lock();
        match map.get_mut(key) {
            Some((perm, stamp)) => {
                *stamp = self.tick.fetch_add(1, Ordering::Relaxed);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(*perm)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a decision, evicting the least-recently-used entry when
    /// full. (Linear eviction scan: at the paper's 128 entries this is
    /// cheaper than maintaining a linked list.)
    pub fn insert(&self, key: CacheKey, perm: Perm) {
        if self.capacity == 0 {
            return;
        }
        let mut map = self.state.lock();
        if map.len() >= self.capacity && !map.contains_key(&key) {
            if let Some(oldest) = map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
            {
                map.remove(&oldest);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        map.insert(key, (perm, stamp));
    }

    /// Drops every entry (full invalidation after revocation).
    pub fn clear(&self) {
        self.state.lock().clear();
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.state.lock().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Access to the counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(peer: u8, ino: u32, epoch: u64) -> CacheKey {
        CacheKey {
            peer: [peer; 32],
            handle: (ino, 1),
            epoch: (epoch, 0),
        }
    }

    #[test]
    fn hit_after_insert() {
        let cache = PolicyCache::new(4);
        cache.insert(key(1, 10, 0), Perm::RW);
        assert_eq!(cache.get(&key(1, 10, 0)), Some(Perm::RW));
        assert_eq!(cache.stats().hits(), 1);
    }

    #[test]
    fn different_epoch_misses() {
        let cache = PolicyCache::new(4);
        cache.insert(key(1, 10, 0), Perm::RW);
        assert_eq!(cache.get(&key(1, 10, 1)), None);
    }

    #[test]
    fn different_peer_misses() {
        let cache = PolicyCache::new(4);
        cache.insert(key(1, 10, 0), Perm::RW);
        assert_eq!(cache.get(&key(2, 10, 0)), None);
    }

    #[test]
    fn lru_eviction() {
        let cache = PolicyCache::new(2);
        cache.insert(key(1, 1, 0), Perm::R);
        cache.insert(key(1, 2, 0), Perm::W);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&key(1, 1, 0)).is_some());
        cache.insert(key(1, 3, 0), Perm::X);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1, 1, 0)).is_some());
        assert!(cache.get(&key(1, 2, 0)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(1, 3, 0)).is_some());
        assert_eq!(cache.stats().evictions(), 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = PolicyCache::new(0);
        cache.insert(key(1, 1, 0), Perm::R);
        assert_eq!(cache.get(&key(1, 1, 0)), None);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn clear_empties() {
        let cache = PolicyCache::new(4);
        cache.insert(key(1, 1, 0), Perm::R);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(1, 1, 0)), None);
    }

    #[test]
    fn reinsert_updates_value() {
        let cache = PolicyCache::new(4);
        cache.insert(key(1, 1, 0), Perm::R);
        cache.insert(key(1, 1, 0), Perm::RWX);
        assert_eq!(cache.get(&key(1, 1, 0)), Some(Perm::RWX));
        assert_eq!(cache.len(), 1);
    }
}
