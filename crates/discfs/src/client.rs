//! The DisCFS client: `cattach` + credential wallet.
//!
//! Mirrors the paper's client side: a modified `cattach` establishes the
//! IPsec tunnel (binding the user's key to the connection) and mounts
//! the remote directory; a wallet of credentials is submitted to the
//! server over the side RPC program, after which files "appear under
//! the DisCFS mount point" with the granted permissions.

use discfs_crypto::ed25519::{SigningKey, VerifyingKey};
use ipsec::SecureTransport;
use nfsv2::{ClientError, FHandle, Fattr, NfsClient, RemoteFs};
use onc_rpc::{Decoder, Encoder};
use rand::RngCore;

use crate::rpc::{
    decode_create_res, proc_discfs, CreateWithCredRes, DiscfsRpcStatus, DISCFS_PROGRAM,
    DISCFS_VERSION,
};
use crate::wallet::Wallet;

/// Errors from the DisCFS client.
#[derive(Debug)]
pub enum DiscfsClientError {
    /// The IKE handshake failed.
    Handshake(ipsec::IpsecError),
    /// An RPC failed.
    Rpc(ClientError),
    /// The server rejected a submitted credential.
    CredentialRejected(DiscfsRpcStatus),
}

impl std::fmt::Display for DiscfsClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscfsClientError::Handshake(e) => write!(f, "IKE handshake failed: {e}"),
            DiscfsClientError::Rpc(e) => write!(f, "rpc failed: {e}"),
            DiscfsClientError::CredentialRejected(s) => {
                write!(f, "server rejected credential: {s:?}")
            }
        }
    }
}

impl std::error::Error for DiscfsClientError {}

impl From<ClientError> for DiscfsClientError {
    fn from(e: ClientError) -> Self {
        DiscfsClientError::Rpc(e)
    }
}

/// A connected DisCFS client.
pub struct DiscfsClient {
    remote: RemoteFs,
    identity_public: VerifyingKey,
    wallet: Wallet,
}

impl DiscfsClient {
    /// `cattach`: IKE-connect over `endpoint`, then mount `path`.
    ///
    /// `expected_server` pins the server identity (recommended — the
    /// analogue of an SFS self-certifying pathname).
    ///
    /// # Errors
    ///
    /// Handshake or mount failures.
    pub fn attach<R: RngCore>(
        endpoint: netsim::Endpoint,
        identity: &SigningKey,
        expected_server: Option<&VerifyingKey>,
        path: &str,
        rng: &mut R,
    ) -> Result<DiscfsClient, DiscfsClientError> {
        let chan = ipsec::ike::initiate(endpoint, identity, expected_server, rng)
            .map_err(DiscfsClientError::Handshake)?;
        DiscfsClient::attach_over(Box::new(chan), identity.public(), path)
    }

    /// Attaches over an existing secure transport (tests, custom nets).
    ///
    /// # Errors
    ///
    /// Mount failures.
    pub fn attach_over(
        chan: Box<dyn SecureTransport>,
        identity_public: VerifyingKey,
        path: &str,
    ) -> Result<DiscfsClient, DiscfsClientError> {
        let client = NfsClient::new(chan);
        let remote = RemoteFs::mount(client, path)?;
        Ok(DiscfsClient {
            remote,
            identity_public,
            wallet: Wallet::new(),
        })
    }

    /// The mounted filesystem view.
    pub fn remote(&self) -> &RemoteFs {
        &self.remote
    }

    /// The raw NFS client.
    pub fn client(&self) -> &NfsClient {
        self.remote.client()
    }

    /// This client's public identity.
    pub fn identity(&self) -> VerifyingKey {
        self.identity_public
    }

    /// Adds a credential to the local wallet (does not submit).
    /// Invalid credentials are dropped (the wallet validates).
    pub fn wallet_add(&mut self, credential: &str) {
        let _ = self.wallet.add(credential);
    }

    /// The local wallet.
    pub fn wallet(&self) -> &Wallet {
        &self.wallet
    }

    /// Mutable access to the local wallet (import/export).
    pub fn wallet_mut(&mut self) -> &mut Wallet {
        &mut self.wallet
    }

    /// Submits one credential to the server session.
    ///
    /// # Errors
    ///
    /// [`DiscfsClientError::CredentialRejected`] when the server's
    /// verification fails; RPC errors otherwise.
    pub fn submit_credential(&self, credential: &str) -> Result<(), DiscfsClientError> {
        let mut e = Encoder::new();
        e.put_string(credential);
        let results = self.client().call_raw(
            DISCFS_PROGRAM,
            DISCFS_VERSION,
            proc_discfs::SUBMIT_CRED,
            e.finish(),
        )?;
        let mut d = Decoder::new(&results);
        let status = d
            .get_u32()
            .ok()
            .and_then(|v| DiscfsRpcStatus::from_u32(v).ok())
            .unwrap_or(DiscfsRpcStatus::BadCredential);
        if status == DiscfsRpcStatus::Ok {
            Ok(())
        } else {
            Err(DiscfsClientError::CredentialRejected(status))
        }
    }

    /// Submits every wallet credential (ignoring rejects of unrelated
    /// chains); returns how many were accepted.
    pub fn submit_wallet(&self) -> Result<usize, DiscfsClientError> {
        let mut accepted = 0;
        for credential in self.wallet.credentials() {
            match self.submit_credential(credential) {
                Ok(()) => accepted += 1,
                Err(DiscfsClientError::CredentialRejected(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(accepted)
    }

    /// Submits only the wallet credentials relevant to `handle` (plus
    /// chain links without handle conditions); returns how many were
    /// accepted. This is the "credential caching may be used to reduce
    /// the number of credentials that have to be exchanged" path (§4.1).
    pub fn submit_relevant(&self, handle: &FHandle) -> Result<usize, DiscfsClientError> {
        let mut accepted = 0;
        for credential in self.wallet.relevant_for(&handle.credential_string()) {
            match self.submit_credential(credential) {
                Ok(()) => accepted += 1,
                Err(DiscfsClientError::CredentialRejected(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(accepted)
    }

    /// Creates a file through the credential-returning procedure; the
    /// returned credential is added to the wallet automatically.
    ///
    /// # Errors
    ///
    /// RPC failures or server-side `NfsStat` errors.
    pub fn create_with_credential(
        &mut self,
        dir: &FHandle,
        name: &str,
        mode: u32,
    ) -> Result<CreateWithCredRes, DiscfsClientError> {
        self.create_or_mkdir(dir, name, mode, proc_discfs::CREATE)
    }

    /// Creates a directory through the credential-returning procedure.
    ///
    /// # Errors
    ///
    /// RPC failures or server-side `NfsStat` errors.
    pub fn mkdir_with_credential(
        &mut self,
        dir: &FHandle,
        name: &str,
        mode: u32,
    ) -> Result<CreateWithCredRes, DiscfsClientError> {
        self.create_or_mkdir(dir, name, mode, proc_discfs::MKDIR)
    }

    fn create_or_mkdir(
        &mut self,
        dir: &FHandle,
        name: &str,
        mode: u32,
        proc_num: u32,
    ) -> Result<CreateWithCredRes, DiscfsClientError> {
        let mut e = Encoder::new();
        nfsv2::DirOpArgs {
            dir: *dir,
            name: name.to_string(),
        }
        .encode(&mut e);
        e.put_u32(mode);
        let results =
            self.client()
                .call_raw(DISCFS_PROGRAM, DISCFS_VERSION, proc_num, e.finish())?;
        let decoded =
            decode_create_res(&results).map_err(|e| DiscfsClientError::Rpc(ClientError::Xdr(e)))?;
        match decoded {
            Ok(res) => {
                let _ = self.wallet.add(&res.credential);
                Ok(res)
            }
            Err(stat) => Err(DiscfsClientError::Rpc(ClientError::Status(stat))),
        }
    }

    /// How many credentials the server session currently holds.
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn credential_count(&self) -> Result<u32, DiscfsClientError> {
        let results = self.client().call_raw(
            DISCFS_PROGRAM,
            DISCFS_VERSION,
            proc_discfs::CRED_COUNT,
            Vec::new(),
        )?;
        let mut d = Decoder::new(&results);
        d.get_u32()
            .map_err(|e| DiscfsClientError::Rpc(ClientError::Xdr(e)))
    }

    /// Asks the server to revoke a key (admin identities only).
    ///
    /// # Errors
    ///
    /// [`DiscfsClientError::CredentialRejected`] with `Denied` when the
    /// caller is not an administrator.
    pub fn revoke_key(&self, key: &VerifyingKey) -> Result<(), DiscfsClientError> {
        let mut e = Encoder::new();
        e.put_opaque_fixed(&key.0);
        let results = self.client().call_raw(
            DISCFS_PROGRAM,
            DISCFS_VERSION,
            proc_discfs::REVOKE_KEY,
            e.finish(),
        )?;
        self.expect_ok(&results)
    }

    /// Asks the server to revoke a credential by id (admin only).
    ///
    /// # Errors
    ///
    /// As [`DiscfsClient::revoke_key`].
    pub fn revoke_credential(&self, id: &str) -> Result<(), DiscfsClientError> {
        let mut e = Encoder::new();
        e.put_string(id);
        let results = self.client().call_raw(
            DISCFS_PROGRAM,
            DISCFS_VERSION,
            proc_discfs::REVOKE_CRED,
            e.finish(),
        )?;
        self.expect_ok(&results)
    }

    fn expect_ok(&self, results: &[u8]) -> Result<(), DiscfsClientError> {
        let mut d = Decoder::new(results);
        let status = d
            .get_u32()
            .ok()
            .and_then(|v| DiscfsRpcStatus::from_u32(v).ok())
            .unwrap_or(DiscfsRpcStatus::Denied);
        if status == DiscfsRpcStatus::Ok {
            Ok(())
        } else {
            Err(DiscfsClientError::CredentialRejected(status))
        }
    }

    /// Convenience: getattr through the mounted view.
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn getattr(&self, fh: &FHandle) -> Result<Fattr, DiscfsClientError> {
        Ok(self.client().getattr(fh)?)
    }
}
