//! The DisCFS permission lattice.
//!
//! Paper §5: *"The return values for the assertions form a partial
//! order of 8 combinations ("false", "X", "W", "WX", "R", "RX", "RW"
//! and "RWX") and translate directly into the standard octal
//! representation."* KeyNote queries use this list as their ordered
//! compliance value set; the returned value's index **is** the octal
//! permission word.

/// A set of Unix-style permissions (R=4, W=2, X=1, like `chmod`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perm(u8);

impl Perm {
    /// No access (`"false"` in credentials).
    pub const NONE: Perm = Perm(0);
    /// Execute / traverse.
    pub const X: Perm = Perm(1);
    /// Write.
    pub const W: Perm = Perm(2);
    /// Read.
    pub const R: Perm = Perm(4);
    /// Read + write.
    pub const RW: Perm = Perm(6);
    /// Read + execute.
    pub const RX: Perm = Perm(5);
    /// Write + execute.
    pub const WX: Perm = Perm(3);
    /// Full access.
    pub const RWX: Perm = Perm(7);

    /// The ordered compliance value set for KeyNote queries; index ==
    /// octal value.
    pub const VALUE_SET: [&'static str; 8] = ["false", "X", "W", "WX", "R", "RX", "RW", "RWX"];

    /// Builds from raw bits (masked to 0–7).
    pub fn from_bits(bits: u8) -> Perm {
        Perm(bits & 7)
    }

    /// The raw bits (octal digit).
    pub fn bits(self) -> u8 {
        self.0
    }

    /// True when this set includes all of `required`.
    pub fn contains(self, required: Perm) -> bool {
        self.0 & required.0 == required.0
    }

    /// Union of two sets.
    pub fn union(self, other: Perm) -> Perm {
        Perm(self.0 | other.0)
    }

    /// Intersection of two sets.
    pub fn intersect(self, other: Perm) -> Perm {
        Perm(self.0 & other.0)
    }

    /// True when no permission is granted.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The credential value string (`"RW"`, `"false"`, …).
    pub fn value_string(self) -> &'static str {
        Self::VALUE_SET[self.0 as usize]
    }

    /// Parses a compliance value string; unknown strings mean no access
    /// (the fail-safe direction).
    pub fn from_value_string(s: &str) -> Perm {
        Self::VALUE_SET
            .iter()
            .position(|v| *v == s)
            .map(|i| Perm(i as u8))
            .unwrap_or(Perm::NONE)
    }

    /// The Unix mode word shown for a file granted these permissions:
    /// the bits replicate to user/group/other because DisCFS identities
    /// are keys, not local uids (paper §5: the userid "has no local
    /// significance").
    pub fn mode_bits(self) -> u32 {
        (self.0 as u32) * 0o111
    }
}

impl std::fmt::Display for Perm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.value_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_set_index_is_octal() {
        for bits in 0u8..8 {
            let p = Perm::from_bits(bits);
            assert_eq!(p.bits(), bits);
            assert_eq!(Perm::from_value_string(p.value_string()), p);
        }
        assert_eq!(Perm::RWX.value_string(), "RWX");
        assert_eq!(Perm::NONE.value_string(), "false");
        assert_eq!(Perm::RW.bits(), 6);
    }

    #[test]
    fn containment() {
        assert!(Perm::RWX.contains(Perm::R));
        assert!(Perm::RWX.contains(Perm::RW));
        assert!(Perm::RW.contains(Perm::W));
        assert!(!Perm::RW.contains(Perm::X));
        assert!(!Perm::R.contains(Perm::W));
        assert!(Perm::R.contains(Perm::NONE));
    }

    #[test]
    fn set_algebra() {
        assert_eq!(Perm::R.union(Perm::W), Perm::RW);
        assert_eq!(Perm::RWX.intersect(Perm::RW), Perm::RW);
        assert!(Perm::R.intersect(Perm::W).is_none());
    }

    #[test]
    fn unknown_value_is_no_access() {
        assert_eq!(Perm::from_value_string("SUPERUSER"), Perm::NONE);
        assert_eq!(Perm::from_value_string(""), Perm::NONE);
    }

    #[test]
    fn mode_replication() {
        assert_eq!(Perm::RWX.mode_bits(), 0o777);
        assert_eq!(Perm::R.mode_bits(), 0o444);
        assert_eq!(Perm::NONE.mode_bits(), 0o000);
        assert_eq!(Perm::RW.mode_bits(), 0o666);
    }
}
