//! The credential wallet: client-side storage for credentials.
//!
//! Credentials travel out of band — "Bob only has to issue the
//! appropriate credential and send it to Alice (e.g., via email)" (§1).
//! A wallet collects what arrives, serializes to a plain-text format
//! suitable for mail/files, and finds the relevant subset to submit for
//! a given handle.

use keynote::Assertion;

use crate::perm::Perm;

/// A client-side collection of credential texts.
#[derive(Debug, Clone, Default)]
pub struct Wallet {
    credentials: Vec<String>,
}

impl Wallet {
    /// An empty wallet.
    pub fn new() -> Wallet {
        Wallet::default()
    }

    /// Adds a credential if it parses and its signature verifies;
    /// silently skips exact duplicates.
    ///
    /// # Errors
    ///
    /// The underlying [`keynote::KeyNoteError`] for malformed or
    /// forged input — a wallet must not accumulate garbage.
    pub fn add(&mut self, credential: &str) -> Result<(), keynote::KeyNoteError> {
        let assertion = Assertion::parse(credential)?;
        assertion.verify()?;
        if !self.credentials.iter().any(|c| c == credential) {
            self.credentials.push(credential.to_string());
        }
        Ok(())
    }

    /// All credentials, in insertion order.
    pub fn credentials(&self) -> &[String] {
        &self.credentials
    }

    /// Number of credentials held.
    pub fn len(&self) -> usize {
        self.credentials.len()
    }

    /// True when the wallet is empty.
    pub fn is_empty(&self) -> bool {
        self.credentials.is_empty()
    }

    /// Serializes the wallet to a mail-friendly text format.
    pub fn export_text(&self) -> String {
        let mut out = String::new();
        for cred in &self.credentials {
            out.push_str("-----BEGIN DISCFS CREDENTIAL-----\n");
            out.push_str(cred);
            if !cred.ends_with('\n') {
                out.push('\n');
            }
            out.push_str("-----END DISCFS CREDENTIAL-----\n");
        }
        out
    }

    /// Parses an exported wallet (or a mail containing credential
    /// blocks), adding every valid credential. Returns how many were
    /// added; invalid blocks are skipped (mail gets mangled).
    pub fn import_text(&mut self, text: &str) -> usize {
        let mut added = 0;
        let mut current: Option<String> = None;
        for line in text.lines() {
            match line.trim() {
                "-----BEGIN DISCFS CREDENTIAL-----" => {
                    current = Some(String::new());
                }
                "-----END DISCFS CREDENTIAL-----" => {
                    if let Some(body) = current.take() {
                        if self.add(&body).is_ok() {
                            added += 1;
                        }
                    }
                }
                _ => {
                    if let Some(body) = &mut current {
                        body.push_str(line);
                        body.push('\n');
                    }
                }
            }
        }
        added
    }

    /// The credentials that mention `handle` in their conditions — the
    /// subset worth submitting for an access to that file — plus every
    /// credential that could be an upstream chain link (those whose
    /// conditions don't name handles at all are kept conservatively).
    pub fn relevant_for(&self, handle: &str) -> Vec<&String> {
        self.credentials
            .iter()
            .filter(|c| c.contains(&format!("\"{handle}\"")) || !c.contains("HANDLE"))
            .collect()
    }

    /// Summarizes holdings: `(issuer, comment, handles)` per credential.
    pub fn inventory(&self) -> Vec<WalletEntry> {
        self.credentials
            .iter()
            .filter_map(|c| {
                let assertion = Assertion::parse(c).ok()?;
                Some(WalletEntry {
                    issuer: assertion.authorizer().to_text(),
                    comment: assertion.comment().map(|s| s.to_string()),
                    id: assertion.id(),
                })
            })
            .collect()
    }
}

/// One wallet inventory line.
#[derive(Debug, Clone)]
pub struct WalletEntry {
    /// The issuing principal.
    pub issuer: String,
    /// The credential's comment, if any.
    pub comment: Option<String>,
    /// Content id (for revocation requests).
    pub id: String,
}

/// Re-exported convenience: issue + add in one step.
impl Wallet {
    /// Issues a credential with `issuer` and stores it.
    pub fn issue_and_add(
        &mut self,
        issuer: &discfs_crypto::ed25519::SigningKey,
        holder: &discfs_crypto::ed25519::VerifyingKey,
        handle: &nfsv2::FHandle,
        perms: Perm,
    ) -> String {
        let cred = crate::cred::CredentialIssuer::new(issuer)
            .holder(holder)
            .grant(handle, perms)
            .issue();
        self.add(&cred).expect("freshly issued credentials verify");
        cred
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::CredentialIssuer;
    use discfs_crypto::ed25519::SigningKey;
    use nfsv2::FHandle;

    fn sample_credential(seed: u8, handle: &str) -> String {
        let issuer = SigningKey::from_seed(&[seed; 32]);
        let holder = SigningKey::from_seed(&[seed + 1; 32]);
        CredentialIssuer::new(&issuer)
            .holder(&holder.public())
            .grant_handle_string(handle, Perm::R)
            .comment(&format!("cred-{seed}-{handle}"))
            .issue()
    }

    #[test]
    fn add_and_dedup() {
        let mut wallet = Wallet::new();
        let cred = sample_credential(1, "5.1");
        wallet.add(&cred).unwrap();
        wallet.add(&cred).unwrap();
        assert_eq!(wallet.len(), 1);
    }

    #[test]
    fn garbage_rejected() {
        let mut wallet = Wallet::new();
        assert!(wallet.add("not a credential").is_err());
        let tampered = sample_credential(1, "5.1").replace("\"R\"", "\"RWX\"");
        assert!(wallet.add(&tampered).is_err());
        assert!(wallet.is_empty());
    }

    #[test]
    fn export_import_round_trip() {
        let mut wallet = Wallet::new();
        wallet.add(&sample_credential(1, "5.1")).unwrap();
        wallet.add(&sample_credential(3, "6.2")).unwrap();
        let text = wallet.export_text();

        let mut restored = Wallet::new();
        assert_eq!(restored.import_text(&text), 2);
        assert_eq!(restored.credentials(), wallet.credentials());
    }

    #[test]
    fn import_survives_surrounding_mail_noise() {
        let mut wallet = Wallet::new();
        wallet.add(&sample_credential(1, "5.1")).unwrap();
        let mail = format!(
            "From: bob@example.com\nSubject: access\n\nHi Alice,\nhere you go:\n\n{}\ncheers,\nbob\n",
            wallet.export_text()
        );
        let mut restored = Wallet::new();
        assert_eq!(restored.import_text(&mail), 1);
    }

    #[test]
    fn import_skips_corrupted_blocks() {
        let mut wallet = Wallet::new();
        wallet.add(&sample_credential(1, "5.1")).unwrap();
        let mut text = wallet.export_text();
        // Corrupt the signature line.
        text = text.replace("sig-ed25519", "sig-ed25518");
        let mut restored = Wallet::new();
        assert_eq!(restored.import_text(&text), 0);
    }

    #[test]
    fn relevant_selection() {
        let mut wallet = Wallet::new();
        wallet.add(&sample_credential(1, "5.1")).unwrap();
        wallet.add(&sample_credential(3, "6.2")).unwrap();
        let relevant = wallet.relevant_for("5.1");
        assert_eq!(relevant.len(), 1);
        assert!(relevant[0].contains("5.1"));
    }

    #[test]
    fn inventory_lists_metadata() {
        let mut wallet = Wallet::new();
        wallet.add(&sample_credential(1, "5.1")).unwrap();
        let inv = wallet.inventory();
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].comment.as_deref(), Some("cred-1-5.1"));
        assert!(inv[0].issuer.starts_with("ed25519-hex:"));
    }

    #[test]
    fn issue_and_add_helper() {
        let mut wallet = Wallet::new();
        let issuer = SigningKey::from_seed(&[7; 32]);
        let holder = SigningKey::from_seed(&[8; 32]);
        let handle = FHandle::pack(1, 42, 1);
        wallet.issue_and_add(&issuer, &holder.public(), &handle, Perm::RW);
        assert_eq!(wallet.len(), 1);
        assert_eq!(wallet.relevant_for("42.1").len(), 1);
    }
}
