//! The DisCFS server: a user-level NFS service whose every decision is
//! a KeyNote compliance check.
//!
//! Request flow (paper §4–§5):
//!
//! 1. The IPsec channel authenticates the client key; the server binds
//!    every request on the connection to that key ([`RequestCtx::peer`]).
//! 2. A **persistent KeyNote session** per client key holds the
//!    administrator policy plus every credential the client has
//!    submitted over the side RPC program.
//! 3. Each NFS operation asks the session what permissions the peer
//!    holds on the file's `HANDLE`; results go through the
//!    [`PolicyCache`] (default 128 entries, as in Figure 12).
//! 4. Attach semantics: everything is visible with **mode 000** until
//!    credentials arrive; GETATTR reports the *granted* permissions as
//!    the file mode, so unmodified NFS clients behave sensibly.
//! 5. CREATE/MKDIR via the side program return a fresh RWX credential
//!    for the creator, signed by the server's key (which the root
//!    policy trusts) — the paper's added procedures.

use std::collections::HashMap;
use std::sync::Arc;

use discfs_crypto::ed25519::{SigningKey, VerifyingKey};
use ffs::Ffs;
use keynote::Session;
use nfsv2::{
    DirOpArgs, FHandle, Fattr, FfsService, NfsService, NfsStat, ReaddirEntry, RequestCtx, Sattr,
    StatfsRes,
};
use onc_rpc::{AcceptStat, Decoder, Encoder};
use parking_lot::{Mutex, RwLock};
use std::time::Duration;

use crate::audit::AuditLog;
use crate::cache::{CacheKey, PolicyCache};
use crate::cred::{root_policy, CredentialIssuer};
use crate::perm::Perm;
use crate::revocation::RevocationList;
use crate::rpc::{
    encode_create_res, proc_discfs, CreateWithCredRes, DiscfsRpcStatus, DISCFS_PROGRAM,
    DISCFS_VERSION,
};

/// Server configuration.
pub struct DiscfsConfig {
    /// Filesystem id baked into handles.
    pub fsid: u32,
    /// Local policy assertions (authorizer `POLICY`).
    pub policy: Vec<String>,
    /// The server's signing key (issues CREATE/MKDIR credentials).
    pub server_key: SigningKey,
    /// Keys allowed to drive revocation remotely.
    pub admin_keys: Vec<VerifyingKey>,
    /// Policy-result cache capacity (paper: 128).
    pub cache_size: usize,
    /// Audit log capacity.
    pub audit_capacity: usize,
}

impl DiscfsConfig {
    /// The standard setup: `admin` and the server key are policy roots;
    /// `admin` may revoke; cache size 128.
    pub fn standard(admin: VerifyingKey, server_key: SigningKey) -> DiscfsConfig {
        let policy = vec![root_policy(&[admin, server_key.public()])];
        DiscfsConfig {
            fsid: 1,
            policy,
            server_key,
            admin_keys: vec![admin],
            cache_size: 128,
            audit_capacity: 4096,
        }
    }
}

/// Environment attributes exposed to policy conditions.
#[derive(Debug, Clone, Copy)]
struct Env {
    hour: u32,
    time: u64,
    epoch: u64,
}

/// Per-client-key session state.
struct PeerState {
    session: Session,
    epoch: u64,
}

/// The DisCFS service.
pub struct DiscfsService {
    storage: FfsService,
    server_key: SigningKey,
    admin_keys: Vec<VerifyingKey>,
    policy: Vec<String>,
    peers: Mutex<HashMap<[u8; 32], PeerState>>,
    epoch_counter: Mutex<u64>,
    cache: PolicyCache,
    revocations: RwLock<RevocationList>,
    audit: AuditLog,
    env: RwLock<Env>,
    /// Optional virtual-time charge per policy decision, so benchmarks
    /// account the KeyNote evaluation cost on the simulated clock.
    policy_charge: RwLock<Option<PolicyCharge>>,
    /// Baseline permissions granted to *any* authenticated key, keyed by
    /// `(inode, generation)` — the paper's §7 future-work scenario of
    /// "untrusted users characteristic of the WWW" (anonymous browsing).
    public_grants: RwLock<HashMap<(u32, u32), Perm>>,
}

/// Virtual-time cost model for policy decisions.
#[derive(Clone)]
pub struct PolicyCharge {
    /// The clock to charge.
    pub clock: netsim::SimClock,
    /// Cost of a policy-cache hit.
    pub cache_hit: Duration,
    /// Cost of a full KeyNote compliance check.
    pub cache_miss: Duration,
}

impl DiscfsService {
    /// Creates a service exporting `fs`.
    pub fn new(fs: Arc<Ffs>, config: DiscfsConfig) -> DiscfsService {
        DiscfsService {
            storage: FfsService::new(fs, config.fsid),
            server_key: config.server_key,
            admin_keys: config.admin_keys,
            policy: config.policy,
            peers: Mutex::new(HashMap::new()),
            epoch_counter: Mutex::new(1),
            cache: PolicyCache::new(config.cache_size),
            revocations: RwLock::new(RevocationList::new()),
            audit: AuditLog::new(4096),
            env: RwLock::new(Env {
                hour: 12,
                time: 0,
                epoch: 0,
            }),
            policy_charge: RwLock::new(None),
            public_grants: RwLock::new(HashMap::new()),
        }
    }

    /// Grants `perms` on `fh` to every authenticated client, with no
    /// credential required — anonymous-Web-style publication (§7 future
    /// work). The requester still authenticates a key (for auditing),
    /// but needs no delegation chain. Pass [`Perm::NONE`] to unpublish.
    pub fn set_public_access(&self, fh: &FHandle, perms: Perm) {
        let (_, ino, generation) = fh.unpack();
        {
            let mut grants = self.public_grants.write();
            if perms.is_none() {
                grants.remove(&(ino, generation));
            } else {
                grants.insert((ino, generation), perms);
            }
        }
        // Cached decisions may now be stale in either direction.
        let mut env = self.env.write();
        env.epoch += 1;
    }

    /// The public baseline permissions for a handle, if any.
    pub fn public_access(&self, fh: &FHandle) -> Perm {
        let (_, ino, generation) = fh.unpack();
        self.public_grants
            .read()
            .get(&(ino, generation))
            .copied()
            .unwrap_or(Perm::NONE)
    }

    /// Installs a virtual-time cost model for policy decisions (used by
    /// the benchmark testbed; see DESIGN.md §5).
    pub fn set_policy_charge(&self, charge: PolicyCharge) {
        *self.policy_charge.write() = Some(charge);
    }

    /// The exported storage service.
    pub fn storage(&self) -> &FfsService {
        &self.storage
    }

    /// The audit log.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// The policy cache (stats for benches).
    pub fn cache(&self) -> &PolicyCache {
        &self.cache
    }

    /// Sets the hour-of-day seen by `hour` conditions. Invalidates
    /// cached decisions.
    pub fn set_hour(&self, hour: u32) {
        let mut env = self.env.write();
        env.hour = hour % 24;
        env.epoch += 1;
        // Let the revocation list forget expired entries opportunistically.
        self.revocations.write().expire(env.time);
    }

    /// Sets the virtual wall time seen by `time` conditions (credential
    /// expiry). Invalidates cached decisions.
    pub fn set_time(&self, time: u64) {
        let mut env = self.env.write();
        env.time = time;
        env.epoch += 1;
        self.revocations.write().expire(time);
    }

    /// Revokes a key server-side (local administration path).
    pub fn revoke_key(&self, key: &VerifyingKey, forget_after: Option<u64>) {
        self.revocations.write().revoke_key(key, forget_after);
        self.purge_revoked();
    }

    /// Revokes a credential by id server-side.
    pub fn revoke_credential(&self, id: &str, forget_after: Option<u64>) {
        self.revocations.write().revoke_credential(id, forget_after);
        self.purge_revoked();
    }

    /// Removes revoked credentials from every live session and flushes
    /// the decision cache.
    fn purge_revoked(&self) {
        let revocations = self.revocations.read();
        let mut peers = self.peers.lock();
        for state in peers.values_mut() {
            state.session.retain_credentials(|a| {
                if revocations.is_credential_revoked(&a.id()) {
                    return false;
                }
                match a.authorizer().as_key() {
                    Some(key) => !revocations.is_key_revoked(key),
                    None => true,
                }
            });
        }
        drop(peers);
        self.cache.clear();
    }

    /// Runs `f` with the peer's session, creating it on first use.
    fn with_peer<R>(&self, peer: &VerifyingKey, f: impl FnOnce(&mut PeerState) -> R) -> R {
        let mut peers = self.peers.lock();
        let state = peers.entry(peer.0).or_insert_with(|| {
            let mut session = Session::new(&Perm::VALUE_SET);
            for p in &self.policy {
                session
                    .add_policy(p)
                    .expect("configured policy assertions must parse");
            }
            let mut counter = self.epoch_counter.lock();
            *counter += 1;
            PeerState {
                session,
                epoch: *counter << 20,
            }
        });
        f(state)
    }

    /// Computes the permissions `peer` holds on `fh` (cached).
    pub fn permissions_for(&self, peer: &VerifyingKey, fh: &FHandle) -> Perm {
        let env = *self.env.read();
        if self.revocations.read().is_key_revoked(peer) {
            return Perm::NONE;
        }
        let (_, ino, generation) = fh.unpack();
        self.with_peer(peer, |state| {
            let key = CacheKey {
                peer: peer.0,
                handle: (ino, generation),
                epoch: (state.epoch, env.epoch),
            };
            if let Some(perm) = self.cache.get(&key) {
                if let Some(charge) = &*self.policy_charge.read() {
                    charge.clock.advance(charge.cache_hit);
                }
                return perm;
            }
            let session = &mut state.session;
            session.clear_attributes();
            session.set_attribute("app_domain", "DisCFS");
            session.set_attribute("HANDLE", &fh.credential_string());
            session.set_attribute("hour", &env.hour.to_string());
            session.set_attribute("time", &env.time.to_string());
            session.clear_requesters();
            session.add_requester_key(peer);
            let perm = match session.query() {
                Ok(value) => Perm::from_value_string(value.as_str()),
                Err(_) => Perm::NONE,
            };
            // Public (anonymous-Web) baseline applies to everyone.
            let perm = perm.union(
                self.public_grants
                    .read()
                    .get(&(ino, generation))
                    .copied()
                    .unwrap_or(Perm::NONE),
            );
            if let Some(charge) = &*self.policy_charge.read() {
                charge.clock.advance(charge.cache_miss);
            }
            self.cache.insert(key, perm);
            perm
        })
    }

    /// Authorizes an operation: the peer must hold `required` on `fh`.
    fn authorize(
        &self,
        ctx: &RequestCtx,
        fh: &FHandle,
        required: Perm,
        op: &str,
    ) -> Result<(), NfsStat> {
        let Some(peer) = ctx.peer else {
            // No channel identity at all: nothing can be authorized.
            return Err(NfsStat::Acces);
        };
        let granted = self.permissions_for(&peer, fh);
        let allowed = granted.contains(required);
        // Log "key A was used and key B authorized" (§4.2): the issuers
        // of the session's credentials are the candidate authorizers.
        let authorizers = self.with_peer(&peer, |state| {
            state
                .session
                .credentials()
                .iter()
                .map(|a| a.authorizer().to_text())
                .collect::<Vec<_>>()
        });
        self.audit.record(
            self.env.read().time,
            &peer.0,
            op,
            &fh.credential_string(),
            required,
            granted,
            allowed,
            authorizers,
        );
        if allowed {
            Ok(())
        } else {
            Err(NfsStat::Acces)
        }
    }

    /// Issues the creator credential for a freshly created file and
    /// registers it in the creator's session (paper §5's added
    /// CREATE/MKDIR procedures).
    fn issue_creator_credential(&self, peer: &VerifyingKey, fh: &FHandle, name: &str) -> String {
        let credential = CredentialIssuer::new(&self.server_key)
            .holder(peer)
            .grant(fh, Perm::RWX)
            .comment(name)
            .issue();
        self.with_peer(peer, |state| {
            state
                .session
                .add_credential(&credential)
                .expect("server-issued credentials always verify");
            state.epoch += 1;
        });
        credential
    }

    fn submit_credential(&self, peer: &VerifyingKey, text: &str) -> DiscfsRpcStatus {
        // Revocation screening before the session sees it.
        match keynote::Assertion::parse(text) {
            Ok(assertion) => {
                let revocations = self.revocations.read();
                if revocations.is_credential_revoked(&assertion.id()) {
                    return DiscfsRpcStatus::Revoked;
                }
                if let Some(key) = assertion.authorizer().as_key() {
                    if revocations.is_key_revoked(key) {
                        return DiscfsRpcStatus::Revoked;
                    }
                }
            }
            Err(_) => return DiscfsRpcStatus::BadCredential,
        }
        self.with_peer(peer, |state| match state.session.add_credential(text) {
            Ok(()) => {
                state.epoch += 1;
                DiscfsRpcStatus::Ok
            }
            Err(_) => DiscfsRpcStatus::BadCredential,
        })
    }

    fn create_with_cred(
        &self,
        ctx: &RequestCtx,
        args: &DirOpArgs,
        mode: u32,
        mkdir: bool,
    ) -> Result<CreateWithCredRes, NfsStat> {
        let peer = ctx.peer.ok_or(NfsStat::Acces)?;
        self.authorize(
            ctx,
            &args.dir,
            Perm::W.union(Perm::X),
            if mkdir { "mkdir" } else { "create" },
        )?;
        let sattr = Sattr::with_mode(mode);
        let (fh, attr) = if mkdir {
            self.storage.mkdir(ctx, args, &sattr)?
        } else {
            self.storage.create(ctx, args, &sattr)?
        };
        let credential = self.issue_creator_credential(&peer, &fh, &args.name);
        Ok(CreateWithCredRes {
            fh,
            attr,
            credential,
        })
    }

    /// Rewrites attributes so the reported mode/owner reflect *granted*
    /// rights, not the stored Unix bits (attach semantics, §5).
    fn present(&self, ctx: &RequestCtx, fh: &FHandle, mut attr: Fattr) -> Fattr {
        let granted = match ctx.peer {
            Some(peer) => self.permissions_for(&peer, fh),
            None => Perm::NONE,
        };
        attr.mode = (attr.mode & 0o170000) | granted.mode_bits();
        if ctx.uid != u32::MAX {
            attr.uid = ctx.uid;
            attr.gid = ctx.gid;
        }
        attr
    }
}

impl NfsService for DiscfsService {
    fn mount(&self, ctx: &RequestCtx, path: &str) -> Result<FHandle, NfsStat> {
        // Attach always succeeds for authenticated peers; without
        // credentials the tree simply shows mode 000.
        if ctx.peer.is_none() {
            return Err(NfsStat::Acces);
        }
        self.storage.mount(ctx, path)
    }

    fn getattr(&self, ctx: &RequestCtx, fh: &FHandle) -> Result<Fattr, NfsStat> {
        let attr = self.storage.getattr(ctx, fh)?;
        Ok(self.present(ctx, fh, attr))
    }

    fn setattr(&self, ctx: &RequestCtx, fh: &FHandle, sattr: &Sattr) -> Result<Fattr, NfsStat> {
        // Only size/time updates are meaningful: access control lives in
        // credentials, so chmod/chown are accepted but inert (§5: the
        // setattr procedure "becomes superfluous").
        self.authorize(ctx, fh, Perm::W, "setattr")?;
        let attr = self.storage.setattr(ctx, fh, sattr)?;
        Ok(self.present(ctx, fh, attr))
    }

    fn lookup(&self, ctx: &RequestCtx, args: &DirOpArgs) -> Result<(FHandle, Fattr), NfsStat> {
        self.authorize(ctx, &args.dir, Perm::X, "lookup")?;
        let (fh, attr) = self.storage.lookup(ctx, args)?;
        let attr = self.present(ctx, &fh, attr);
        Ok((fh, attr))
    }

    fn readlink(&self, ctx: &RequestCtx, fh: &FHandle) -> Result<String, NfsStat> {
        self.authorize(ctx, fh, Perm::R, "readlink")?;
        self.storage.readlink(ctx, fh)
    }

    fn read(
        &self,
        ctx: &RequestCtx,
        fh: &FHandle,
        offset: u32,
        count: u32,
    ) -> Result<(Fattr, Vec<u8>), NfsStat> {
        self.authorize(ctx, fh, Perm::R, "read")?;
        let (attr, data) = self.storage.read(ctx, fh, offset, count)?;
        Ok((self.present(ctx, fh, attr), data))
    }

    fn write(
        &self,
        ctx: &RequestCtx,
        fh: &FHandle,
        offset: u32,
        data: &[u8],
    ) -> Result<Fattr, NfsStat> {
        self.authorize(ctx, fh, Perm::W, "write")?;
        let attr = self.storage.write(ctx, fh, offset, data)?;
        Ok(self.present(ctx, fh, attr))
    }

    fn create(
        &self,
        ctx: &RequestCtx,
        args: &DirOpArgs,
        sattr: &Sattr,
    ) -> Result<(FHandle, Fattr), NfsStat> {
        // The plain NFS CREATE path works but yields no credential —
        // exactly the §5 pitfall ("he would not be able to access the
        // newly created file"); clients should use the side program.
        self.authorize(ctx, &args.dir, Perm::W.union(Perm::X), "create")?;
        let (fh, attr) = self.storage.create(ctx, args, sattr)?;
        let attr = self.present(ctx, &fh, attr);
        Ok((fh, attr))
    }

    fn remove(&self, ctx: &RequestCtx, args: &DirOpArgs) -> Result<(), NfsStat> {
        self.authorize(ctx, &args.dir, Perm::W.union(Perm::X), "remove")?;
        self.storage.remove(ctx, args)
    }

    fn rename(&self, ctx: &RequestCtx, from: &DirOpArgs, to: &DirOpArgs) -> Result<(), NfsStat> {
        self.authorize(ctx, &from.dir, Perm::W.union(Perm::X), "rename")?;
        self.authorize(ctx, &to.dir, Perm::W.union(Perm::X), "rename")?;
        self.storage.rename(ctx, from, to)
    }

    fn link(&self, ctx: &RequestCtx, from: &FHandle, to: &DirOpArgs) -> Result<(), NfsStat> {
        self.authorize(ctx, from, Perm::R, "link")?;
        self.authorize(ctx, &to.dir, Perm::W.union(Perm::X), "link")?;
        self.storage.link(ctx, from, to)
    }

    fn symlink(
        &self,
        ctx: &RequestCtx,
        args: &DirOpArgs,
        target: &str,
        sattr: &Sattr,
    ) -> Result<(), NfsStat> {
        self.authorize(ctx, &args.dir, Perm::W.union(Perm::X), "symlink")?;
        self.storage.symlink(ctx, args, target, sattr)
    }

    fn mkdir(
        &self,
        ctx: &RequestCtx,
        args: &DirOpArgs,
        sattr: &Sattr,
    ) -> Result<(FHandle, Fattr), NfsStat> {
        self.authorize(ctx, &args.dir, Perm::W.union(Perm::X), "mkdir")?;
        let (fh, attr) = self.storage.mkdir(ctx, args, sattr)?;
        let attr = self.present(ctx, &fh, attr);
        Ok((fh, attr))
    }

    fn rmdir(&self, ctx: &RequestCtx, args: &DirOpArgs) -> Result<(), NfsStat> {
        self.authorize(ctx, &args.dir, Perm::W.union(Perm::X), "rmdir")?;
        self.storage.rmdir(ctx, args)
    }

    fn readdir(
        &self,
        ctx: &RequestCtx,
        fh: &FHandle,
        cookie: u32,
        count: u32,
    ) -> Result<(Vec<ReaddirEntry>, bool), NfsStat> {
        self.authorize(ctx, fh, Perm::R, "readdir")?;
        self.storage.readdir(ctx, fh, cookie, count)
    }

    fn statfs(&self, ctx: &RequestCtx, fh: &FHandle) -> Result<StatfsRes, NfsStat> {
        if ctx.peer.is_none() {
            return Err(NfsStat::Acces);
        }
        self.storage.statfs(ctx, fh)
    }

    fn extension(
        &self,
        ctx: &RequestCtx,
        prog: u32,
        proc_num: u32,
        args: &[u8],
    ) -> Option<Result<Vec<u8>, AcceptStat>> {
        if prog != DISCFS_PROGRAM {
            return None;
        }
        Some(self.discfs_dispatch(ctx, proc_num, args))
    }

    fn connection_closed(&self, ctx: &RequestCtx) {
        // The persistent KeyNote session ends with the connection; the
        // client resubmits credentials next time (credential caching is
        // the client wallet's job, §4.1).
        if let Some(peer) = ctx.peer {
            self.peers.lock().remove(&peer.0);
        }
    }
}

impl DiscfsService {
    fn discfs_dispatch(
        &self,
        ctx: &RequestCtx,
        proc_num: u32,
        args: &[u8],
    ) -> Result<Vec<u8>, AcceptStat> {
        let mut d = Decoder::new(args);
        let peer = match ctx.peer {
            Some(p) => p,
            None => return Err(AcceptStat::SystemErr),
        };
        match proc_num {
            proc_discfs::NULL => Ok(Vec::new()),
            proc_discfs::SUBMIT_CRED => {
                let text = d.get_string().map_err(|_| AcceptStat::GarbageArgs)?;
                let status = self.submit_credential(&peer, &text);
                let mut e = Encoder::new();
                e.put_u32(status as u32);
                Ok(e.finish())
            }
            proc_discfs::CREATE | proc_discfs::MKDIR => {
                let dir_args = DirOpArgs::decode(&mut d).map_err(|_| AcceptStat::GarbageArgs)?;
                let mode = d.get_u32().map_err(|_| AcceptStat::GarbageArgs)?;
                let result =
                    self.create_with_cred(ctx, &dir_args, mode, proc_num == proc_discfs::MKDIR);
                Ok(encode_create_res(&result))
            }
            proc_discfs::CRED_COUNT => {
                let count = self.with_peer(&peer, |state| state.session.credentials().len());
                let mut e = Encoder::new();
                e.put_u32(count as u32);
                Ok(e.finish())
            }
            proc_discfs::REVOKE_KEY => {
                if !self.admin_keys.contains(&peer) {
                    let mut e = Encoder::new();
                    e.put_u32(DiscfsRpcStatus::Denied as u32);
                    return Ok(e.finish());
                }
                let key_bytes = d
                    .get_opaque_fixed(32)
                    .map_err(|_| AcceptStat::GarbageArgs)?;
                let key_array: [u8; 32] = key_bytes.try_into().expect("32 bytes");
                let status = match VerifyingKey::from_bytes(&key_array) {
                    Ok(key) => {
                        self.revoke_key(&key, None);
                        DiscfsRpcStatus::Ok
                    }
                    Err(_) => DiscfsRpcStatus::BadCredential,
                };
                let mut e = Encoder::new();
                e.put_u32(status as u32);
                Ok(e.finish())
            }
            proc_discfs::REVOKE_CRED => {
                if !self.admin_keys.contains(&peer) {
                    let mut e = Encoder::new();
                    e.put_u32(DiscfsRpcStatus::Denied as u32);
                    return Ok(e.finish());
                }
                let id = d.get_string().map_err(|_| AcceptStat::GarbageArgs)?;
                self.revoke_credential(&id, None);
                let mut e = Encoder::new();
                e.put_u32(DiscfsRpcStatus::Ok as u32);
                Ok(e.finish())
            }
            _ => Err(AcceptStat::ProcUnavail),
        }
    }

    /// The DisCFS program/version pair served by [`Self::extension`].
    pub fn control_program() -> (u32, u32) {
        (DISCFS_PROGRAM, DISCFS_VERSION)
    }
}
