//! The DisCFS server: a user-level NFS service whose every decision is
//! a KeyNote compliance check.
//!
//! Request flow (paper §4–§5):
//!
//! 1. The IPsec channel authenticates the client key; the server binds
//!    every request on the connection to that key ([`RequestCtx::peer`]).
//! 2. A **persistent KeyNote session** per client key holds the
//!    administrator policy plus every credential the client has
//!    submitted over the side RPC program.
//! 3. Each NFS operation asks the session what permissions the peer
//!    holds on the file's `HANDLE`; results go through the
//!    [`PolicyCache`] (default 128 entries, as in Figure 12).
//! 4. Attach semantics: everything is visible with **mode 000** until
//!    credentials arrive; GETATTR reports the *granted* permissions as
//!    the file mode, so unmodified NFS clients behave sensibly.
//! 5. CREATE/MKDIR via the side program return a fresh RWX credential
//!    for the creator, signed by the server's key (which the root
//!    policy trusts) — the paper's added procedures.
//!
//! # Authorization hot path
//!
//! N concurrent clients must not convoy on server-global locks when
//! their decisions are already cached (the whole point of Figure 12's
//! policy cache). The state is laid out so a **cache hit touches no
//! session and no global lock at all**:
//!
//! * The peer-session table is split into [`PEER_SHARDS`] shards keyed
//!   on the client key's first byte, each a `RwLock<HashMap>` of
//!   [`Arc<PeerState>`]. The hot path takes a shard *read* lock just
//!   long enough to clone the Arc.
//! * Each [`PeerState`] carries an `AtomicU64` **credential epoch**
//!   (bumped on credential add and revocation purge) read with a plain
//!   atomic load; the KeyNote [`Session`] behind its own `Mutex` is
//!   only locked on cache misses and credential mutations.
//! * The environment (`hour`, `time`, global epoch) is three atomics;
//!   the per-decision virtual-time charge is a read-mostly
//!   `Arc`-swap cell.
//! * The [`PolicyCache`] itself is sharded with read-lock hits.
//!
//! [`DiscfsService::auth_stats`] counts every exclusive-lock
//! acquisition on this path so benchmarks can pin the invariant:
//! a cache-hit authorization performs **zero** exclusive acquisitions.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use discfs_crypto::ed25519::{SigningKey, VerifyingKey};
use ffs::Ffs;
use keynote::Session;
use nfsv2::{
    DirOpArgs, FHandle, Fattr, FfsService, NfsService, NfsStat, ReaddirEntry, RequestCtx, Sattr,
    StatfsRes,
};
use onc_rpc::{AcceptStat, Decoder, Encoder};
use parking_lot::{Mutex, RwLock};
use std::time::Duration;

use crate::audit::AuditLog;
use crate::cache::{CacheKey, PolicyCache};
use crate::cred::{root_policy, CredentialIssuer};
use crate::perm::Perm;
use crate::revocation::RevocationList;
use crate::rpc::{
    encode_create_res, proc_discfs, CreateWithCredRes, DiscfsRpcStatus, DISCFS_PROGRAM,
    DISCFS_VERSION,
};

/// Default peer-session shard-count hint (the ROADMAP's adaptive
/// peer-shard count sizes the real table from
/// [`DiscfsConfig::peer_shards`]; this is what
/// [`DiscfsConfig::standard`] asks for). Sessions hash on the key's
/// first byte: Ed25519 public keys are uniformly distributed, so
/// shard load is even no matter how clients arrive.
pub const PEER_SHARDS: usize = 16;

/// Hard ceiling on the peer-session shard count: routing keys on the
/// public key's first byte, so more than 256 shards can never be
/// addressed.
pub const MAX_PEER_SHARDS: usize = 256;

/// Server configuration.
pub struct DiscfsConfig {
    /// Filesystem id baked into handles.
    pub fsid: u32,
    /// Local policy assertions (authorizer `POLICY`).
    pub policy: Vec<String>,
    /// The server's signing key (issues CREATE/MKDIR credentials).
    pub server_key: SigningKey,
    /// Keys allowed to drive revocation remotely.
    pub admin_keys: Vec<VerifyingKey>,
    /// Policy-result cache capacity (paper: 128).
    pub cache_size: usize,
    /// Audit log capacity.
    pub audit_capacity: usize,
    /// Hint for the expected concurrent client population: sizes the
    /// peer-session shard count (clamped to a power of two in
    /// `[1, `[`MAX_PEER_SHARDS`]`]`) and the policy-cache shard
    /// geometry. Default [`PEER_SHARDS`] — a deployment expecting
    /// thousands of concurrent tenants raises it so the session table
    /// and decision cache spread over more locks.
    pub peer_shards: usize,
}

impl DiscfsConfig {
    /// The standard setup: `admin` and the server key are policy roots;
    /// `admin` may revoke; cache size 128; [`PEER_SHARDS`] shard hint.
    pub fn standard(admin: VerifyingKey, server_key: SigningKey) -> DiscfsConfig {
        let policy = vec![root_policy(&[admin, server_key.public()])];
        DiscfsConfig {
            fsid: 1,
            policy,
            server_key,
            admin_keys: vec![admin],
            cache_size: 128,
            audit_capacity: 4096,
            peer_shards: PEER_SHARDS,
        }
    }

    /// The peer-session shard count this config resolves to: the hint
    /// rounded up to a power of two and clamped to
    /// `[1, `[`MAX_PEER_SHARDS`]`]` — a power of two keeps the
    /// first-byte routing a mask, and uneven counts would skew the
    /// uniform key distribution.
    pub fn resolved_peer_shards(&self) -> usize {
        // Clamp first so the rounding can never overflow; rounding a
        // clamped value stays within the ceiling (256 is itself a
        // power of two).
        self.peer_shards
            .clamp(1, MAX_PEER_SHARDS)
            .next_power_of_two()
    }
}

/// Per-client-key session state, shared between the shard map and any
/// request currently using it.
struct PeerState {
    /// Credential epoch: the high bits are a server-wide session
    /// counter (so a reconnected peer never matches the old session's
    /// cache entries), the low bits count credential changes.
    epoch: AtomicU64,
    /// The persistent KeyNote session — locked only on cache misses
    /// and credential mutations, never on the cache-hit path.
    session: Mutex<Session>,
    /// Cached audit authorizer list (issuer keys of the session's
    /// credentials), rebuilt only when the credential set changes —
    /// i.e. exactly when `epoch` bumps. Appending an audit record is a
    /// refcount bump, not a re-serialization of every credential.
    authorizers: RwLock<Arc<Vec<String>>>,
}

impl PeerState {
    /// The shared authorizer-list handle for audit records.
    fn authorizers(&self) -> Arc<Vec<String>> {
        self.authorizers.read().clone()
    }

    /// Rebuilds the cached authorizer list from `session` and bumps the
    /// credential epoch. Call with the session mutated (credential
    /// added or purged) while still holding its lock, so a concurrent
    /// miss that observes the new epoch also observes the new
    /// credential set.
    fn credentials_changed(&self, session: &Session) {
        let list: Vec<String> = session
            .credentials()
            .iter()
            .map(|a| a.authorizer().to_text())
            .collect();
        *self.authorizers.write() = Arc::new(list);
        self.epoch.fetch_add(1, Ordering::Release);
    }
}

/// Exclusive/shared lock-acquisition and decision counters for the
/// authorization path — the instrumentation behind the "cache hits
/// take no exclusive lock" guarantee (see the module docs).
#[derive(Debug, Default)]
pub struct AuthStats {
    exclusive: AtomicU64,
    shared: AtomicU64,
    decisions: AtomicU64,
}

impl AuthStats {
    /// Exclusive acquisitions on the authorization path: peer-shard
    /// write locks, session mutexes, and policy-cache inserts. Zero
    /// across a run means every decision was served lock-free from the
    /// cache.
    pub fn exclusive(&self) -> u64 {
        self.exclusive.load(Ordering::Relaxed)
    }

    /// Shared (read-lock) acquisitions — these scale across clients.
    pub fn shared(&self) -> u64 {
        self.shared.load(Ordering::Relaxed)
    }

    /// Policy decisions resolved ([`DiscfsService::permissions_for`]
    /// calls). Each performs exactly one policy-cache lookup, so
    /// `decisions == cache hits + cache misses` at all times.
    pub fn decisions(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }
}

/// The DisCFS service.
pub struct DiscfsService {
    storage: FfsService,
    server_key: SigningKey,
    admin_keys: Vec<VerifyingKey>,
    policy: Vec<String>,
    peer_shards: Vec<RwLock<HashMap<[u8; 32], Arc<PeerState>>>>,
    /// Server-wide session counter feeding new peers' epoch high bits.
    epoch_counter: AtomicU64,
    cache: PolicyCache,
    revocations: RwLock<RevocationList>,
    audit: AuditLog,
    /// Environment attributes exposed to policy conditions — atomics,
    /// read on every decision without taking any lock.
    env_hour: AtomicU32,
    env_time: AtomicU64,
    /// Global invalidation epoch: bumped by time/hour changes, public
    /// grant changes, and revocations.
    env_epoch: AtomicU64,
    /// Optional virtual-time charge per policy decision, so benchmarks
    /// account the KeyNote evaluation cost on the simulated clock.
    /// Read-mostly Arc-swap cell: readers clone the Arc under a read
    /// lock held for nanoseconds; writers swap the whole Arc.
    policy_charge: RwLock<Option<Arc<PolicyCharge>>>,
    /// Baseline permissions granted to *any* authenticated key, keyed by
    /// `(inode, generation)` — the paper's §7 future-work scenario of
    /// "untrusted users characteristic of the WWW" (anonymous browsing).
    public_grants: RwLock<HashMap<(u32, u32), Perm>>,
    auth_stats: AuthStats,
}

/// Virtual-time cost model for policy decisions.
#[derive(Clone)]
pub struct PolicyCharge {
    /// The clock to charge.
    pub clock: netsim::SimClock,
    /// Cost of a policy-cache hit.
    pub cache_hit: Duration,
    /// Cost of a full KeyNote compliance check.
    pub cache_miss: Duration,
}

impl DiscfsService {
    /// Creates a service exporting `fs`.
    pub fn new(fs: Arc<Ffs>, config: DiscfsConfig) -> DiscfsService {
        let peer_shards = config.resolved_peer_shards();
        DiscfsService {
            storage: FfsService::new(fs, config.fsid),
            server_key: config.server_key,
            admin_keys: config.admin_keys,
            policy: config.policy,
            peer_shards: (0..peer_shards)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            epoch_counter: AtomicU64::new(1),
            cache: PolicyCache::with_shard_hint(config.cache_size, peer_shards),
            revocations: RwLock::new(RevocationList::new()),
            audit: AuditLog::new(config.audit_capacity),
            env_hour: AtomicU32::new(12),
            env_time: AtomicU64::new(0),
            env_epoch: AtomicU64::new(0),
            policy_charge: RwLock::new(None),
            public_grants: RwLock::new(HashMap::new()),
            auth_stats: AuthStats::default(),
        }
    }

    /// Grants `perms` on `fh` to every authenticated client, with no
    /// credential required — anonymous-Web-style publication (§7 future
    /// work). The requester still authenticates a key (for auditing),
    /// but needs no delegation chain. Pass [`Perm::NONE`] to unpublish.
    pub fn set_public_access(&self, fh: &FHandle, perms: Perm) {
        let (_, ino, generation) = fh.unpack();
        {
            let mut grants = self.public_grants.write();
            if perms.is_none() {
                grants.remove(&(ino, generation));
            } else {
                grants.insert((ino, generation), perms);
            }
        }
        // Cached decisions may now be stale in either direction.
        self.env_epoch.fetch_add(1, Ordering::Release);
    }

    /// The public baseline permissions for a handle, if any.
    pub fn public_access(&self, fh: &FHandle) -> Perm {
        let (_, ino, generation) = fh.unpack();
        self.public_grants
            .read()
            .get(&(ino, generation))
            .copied()
            .unwrap_or(Perm::NONE)
    }

    /// Installs a virtual-time cost model for policy decisions (used by
    /// the benchmark testbed; see DESIGN.md §5).
    pub fn set_policy_charge(&self, charge: PolicyCharge) {
        *self.policy_charge.write() = Some(Arc::new(charge));
    }

    /// Removes the policy-decision cost model (wall-clock benchmarks
    /// that want the raw code path, no virtual-clock traffic).
    pub fn clear_policy_charge(&self) {
        *self.policy_charge.write() = None;
    }

    fn charge(&self) -> Option<Arc<PolicyCharge>> {
        self.policy_charge.read().clone()
    }

    /// The exported storage service.
    pub fn storage(&self) -> &FfsService {
        &self.storage
    }

    /// The audit log.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// The policy cache (stats for benches).
    pub fn cache(&self) -> &PolicyCache {
        &self.cache
    }

    /// Authorization-path lock and decision counters.
    pub fn auth_stats(&self) -> &AuthStats {
        &self.auth_stats
    }

    /// The resolved peer-session shard count (always a power of two —
    /// see [`DiscfsConfig::resolved_peer_shards`]).
    pub fn peer_shard_count(&self) -> usize {
        self.peer_shards.len()
    }

    /// The shard holding `peer`'s session. The count is a power of
    /// two, so first-byte routing is a mask.
    fn peer_shard(&self, peer: &VerifyingKey) -> &RwLock<HashMap<[u8; 32], Arc<PeerState>>> {
        &self.peer_shards[peer.0[0] as usize & (self.peer_shards.len() - 1)]
    }

    /// Sets the hour-of-day seen by `hour` conditions. Invalidates
    /// cached decisions.
    ///
    /// Mutate-then-bump discipline (shared with `purge_revoked` and
    /// `set_public_access`): every state change — the hour itself and
    /// the opportunistic revocation expiry — lands *before* the epoch
    /// bump, so a decision cached under the new epoch can only reflect
    /// the new state. (A decision that raced the mutation caches under
    /// the old epoch, which the bump retires.)
    pub fn set_hour(&self, hour: u32) {
        self.env_hour.store(hour % 24, Ordering::Relaxed);
        // Let the revocation list forget expired entries opportunistically.
        let time = self.env_time.load(Ordering::Relaxed);
        self.revocations.write().expire(time);
        self.env_epoch.fetch_add(1, Ordering::Release);
    }

    /// Sets the virtual wall time seen by `time` conditions (credential
    /// expiry). Invalidates cached decisions. Same mutate-then-bump
    /// ordering as [`DiscfsService::set_hour`] — expiring lapsed
    /// revocations before the bump, so a `forget_after` revocation
    /// that ends at `time` cannot leave a stale `NONE` cached under
    /// the new epoch.
    pub fn set_time(&self, time: u64) {
        self.env_time.store(time, Ordering::Relaxed);
        self.revocations.write().expire(time);
        self.env_epoch.fetch_add(1, Ordering::Release);
    }

    /// Revokes a key server-side (local administration path).
    pub fn revoke_key(&self, key: &VerifyingKey, forget_after: Option<u64>) {
        self.revocations.write().revoke_key(key, forget_after);
        self.purge_revoked();
    }

    /// Revokes a credential by id server-side.
    pub fn revoke_credential(&self, id: &str, forget_after: Option<u64>) {
        self.revocations.write().revoke_credential(id, forget_after);
        self.purge_revoked();
    }

    /// Removes revoked credentials from every live session and
    /// invalidates cached decisions — twice over: every touched peer's
    /// credential epoch is bumped (so a stale [`CacheKey`] can never
    /// resurrect a revoked grant, even if the shared cache were
    /// replaced or resized concurrently), the global epoch is bumped,
    /// and the decision cache is flushed.
    fn purge_revoked(&self) {
        let revocations = self.revocations.read();
        for shard in &self.peer_shards {
            // Read lock on the shard map: peers mutate through their
            // own Arc'd state, the map itself is untouched.
            for state in shard.read().values() {
                let mut session = state.session.lock();
                session.retain_credentials(|a| {
                    if revocations.is_credential_revoked(&a.id()) {
                        return false;
                    }
                    match a.authorizer().as_key() {
                        Some(key) => !revocations.is_key_revoked(key),
                        None => true,
                    }
                });
                state.credentials_changed(&session);
            }
        }
        drop(revocations);
        self.env_epoch.fetch_add(1, Ordering::Release);
        self.cache.clear();
    }

    /// The peer's shared session state, created on first use. The
    /// steady-state path is a shard read lock plus an Arc clone.
    fn peer_state(&self, peer: &VerifyingKey) -> Arc<PeerState> {
        let shard = self.peer_shard(peer);
        self.auth_stats.shared.fetch_add(1, Ordering::Relaxed);
        if let Some(state) = shard.read().get(&peer.0) {
            return state.clone();
        }
        self.auth_stats.exclusive.fetch_add(1, Ordering::Relaxed);
        let mut map = shard.write();
        map.entry(peer.0)
            .or_insert_with(|| {
                let mut session = Session::new(&Perm::VALUE_SET);
                for p in &self.policy {
                    session
                        .add_policy(p)
                        .expect("configured policy assertions must parse");
                }
                let counter = self.epoch_counter.fetch_add(1, Ordering::Relaxed) + 1;
                Arc::new(PeerState {
                    epoch: AtomicU64::new(counter << 20),
                    session: Mutex::new(session),
                    authorizers: RwLock::new(Arc::new(Vec::new())),
                })
            })
            .clone()
    }

    /// Computes the permissions `peer` holds on `fh` (cached).
    pub fn permissions_for(&self, peer: &VerifyingKey, fh: &FHandle) -> Perm {
        let state = self.peer_state(peer);
        self.decide(peer, &state, fh)
    }

    /// Resolves one policy decision. The cache-hit path is shard reads
    /// and atomic loads only; misses fall through to the KeyNote query
    /// under the peer's session lock.
    fn decide(&self, peer: &VerifyingKey, state: &PeerState, fh: &FHandle) -> Perm {
        self.auth_stats.decisions.fetch_add(1, Ordering::Relaxed);
        let env_epoch = self.env_epoch.load(Ordering::Acquire);
        let peer_epoch = state.epoch.load(Ordering::Acquire);
        let (_, ino, generation) = fh.unpack();
        let key = CacheKey {
            peer: peer.0,
            handle: (ino, generation),
            epoch: (peer_epoch, env_epoch),
        };
        if let Some(perm) = self.cache.get(&key) {
            if let Some(charge) = self.charge() {
                charge.clock.advance(charge.cache_hit);
            }
            return perm;
        }
        // Miss path: revocation screen, full compliance check, public
        // baseline, insert. Revocation is checked here rather than per
        // request — any revocation bumps the epochs above, so no cached
        // decision can outlive it. (Scoped so the read guard is not
        // held across the KeyNote query.)
        let key_revoked = { self.revocations.read().is_key_revoked(peer) };
        let perm = if key_revoked {
            Perm::NONE
        } else {
            self.auth_stats.exclusive.fetch_add(1, Ordering::Relaxed);
            let mut session = state.session.lock();
            session.clear_attributes();
            session.set_attribute("app_domain", "DisCFS");
            session.set_attribute("HANDLE", &fh.credential_string());
            session.set_attribute("hour", &self.env_hour.load(Ordering::Relaxed).to_string());
            session.set_attribute("time", &self.env_time.load(Ordering::Relaxed).to_string());
            session.clear_requesters();
            session.add_requester_key(peer);
            let queried = match session.query() {
                Ok(value) => Perm::from_value_string(value.as_str()),
                Err(_) => Perm::NONE,
            };
            drop(session);
            // Public (anonymous-Web) baseline applies to everyone.
            queried.union(
                self.public_grants
                    .read()
                    .get(&(ino, generation))
                    .copied()
                    .unwrap_or(Perm::NONE),
            )
        };
        if let Some(charge) = self.charge() {
            charge.clock.advance(charge.cache_miss);
        }
        self.auth_stats.exclusive.fetch_add(1, Ordering::Relaxed);
        self.cache.insert(key, perm);
        perm
    }

    /// The permissions the requester holds on `fh` (NONE when the
    /// channel carries no identity) — the attach-semantics input to
    /// [`DiscfsService::present`].
    fn granted_for(&self, ctx: &RequestCtx, fh: &FHandle) -> Perm {
        match ctx.peer {
            Some(peer) => self.permissions_for(&peer, fh),
            None => Perm::NONE,
        }
    }

    /// Authorizes an operation: the peer must hold `required` on `fh`.
    /// Returns the full granted permission set so callers can thread it
    /// into [`DiscfsService::present`] without a second lookup.
    fn authorize(
        &self,
        ctx: &RequestCtx,
        fh: &FHandle,
        required: Perm,
        op: &str,
    ) -> Result<Perm, NfsStat> {
        let Some(peer) = ctx.peer else {
            // No channel identity at all: nothing can be authorized.
            return Err(NfsStat::Acces);
        };
        let state = self.peer_state(&peer);
        let granted = self.decide(&peer, &state, fh);
        let allowed = granted.contains(required);
        // Log "key A was used and key B authorized" (§4.2): the issuers
        // of the session's credentials are the candidate authorizers —
        // a cached shared handle, rebuilt only on credential changes.
        self.audit.record(
            self.env_time.load(Ordering::Relaxed),
            &peer.0,
            op,
            &fh.credential_string(),
            required,
            granted,
            allowed,
            state.authorizers(),
        );
        if allowed {
            Ok(granted)
        } else {
            Err(NfsStat::Acces)
        }
    }

    /// Issues the creator credential for a freshly created file and
    /// registers it in the creator's session (paper §5's added
    /// CREATE/MKDIR procedures).
    fn issue_creator_credential(&self, peer: &VerifyingKey, fh: &FHandle, name: &str) -> String {
        let credential = CredentialIssuer::new(&self.server_key)
            .holder(peer)
            .grant(fh, Perm::RWX)
            .comment(name)
            .issue();
        let state = self.peer_state(peer);
        let mut session = state.session.lock();
        session
            .add_credential(&credential)
            .expect("server-issued credentials always verify");
        state.credentials_changed(&session);
        credential
    }

    fn submit_credential(&self, peer: &VerifyingKey, text: &str) -> DiscfsRpcStatus {
        // Revocation screening before the session sees it.
        match keynote::Assertion::parse(text) {
            Ok(assertion) => {
                let revocations = self.revocations.read();
                if revocations.is_credential_revoked(&assertion.id()) {
                    return DiscfsRpcStatus::Revoked;
                }
                if let Some(key) = assertion.authorizer().as_key() {
                    if revocations.is_key_revoked(key) {
                        return DiscfsRpcStatus::Revoked;
                    }
                }
            }
            Err(_) => return DiscfsRpcStatus::BadCredential,
        }
        let state = self.peer_state(peer);
        let mut session = state.session.lock();
        match session.add_credential(text) {
            Ok(()) => {
                state.credentials_changed(&session);
                DiscfsRpcStatus::Ok
            }
            Err(_) => DiscfsRpcStatus::BadCredential,
        }
    }

    fn create_with_cred(
        &self,
        ctx: &RequestCtx,
        args: &DirOpArgs,
        mode: u32,
        mkdir: bool,
    ) -> Result<CreateWithCredRes, NfsStat> {
        let peer = ctx.peer.ok_or(NfsStat::Acces)?;
        self.authorize(
            ctx,
            &args.dir,
            Perm::W.union(Perm::X),
            if mkdir { "mkdir" } else { "create" },
        )?;
        let sattr = Sattr::with_mode(mode);
        let (fh, attr) = if mkdir {
            self.storage.mkdir(ctx, args, &sattr)?
        } else {
            self.storage.create(ctx, args, &sattr)?
        };
        let credential = self.issue_creator_credential(&peer, &fh, &args.name);
        Ok(CreateWithCredRes {
            fh,
            attr,
            credential,
        })
    }

    /// Rewrites attributes so the reported mode/owner reflect *granted*
    /// rights, not the stored Unix bits (attach semantics, §5). The
    /// caller supplies `granted` — typically straight from
    /// [`DiscfsService::authorize`] — so presentation never re-queries
    /// the policy for a handle that was just decided.
    fn present(&self, ctx: &RequestCtx, granted: Perm, mut attr: Fattr) -> Fattr {
        attr.mode = (attr.mode & 0o170000) | granted.mode_bits();
        if ctx.uid != u32::MAX {
            attr.uid = ctx.uid;
            attr.gid = ctx.gid;
        }
        attr
    }
}

impl NfsService for DiscfsService {
    fn mount(&self, ctx: &RequestCtx, path: &str) -> Result<FHandle, NfsStat> {
        // Attach always succeeds for authenticated peers; without
        // credentials the tree simply shows mode 000.
        if ctx.peer.is_none() {
            return Err(NfsStat::Acces);
        }
        self.storage.mount(ctx, path)
    }

    fn getattr(&self, ctx: &RequestCtx, fh: &FHandle) -> Result<Fattr, NfsStat> {
        let attr = self.storage.getattr(ctx, fh)?;
        let granted = self.granted_for(ctx, fh);
        Ok(self.present(ctx, granted, attr))
    }

    fn setattr(&self, ctx: &RequestCtx, fh: &FHandle, sattr: &Sattr) -> Result<Fattr, NfsStat> {
        // Only size/time updates are meaningful: access control lives in
        // credentials, so chmod/chown are accepted but inert (§5: the
        // setattr procedure "becomes superfluous").
        let granted = self.authorize(ctx, fh, Perm::W, "setattr")?;
        let attr = self.storage.setattr(ctx, fh, sattr)?;
        Ok(self.present(ctx, granted, attr))
    }

    fn lookup(&self, ctx: &RequestCtx, args: &DirOpArgs) -> Result<(FHandle, Fattr), NfsStat> {
        self.authorize(ctx, &args.dir, Perm::X, "lookup")?;
        let (fh, attr) = self.storage.lookup(ctx, args)?;
        // One decision for the directory, one for the child (its mode
        // must reflect the rights granted on *it*) — distinct handles,
        // so neither lookup is redundant.
        let granted = self.granted_for(ctx, &fh);
        let attr = self.present(ctx, granted, attr);
        Ok((fh, attr))
    }

    fn readlink(&self, ctx: &RequestCtx, fh: &FHandle) -> Result<String, NfsStat> {
        self.authorize(ctx, fh, Perm::R, "readlink")?;
        self.storage.readlink(ctx, fh)
    }

    fn read(
        &self,
        ctx: &RequestCtx,
        fh: &FHandle,
        offset: u32,
        count: u32,
    ) -> Result<(Fattr, Vec<u8>), NfsStat> {
        let granted = self.authorize(ctx, fh, Perm::R, "read")?;
        let (attr, data) = self.storage.read(ctx, fh, offset, count)?;
        Ok((self.present(ctx, granted, attr), data))
    }

    fn write(
        &self,
        ctx: &RequestCtx,
        fh: &FHandle,
        offset: u32,
        data: &[u8],
    ) -> Result<Fattr, NfsStat> {
        let granted = self.authorize(ctx, fh, Perm::W, "write")?;
        let attr = self.storage.write(ctx, fh, offset, data)?;
        Ok(self.present(ctx, granted, attr))
    }

    fn create(
        &self,
        ctx: &RequestCtx,
        args: &DirOpArgs,
        sattr: &Sattr,
    ) -> Result<(FHandle, Fattr), NfsStat> {
        // The plain NFS CREATE path works but yields no credential —
        // exactly the §5 pitfall ("he would not be able to access the
        // newly created file"); clients should use the side program.
        self.authorize(ctx, &args.dir, Perm::W.union(Perm::X), "create")?;
        let (fh, attr) = self.storage.create(ctx, args, sattr)?;
        let granted = self.granted_for(ctx, &fh);
        let attr = self.present(ctx, granted, attr);
        Ok((fh, attr))
    }

    fn remove(&self, ctx: &RequestCtx, args: &DirOpArgs) -> Result<(), NfsStat> {
        self.authorize(ctx, &args.dir, Perm::W.union(Perm::X), "remove")?;
        self.storage.remove(ctx, args)
    }

    fn rename(&self, ctx: &RequestCtx, from: &DirOpArgs, to: &DirOpArgs) -> Result<(), NfsStat> {
        self.authorize(ctx, &from.dir, Perm::W.union(Perm::X), "rename")?;
        self.authorize(ctx, &to.dir, Perm::W.union(Perm::X), "rename")?;
        self.storage.rename(ctx, from, to)
    }

    fn link(&self, ctx: &RequestCtx, from: &FHandle, to: &DirOpArgs) -> Result<(), NfsStat> {
        self.authorize(ctx, from, Perm::R, "link")?;
        self.authorize(ctx, &to.dir, Perm::W.union(Perm::X), "link")?;
        self.storage.link(ctx, from, to)
    }

    fn symlink(
        &self,
        ctx: &RequestCtx,
        args: &DirOpArgs,
        target: &str,
        sattr: &Sattr,
    ) -> Result<(), NfsStat> {
        self.authorize(ctx, &args.dir, Perm::W.union(Perm::X), "symlink")?;
        self.storage.symlink(ctx, args, target, sattr)
    }

    fn mkdir(
        &self,
        ctx: &RequestCtx,
        args: &DirOpArgs,
        sattr: &Sattr,
    ) -> Result<(FHandle, Fattr), NfsStat> {
        self.authorize(ctx, &args.dir, Perm::W.union(Perm::X), "mkdir")?;
        let (fh, attr) = self.storage.mkdir(ctx, args, sattr)?;
        let granted = self.granted_for(ctx, &fh);
        let attr = self.present(ctx, granted, attr);
        Ok((fh, attr))
    }

    fn rmdir(&self, ctx: &RequestCtx, args: &DirOpArgs) -> Result<(), NfsStat> {
        self.authorize(ctx, &args.dir, Perm::W.union(Perm::X), "rmdir")?;
        self.storage.rmdir(ctx, args)
    }

    fn readdir(
        &self,
        ctx: &RequestCtx,
        fh: &FHandle,
        cookie: u32,
        count: u32,
    ) -> Result<(Vec<ReaddirEntry>, bool), NfsStat> {
        self.authorize(ctx, fh, Perm::R, "readdir")?;
        self.storage.readdir(ctx, fh, cookie, count)
    }

    fn statfs(&self, ctx: &RequestCtx, fh: &FHandle) -> Result<StatfsRes, NfsStat> {
        if ctx.peer.is_none() {
            return Err(NfsStat::Acces);
        }
        self.storage.statfs(ctx, fh)
    }

    fn extension(
        &self,
        ctx: &RequestCtx,
        prog: u32,
        proc_num: u32,
        args: &[u8],
    ) -> Option<Result<Vec<u8>, AcceptStat>> {
        if prog != DISCFS_PROGRAM {
            return None;
        }
        Some(self.discfs_dispatch(ctx, proc_num, args))
    }

    fn connection_closed(&self, ctx: &RequestCtx) {
        // The persistent KeyNote session ends with the connection; the
        // client resubmits credentials next time (credential caching is
        // the client wallet's job, §4.1).
        if let Some(peer) = ctx.peer {
            self.peer_shard(&peer).write().remove(&peer.0);
        }
    }

    fn connection_aborted(&self, ctx: &RequestCtx, reason: &str) {
        // A protocol violation (malformed frame, broken record stream)
        // is an auditable event: log which authenticated key sent
        // garbage before the session state is torn down.
        let peer = ctx.peer.map(|p| p.0).unwrap_or([0u8; 32]);
        self.audit.record(
            self.env_time.load(Ordering::Relaxed),
            &peer,
            "abort",
            reason,
            Perm::NONE,
            Perm::NONE,
            false,
            std::sync::Arc::new(Vec::new()),
        );
    }
}

impl DiscfsService {
    fn discfs_dispatch(
        &self,
        ctx: &RequestCtx,
        proc_num: u32,
        args: &[u8],
    ) -> Result<Vec<u8>, AcceptStat> {
        let mut d = Decoder::new(args);
        let peer = match ctx.peer {
            Some(p) => p,
            None => return Err(AcceptStat::SystemErr),
        };
        match proc_num {
            proc_discfs::NULL => Ok(Vec::new()),
            proc_discfs::SUBMIT_CRED => {
                let text = d.get_string().map_err(|_| AcceptStat::GarbageArgs)?;
                let status = self.submit_credential(&peer, &text);
                let mut e = Encoder::new();
                e.put_u32(status as u32);
                Ok(e.finish())
            }
            proc_discfs::CREATE | proc_discfs::MKDIR => {
                let dir_args = DirOpArgs::decode(&mut d).map_err(|_| AcceptStat::GarbageArgs)?;
                let mode = d.get_u32().map_err(|_| AcceptStat::GarbageArgs)?;
                let result =
                    self.create_with_cred(ctx, &dir_args, mode, proc_num == proc_discfs::MKDIR);
                Ok(encode_create_res(&result))
            }
            proc_discfs::CRED_COUNT => {
                let state = self.peer_state(&peer);
                let count = state.session.lock().credentials().len();
                let mut e = Encoder::new();
                e.put_u32(count as u32);
                Ok(e.finish())
            }
            proc_discfs::REVOKE_KEY => {
                if !self.admin_keys.contains(&peer) {
                    let mut e = Encoder::new();
                    e.put_u32(DiscfsRpcStatus::Denied as u32);
                    return Ok(e.finish());
                }
                let key_bytes = d
                    .get_opaque_fixed(32)
                    .map_err(|_| AcceptStat::GarbageArgs)?;
                let key_array: [u8; 32] = key_bytes.try_into().expect("32 bytes");
                let status = match VerifyingKey::from_bytes(&key_array) {
                    Ok(key) => {
                        self.revoke_key(&key, None);
                        DiscfsRpcStatus::Ok
                    }
                    Err(_) => DiscfsRpcStatus::BadCredential,
                };
                let mut e = Encoder::new();
                e.put_u32(status as u32);
                Ok(e.finish())
            }
            proc_discfs::REVOKE_CRED => {
                if !self.admin_keys.contains(&peer) {
                    let mut e = Encoder::new();
                    e.put_u32(DiscfsRpcStatus::Denied as u32);
                    return Ok(e.finish());
                }
                let id = d.get_string().map_err(|_| AcceptStat::GarbageArgs)?;
                self.revoke_credential(&id, None);
                let mut e = Encoder::new();
                e.put_u32(DiscfsRpcStatus::Ok as u32);
                Ok(e.finish())
            }
            _ => Err(AcceptStat::ProcUnavail),
        }
    }

    /// The DisCFS program/version pair served by [`Self::extension`].
    pub fn control_program() -> (u32, u32) {
        (DISCFS_PROGRAM, DISCFS_VERSION)
    }
}
