//! DisCFS — the Distributed Credential Filesystem.
//!
//! A Rust reproduction of the system described in *"Secure and Flexible
//! Global File Sharing"* (Miltchev, Prevelakis, Ioannidis, Keromytis,
//! Smith). Under DisCFS, **credentials identify both the files stored
//! in the file system and the users permitted to access them**, as well
//! as the circumstances under which access is allowed. Users delegate
//! access rights simply by issuing new credentials, so files can be
//! shared with remote users the server has never heard of — no accounts,
//! no ACLs, no administrator in the loop.
//!
//! # Architecture (paper §4–§5)
//!
//! * Identity — the client's Ed25519 key, authenticated by the IKE
//!   handshake of the [`ipsec`] channel. All NFS requests on the
//!   connection are bound to that key.
//! * Authorization — [`keynote`] compliance checks: the administrator's
//!   local policy delegates to user keys through chains of signed
//!   credentials; each query returns a value from the 8-element
//!   permission lattice ([`Perm`]), whose index is the octal mode.
//! * Files — handles are `(inode, generation)` pairs served by the
//!   [`ffs`] volume via the [`nfsv2`] protocol; credentials name
//!   handles in their `HANDLE ==` conditions (paper Figure 5).
//! * The [`server::DiscfsService`] glues these together with the
//!   policy-result [`cache`], [`revocation`] list, and [`audit`] log;
//!   [`client::DiscfsClient`] is the `cattach` + wallet side.
//!
//! # Authorization hot path
//!
//! Every NFS operation is a policy decision, so the decision path is
//! engineered to scale with concurrent clients (PR 4):
//!
//! * **Sharded peer sessions** — the per-client-key KeyNote sessions
//!   live in shards keyed on the key's first byte, each behind its
//!   own `RwLock`. The shard count is **adaptive**: it is sized from
//!   [`DiscfsConfig`]'s `peer_shards` hint (the expected concurrent
//!   client population; default 16), clamped to a power of two in
//!   `[1, 256]`, and the same hint shapes the policy-cache shard
//!   geometry — a deployment expecting thousands of concurrent
//!   tenants spreads both tables over more locks. Resolving a request
//!   takes one shard *read* lock to clone the peer's `Arc`'d state;
//!   the session itself (behind a per-peer mutex) is only locked on
//!   cache misses and credential changes.
//! * **Atomic epochs** — each peer carries an `AtomicU64` credential
//!   epoch and the server keeps a global environment epoch (time of
//!   day, virtual time, public grants, revocations). A cached decision
//!   is valid iff both epochs it was keyed under are current; loading
//!   them is two atomic loads, and every invalidation is one atomic
//!   increment.
//! * **Sharded policy cache** — [`cache::PolicyCache`] hits take a
//!   shard read lock and bump an atomic LRU stamp; only misses and
//!   invalidation write.
//! * **One lookup per handle** — `authorize` returns the granted
//!   [`Perm`] and every NFS method threads it into attribute
//!   presentation, so read/getattr perform exactly one policy lookup
//!   per request (lookup does two: directory traversal + child mode —
//!   distinct handles).
//! * **Ring audit log** — [`audit::AuditLog`] is a fixed-capacity ring
//!   with an atomic cursor and per-slot locks; the authorizer list it
//!   records is a shared handle cached per peer, rebuilt only when the
//!   credential set changes.
//!
//! The invariants, pinned by `server::AuthStats` counters in tests and
//! the `multi_client` bench:
//!
//! 1. A cached decision may be served only while both the peer
//!    credential epoch and the global environment epoch match the key
//!    it was inserted under.
//! 2. Credential submission, creator-credential issue, and revocation
//!    purge bump the **peer** epoch (under the session lock, after the
//!    session mutation, so a miss that sees the new epoch sees the new
//!    credential set). Time/hour changes, public-grant changes, and
//!    revocations bump the **global** epoch.
//! 3. A policy-cache hit performs zero exclusive-lock acquisitions
//!    (`AuthStats::exclusive` is flat across a hit-only run), and
//!    `AuthStats::decisions == cache hits + misses` at all times.
//!
//! # Request engine
//!
//! The connection layer in front of that decision path is the
//! event-driven engine of `nfsv2::engine` (PR 7). The paper's testbed
//! model — one synchronous server thread per connection — cannot reach
//! the client populations the hot path was built for, so the engine
//! multiplexes every session onto a **fixed** pool:
//!
//! * **Threading model** — exactly `workers + 1` server threads
//!   regardless of connection count: one readiness loop polling the
//!   `netsim` channels (edge-triggered tokens via `netsim::ReadySet`),
//!   plus a worker pool draining a shared job queue. IKE responder
//!   handshakes run as worker jobs too, so even connection setup
//!   spawns nothing.
//! * **Bounded queues, backpressure** — the loop decodes frames into a
//!   per-connection request queue capped at `queue_bound`; a full
//!   queue pauses reading that connection (the flood stays in the
//!   network, not in server memory) until a worker drains it. A
//!   stalled or slow-loris client therefore sheds **its own** load
//!   while healthy neighbors keep their latency — the fairness bound
//!   pinned by `tests/engine.rs` and the `fleet` bench.
//! * **Batched serving** — a worker serves up to `batch` requests per
//!   scheduling quantum, encoding all replies into one buffer and one
//!   transport send (one ESP seal per batch) over the zero-copy
//!   `Bytes` frame path, then requeues the connection at the tail for
//!   round-robin fairness. Per-connection execution stays serialized,
//!   so pipelined requests observe FIFO order.
//! * **Clean failure** — malformed frames (bad checksum, oversized
//!   length, truncation) condemn only the offending connection, which
//!   is dropped and recorded in the [`audit`] log; disconnects drain
//!   quietly. [`Testbed::reboot`] quiesces the engine — joins the loop
//!   and every worker, draining accepted requests — before the store
//!   syncs and drops.
//!
//! [`Testbed`] runs every connection through the engine, so the whole
//! integration suite exercises this path; `EngineStats` exposes the
//! counters the tests pin.
//!
//! # Storage backends
//!
//! The server's volume is built on the pluggable block-store subsystem
//! (the `store` crate): [`Testbed::with_backend`] selects where blocks
//! live via `ffs::StoreBackend` —
//!
//! * `SimTimed` / `SimInstant` — the in-memory simulated disk, with or
//!   without the paper's Quantum Fireball timing model (the default
//!   everywhere, so figure reproduction is unchanged);
//! * `FileJournal` — persistent file-backed storage with a write-ahead
//!   journal for crash consistency;
//! * `Dedup` / `DedupPersistent` — SHA-256 content-addressed
//!   deduplication (optionally snapshot-persistent), exposing a dedup
//!   hit-ratio through [`Testbed::store_stats`];
//! * `DedupEncrypted` / `EncryptedJournal` — ChaCha20
//!   encryption-at-rest over the dedup or journaled-file store;
//! * `Cached { capacity, inner }` — a sharded write-back LRU buffer
//!   cache over any of the above: a served-from-cache read is a
//!   refcounted handle clone, so a hot working set stops paying the
//!   backend's locking, hashing, or timing costs entirely (cache
//!   hit/miss counters surface through [`Testbed::store_stats`]);
//! * `Sharded { shards, inner }` — the volume striped `i % N` across
//!   N inner stores with per-shard locks and a parallel flush;
//! * `Timed { inner }` — the paper's disk timing model charged on any
//!   backend, so virtual-time figures can compare persistent backends.
//!
//! Wrappers nest: a production-shaped server volume is
//! `Cached { inner: Sharded { inner: FileJournal } }`, and the whole
//! credential stack (and [`Testbed::reboot`]) runs over it unchanged.
//!
//! ## Persistent volumes
//!
//! The paper's volumes are long-lived server-side entities that
//! principals reconnect to across sessions. On a persistent backend,
//! a [`Testbed`] built over a directory that already holds a volume
//! **mounts** it (`ffs::Ffs::mount_on`) instead of reformatting:
//! files, directories, dedup state, and `(inode, generation)` file
//! handles all come back, and because the testbed's admin key is
//! deterministic, credentials issued before the restart keep
//! authorizing the same handles after it. [`Testbed::sync`] makes the
//! volume durable; [`Testbed::reboot`] packages the whole
//! sync → teardown → mount cycle.
//!
//! ```
//! use discfs::Testbed;
//! use ffs::{FsConfig, StoreBackend};
//! use netsim::LinkConfig;
//!
//! let bed = Testbed::with_backend(
//!     FsConfig::small(),
//!     LinkConfig::instant(),
//!     128,
//!     &StoreBackend::Dedup,
//! );
//! // The volume formats and checks clean on the dedup backend.
//! bed.fs().check().unwrap();
//! ```
//!
//! ## Distributed volume tier
//!
//! The paper's volumes live on network-attached storage nodes; the
//! `store` crate now models that tier. A `store::BlockServer` exports
//! any block store over a simulated link with a length-prefixed,
//! checksummed wire protocol; `store::RemoteStore` is its client —
//! an ordinary `BlockStore` with per-request timeout and retry — and
//! `store::ReplicatedStore` stripes a volume R-way across N such
//! nodes, committing each flush under an epoch record so a torn
//! write replays to one consistent epoch. Two backend presets
//! compose the tier under the credential stack unchanged:
//!
//! * `Remote { ethernet, opts, inner }` — one storage node behind the
//!   wire protocol (100 Mbps Ethernet timing or instant links), with a
//!   tunable timeout/backoff policy;
//! * `Replicated { nodes, replicas, spares, ethernet, opts, inner }` —
//!   an N-node volume that keeps serving every read through the death
//!   of any single node and rebuilds the lost replicas onto a spare.
//!
//! ```
//! use discfs::Testbed;
//! use ffs::{FsConfig, StoreBackend};
//! use netsim::LinkConfig;
//! use store::RemoteOptions;
//!
//! let backend = StoreBackend::Replicated {
//!     nodes: 4,
//!     replicas: 2,
//!     spares: 1,
//!     ethernet: false,
//!     opts: RemoteOptions::default(),
//!     inner: Box::new(StoreBackend::SimInstant),
//! };
//! let bed = Testbed::with_backend(FsConfig::small(), LinkConfig::instant(), 128, &backend);
//! bed.fs().check().unwrap();
//! assert!(bed.store_stats().rpc_calls > 0); // every block crossed the wire
//! ```
//!
//! ## Multi-coordinator safety
//!
//! Two front-ends mounting the same nodes — or one stale front-end
//! surviving a partition — must not fork the volume. The storage
//! nodes themselves arbitrate: a coordinator acquires a
//! `(coordinator_id, fence_token)` lease per node
//! (`store::RemoteStore::try_acquire_lease`), every mutating frame
//! carries the token, and a node that has granted a higher token
//! refuses the frame with a typed `Fenced` error *before* touching
//! its store. The fenced coordinator latches read-only (the count
//! surfaces as `StoreStats::fenced` through [`Testbed::store_stats`]),
//! while epoch flushes commit on a majority of each block's replica
//! set and replicas observed behind the committed epoch are re-synced
//! through the rebuild queue (`StoreStats::read_repairs`). A second
//! [`Testbed`] built over the *same* shared node stores
//! ([`Testbed::with_store`] mounts, never reformats) is exactly the
//! takeover coordinator: acquire the lease on fresh clients, mount,
//! and the stale coordinator's stragglers bounce off the fence — the
//! split-brain matrix in `tests/chaos.rs` drives that handoff under
//! seeded link faults. Invariants live in the `store` crate docs
//! (*Failure model* and *Leases and fencing*).
//!
//! # Quickstart
//!
//! ```
//! use discfs::{CredentialIssuer, Perm, Testbed};
//! use discfs_crypto::ed25519::SigningKey;
//!
//! let bed = Testbed::instant();
//! let bob = SigningKey::from_seed(&[0xB0; 32]);
//! let alice = SigningKey::from_seed(&[0xA1; 32]);
//!
//! // The administrator grants Bob the root directory.
//! let root_cred = CredentialIssuer::new(bed.admin())
//!     .holder(&bob.public())
//!     .grant_handle_string("1.1", Perm::RWX)
//!     .issue();
//!
//! // Bob attaches, submits his credential, and stores a file.
//! let mut bob_client = bed.connect(&bob).unwrap();
//! bob_client.submit_credential(&root_cred).unwrap();
//! let root = bob_client.remote().root();
//! let created = bob_client.create_with_credential(&root, "paper.tex", 0o644).unwrap();
//! bob_client.client().write_all(&created.fh, 0, b"\\title{DisCFS}").unwrap();
//!
//! // Bob delegates read access to Alice by issuing a credential —
//! // no administrator involved.
//! let to_alice = CredentialIssuer::new(&bob)
//!     .holder(&alice.public())
//!     .grant(&created.fh, Perm::R)
//!     .issue();
//!
//! let alice_client = bed.connect(&alice).unwrap();
//! alice_client.submit_credential(&created.credential).unwrap(); // chain link 1
//! alice_client.submit_credential(&to_alice).unwrap();           // chain link 2
//! let text = alice_client.client().read_all(&created.fh, 0, 100).unwrap();
//! assert_eq!(text, b"\\title{DisCFS}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod cache;
pub mod client;
pub mod cred;
pub mod perm;
pub mod revocation;
pub mod rpc;
pub mod server;
pub mod testbed;
pub mod wallet;

pub use cache::PolicyCache;
pub use client::{DiscfsClient, DiscfsClientError};
pub use cred::{root_policy, CredentialIssuer, Restrictions};
pub use perm::Perm;
pub use revocation::RevocationList;
pub use server::{DiscfsConfig, DiscfsService, PolicyCharge};
pub use testbed::Testbed;
pub use wallet::{Wallet, WalletEntry};

#[cfg(test)]
mod tests {
    use super::*;
    use discfs_crypto::ed25519::SigningKey;
    use nfsv2::{ClientError, NfsStat};

    fn key(seed: u8) -> SigningKey {
        SigningKey::from_seed(&[seed; 32])
    }

    /// Grants `holder` RWX on the root directory, signed by the admin.
    fn root_grant(bed: &Testbed, holder: &SigningKey) -> String {
        CredentialIssuer::new(bed.admin())
            .holder(&holder.public())
            .grant_handle_string("1.1", Perm::RWX)
            .issue()
    }

    #[test]
    fn peer_shard_count_is_sized_from_the_config_hint() {
        use std::sync::Arc;

        let build = |peer_shards: usize| {
            let fs = Arc::new(ffs::Ffs::format_in_memory(ffs::FsConfig::small()));
            let admin = key(0xAD);
            let server = key(0x5E);
            let mut config = DiscfsConfig::standard(admin.public(), server);
            config.peer_shards = peer_shards;
            DiscfsService::new(fs, config)
        };
        // Default stays 16; odd hints clamp to the next power of two;
        // absurd hints hit the first-byte routing ceiling of 256.
        assert_eq!(build(server::PEER_SHARDS).peer_shard_count(), 16);
        assert_eq!(build(5).peer_shard_count(), 8);
        assert_eq!(build(0).peer_shard_count(), 1);
        assert_eq!(build(10_000).peer_shard_count(), 256);

        // The AuthStats invariants hold on a reshaped table: every
        // decision is exactly one cache lookup, hits + misses ==
        // decisions, and a warm decision takes no exclusive lock.
        let service = build(64);
        let peer = key(0x77).public();
        let fh = nfsv2::FHandle::pack(1, 1, 0);
        for _ in 0..10 {
            let perm = service.permissions_for(&peer, &fh);
            assert_eq!(perm, Perm::NONE, "no credentials, nothing granted");
        }
        let stats = service.auth_stats();
        let cache = service.cache().stats();
        assert_eq!(stats.decisions(), 10);
        assert_eq!(cache.hits() + cache.misses(), stats.decisions());
        assert_eq!(cache.misses(), 1, "one cold compliance check");
        // 1 peer-map insert + 1 session lock + 1 cache insert on the
        // miss; the nine warm decisions add nothing exclusive.
        assert_eq!(stats.exclusive(), 3);
    }

    #[test]
    fn attach_without_credentials_shows_mode_000() {
        let bed = Testbed::instant();
        let bob = key(2);
        let client = bed.connect(&bob).unwrap();
        let attr = client.client().getattr(&client.remote().root()).unwrap();
        assert_eq!(
            attr.mode & 0o777,
            0o000,
            "no credentials, no visible access"
        );
    }

    #[test]
    fn credentials_change_visible_mode() {
        let bed = Testbed::instant();
        let bob = key(2);
        let client = bed.connect(&bob).unwrap();
        client.submit_credential(&root_grant(&bed, &bob)).unwrap();
        let attr = client.client().getattr(&client.remote().root()).unwrap();
        assert_eq!(attr.mode & 0o777, 0o777);
    }

    #[test]
    fn read_denied_without_credentials() {
        let bed = Testbed::instant();
        let bob = key(2);
        let client = bed.connect(&bob).unwrap();
        let err = client.client().readdir_all(&client.remote().root());
        assert!(matches!(err, Err(ClientError::Status(NfsStat::Acces))));
    }

    #[test]
    fn create_returns_working_credential() {
        let bed = Testbed::instant();
        let bob = key(2);
        let mut client = bed.connect(&bob).unwrap();
        client.submit_credential(&root_grant(&bed, &bob)).unwrap();
        let root = client.remote().root();
        let res = client
            .create_with_credential(&root, "notes.txt", 0o644)
            .unwrap();
        // The credential parses, verifies, and names the new handle.
        let assertion = keynote::Assertion::parse(&res.credential).unwrap();
        assertion.verify().unwrap();
        assert!(res.credential.contains(&res.fh.credential_string()));
        // And the file is immediately usable.
        client.client().write_all(&res.fh, 0, b"hello").unwrap();
        assert_eq!(client.client().read_all(&res.fh, 0, 10).unwrap(), b"hello");
    }

    #[test]
    fn plain_nfs_create_leaves_file_inaccessible() {
        // The §5 pitfall: CREATE via the standard procedure yields a
        // file the creator holds no credential for.
        let bed = Testbed::instant();
        let bob = key(2);
        let client = bed.connect(&bob).unwrap();
        client.submit_credential(&root_grant(&bed, &bob)).unwrap();
        let root = client.remote().root();
        let (fh, _) = client
            .client()
            .create(&root, "orphan.txt", &nfsv2::Sattr::with_mode(0o644))
            .unwrap();
        let err = client.client().read(&fh, 0, 10);
        assert!(matches!(err, Err(ClientError::Status(NfsStat::Acces))));
    }

    #[test]
    fn figure1_delegation_admin_bob_alice() {
        let bed = Testbed::instant();
        let bob = key(2);
        let alice = key(3);

        let mut bob_client = bed.connect(&bob).unwrap();
        bob_client
            .submit_credential(&root_grant(&bed, &bob))
            .unwrap();
        let root = bob_client.remote().root();
        let res = bob_client
            .create_with_credential(&root, "doc", 0o644)
            .unwrap();
        bob_client
            .client()
            .write_all(&res.fh, 0, b"shared doc")
            .unwrap();

        // Bob issues Alice a read-only credential.
        let to_alice = CredentialIssuer::new(&bob)
            .holder(&alice.public())
            .grant(&res.fh, Perm::R)
            .issue();

        let alice_client = bed.connect(&alice).unwrap();
        // Without the chain: denied.
        assert!(alice_client.client().read(&res.fh, 0, 10).is_err());
        // Alice submits both links (server→bob via create-credential,
        // bob→alice) and reads.
        alice_client.submit_credential(&res.credential).unwrap();
        alice_client.submit_credential(&to_alice).unwrap();
        assert_eq!(
            alice_client.client().read_all(&res.fh, 0, 20).unwrap(),
            b"shared doc"
        );
        // But she cannot write: Bob granted R only.
        assert!(matches!(
            alice_client.client().write(&res.fh, 0, b"evil"),
            Err(ClientError::Status(NfsStat::Acces))
        ));
    }

    #[test]
    fn revoked_key_loses_access_immediately() {
        let bed = Testbed::instant();
        let bob = key(2);
        let client = bed.connect(&bob).unwrap();
        client.submit_credential(&root_grant(&bed, &bob)).unwrap();
        let root = client.remote().root();
        assert!(client.client().readdir_all(&root).is_ok());

        bed.service().revoke_key(&bob.public(), None);
        assert!(matches!(
            client.client().readdir_all(&root),
            Err(ClientError::Status(NfsStat::Acces))
        ));
    }

    #[test]
    fn revoked_credential_cannot_be_resubmitted() {
        let bed = Testbed::instant();
        let bob = key(2);
        let client = bed.connect(&bob).unwrap();
        let cred = root_grant(&bed, &bob);
        let id = keynote::Assertion::parse(&cred).unwrap().id();
        bed.service().revoke_credential(&id, None);
        assert!(matches!(
            client.submit_credential(&cred),
            Err(DiscfsClientError::CredentialRejected(
                rpc::DiscfsRpcStatus::Revoked
            ))
        ));
    }

    #[test]
    fn admin_can_revoke_remotely_others_cannot() {
        let bed = Testbed::instant();
        let bob = key(2);
        let mallory = key(4);

        let bob_client = bed.connect(&bob).unwrap();
        bob_client
            .submit_credential(&root_grant(&bed, &bob))
            .unwrap();

        // Mallory (not admin) cannot revoke Bob.
        let mallory_client = bed.connect(&mallory).unwrap();
        assert!(mallory_client.revoke_key(&bob.public()).is_err());
        assert!(bob_client
            .client()
            .readdir_all(&bob_client.remote().root())
            .is_ok());

        // The admin can.
        let admin_key = SigningKey::from_seed(bed.admin().seed());
        let admin_client = bed.connect(&admin_key).unwrap();
        admin_client.revoke_key(&bob.public()).unwrap();
        assert!(bob_client
            .client()
            .readdir_all(&bob_client.remote().root())
            .is_err());
    }

    #[test]
    fn time_of_day_conditions_enforced() {
        let bed = Testbed::instant();
        let bob = key(2);
        let client = bed.connect(&bob).unwrap();
        let cred = CredentialIssuer::new(bed.admin())
            .holder(&bob.public())
            .grant_handle_string("1.1", Perm::RWX)
            .valid_hours(9, 17)
            .issue();
        client.submit_credential(&cred).unwrap();

        bed.service().set_hour(10);
        assert!(client.client().readdir_all(&client.remote().root()).is_ok());

        bed.service().set_hour(20);
        assert!(client
            .client()
            .readdir_all(&client.remote().root())
            .is_err());

        bed.service().set_hour(16);
        assert!(client.client().readdir_all(&client.remote().root()).is_ok());
    }

    #[test]
    fn credential_expiry_enforced() {
        let bed = Testbed::instant();
        let bob = key(2);
        let client = bed.connect(&bob).unwrap();
        let cred = CredentialIssuer::new(bed.admin())
            .holder(&bob.public())
            .grant_handle_string("1.1", Perm::RWX)
            .expires_at(100)
            .issue();
        client.submit_credential(&cred).unwrap();

        bed.service().set_time(50);
        assert!(client.client().readdir_all(&client.remote().root()).is_ok());
        bed.service().set_time(150);
        assert!(client
            .client()
            .readdir_all(&client.remote().root())
            .is_err());
    }

    #[test]
    fn audit_log_records_requester_and_authorizers() {
        let bed = Testbed::instant();
        let bob = key(2);
        let client = bed.connect(&bob).unwrap();
        client.submit_credential(&root_grant(&bed, &bob)).unwrap();
        client
            .client()
            .readdir_all(&client.remote().root())
            .unwrap();

        let records = bed.service().audit().records();
        assert!(!records.is_empty());
        let read_record = records
            .iter()
            .rfind(|r| r.op == "readdir" && r.allowed)
            .expect("readdir must be audited");
        assert_eq!(
            read_record.requester,
            discfs_crypto::hex::encode(&bob.public().0)
        );
        // The admin key (credential issuer) appears as an authorizer.
        let admin_principal = keynote::key_principal(&bed.admin().public());
        assert!(read_record.authorizers.contains(&admin_principal));
    }

    #[test]
    fn policy_cache_hits_on_repeated_ops() {
        let bed = Testbed::instant();
        let bob = key(2);
        let client = bed.connect(&bob).unwrap();
        client.submit_credential(&root_grant(&bed, &bob)).unwrap();
        let root = client.remote().root();
        for _ in 0..20 {
            client.client().readdir_all(&root).unwrap();
        }
        let stats = bed.service().cache().stats();
        assert!(stats.hits() > 10, "hits = {}", stats.hits());
    }

    #[test]
    fn credential_count_reflects_submissions() {
        let bed = Testbed::instant();
        let bob = key(2);
        let client = bed.connect(&bob).unwrap();
        assert_eq!(client.credential_count().unwrap(), 0);
        client.submit_credential(&root_grant(&bed, &bob)).unwrap();
        assert_eq!(client.credential_count().unwrap(), 1);
    }

    #[test]
    fn malformed_credential_rejected() {
        let bed = Testbed::instant();
        let bob = key(2);
        let client = bed.connect(&bob).unwrap();
        assert!(matches!(
            client.submit_credential("not a keynote assertion"),
            Err(DiscfsClientError::CredentialRejected(
                rpc::DiscfsRpcStatus::BadCredential
            ))
        ));
    }

    #[test]
    fn two_clients_isolated_sessions() {
        let bed = Testbed::instant();
        let bob = key(2);
        let carol = key(5);
        let bob_client = bed.connect(&bob).unwrap();
        let carol_client = bed.connect(&carol).unwrap();
        bob_client
            .submit_credential(&root_grant(&bed, &bob))
            .unwrap();
        // Bob's credentials do not leak authority to Carol.
        assert!(bob_client
            .client()
            .readdir_all(&bob_client.remote().root())
            .is_ok());
        assert!(carol_client
            .client()
            .readdir_all(&carol_client.remote().root())
            .is_err());
    }

    #[test]
    fn public_access_grants_and_revokes() {
        let bed = Testbed::instant();
        let bob = key(2);
        let stranger = key(9);
        let mut bob_client = bed.connect(&bob).unwrap();
        bob_client
            .submit_credential(&root_grant(&bed, &bob))
            .unwrap();
        let file = bob_client
            .create_with_credential(&bob_client.remote().root(), "pub.txt", 0o644)
            .unwrap();
        bob_client
            .client()
            .write_all(&file.fh, 0, b"published")
            .unwrap();

        let visitor = bed.connect(&stranger).unwrap();
        assert!(visitor.client().read(&file.fh, 0, 9).is_err());

        bed.service().set_public_access(&file.fh, Perm::R);
        assert_eq!(
            visitor.client().read_all(&file.fh, 0, 9).unwrap(),
            b"published"
        );
        // Read-only: writes still need a credential chain.
        assert!(visitor.client().write(&file.fh, 0, b"deface").is_err());

        bed.service().set_public_access(&file.fh, Perm::NONE);
        assert!(visitor.client().read(&file.fh, 0, 9).is_err());
    }

    #[test]
    fn public_access_unions_with_credentials() {
        // A user holding W on a public-R file ends up with R|W... per
        // the union in permissions_for.
        let bed = Testbed::instant();
        let bob = key(2);
        let client = bed.connect(&bob).unwrap();
        let w_only = CredentialIssuer::new(bed.admin())
            .holder(&bob.public())
            .grant_handle_string("1.1", Perm::WX)
            .issue();
        client.submit_credential(&w_only).unwrap();
        // WX alone cannot list the root...
        assert!(client
            .client()
            .readdir_all(&client.remote().root())
            .is_err());
        // ...until the root is published readable.
        let root = client.remote().root();
        bed.service().set_public_access(&root, Perm::R);
        assert!(client.client().readdir_all(&root).is_ok());
        // And the reported mode reflects the union.
        let attr = client.client().getattr(&root).unwrap();
        assert_eq!(
            attr.mode & 0o777,
            0o777,
            "WX credential + public R = RWX view"
        );
    }

    #[test]
    fn one_policy_lookup_per_request() {
        // PR 4: authorize() threads the granted perms into present(),
        // so read/getattr resolve exactly one decision per request and
        // lookup exactly two (directory + child, distinct handles).
        let bed = Testbed::instant();
        let bob = key(2);
        let mut client = bed.connect(&bob).unwrap();
        client.submit_credential(&root_grant(&bed, &bob)).unwrap();
        let root = client.remote().root();
        let file = client
            .create_with_credential(&root, "pinned.txt", 0o644)
            .unwrap();
        client.client().write_all(&file.fh, 0, b"data").unwrap();

        let stats = bed.service().auth_stats();
        let pin = |op: &str, expected: u64, run: &dyn Fn()| {
            let before = stats.decisions();
            run();
            assert_eq!(
                stats.decisions() - before,
                expected,
                "{op} must resolve exactly {expected} decision(s)"
            );
        };
        pin("getattr", 1, &|| {
            client.client().getattr(&file.fh).unwrap();
        });
        pin("read", 1, &|| {
            client.client().read(&file.fh, 0, 4).unwrap();
        });
        pin("lookup", 2, &|| {
            client.client().lookup(&root, "pinned.txt").unwrap();
        });
        pin("readdir", 1, &|| {
            client.client().readdir_all(&root).unwrap();
        });
        // Decisions and cache accounting agree.
        let cache = bed.service().cache().stats();
        assert_eq!(stats.decisions(), cache.hits() + cache.misses());
    }

    #[test]
    fn cache_hits_take_no_exclusive_locks() {
        let bed = Testbed::instant();
        let bob = key(2);
        let client = bed.connect(&bob).unwrap();
        client.submit_credential(&root_grant(&bed, &bob)).unwrap();
        let root = client.remote().root();
        // Warm the decision.
        client.client().getattr(&root).unwrap();
        client.client().getattr(&root).unwrap();

        let stats = bed.service().auth_stats();
        let hits_before = bed.service().cache().stats().hits();
        let exclusive_before = stats.exclusive();
        for _ in 0..32 {
            client.client().getattr(&root).unwrap();
        }
        assert_eq!(
            stats.exclusive() - exclusive_before,
            0,
            "cache-hit authorizations must not take exclusive locks"
        );
        assert_eq!(bed.service().cache().stats().hits() - hits_before, 32);
    }

    #[test]
    fn revocation_invalidates_by_epoch_not_just_cache_clear() {
        // The PR 4 satellite bugfix: purging revoked credentials bumps
        // every peer's credential epoch, so even a cache that somehow
        // retained (or re-learned) pre-revocation entries could never
        // serve them — the post-revocation decision must be a miss.
        let bed = Testbed::instant();
        let bob = key(2);
        let client = bed.connect(&bob).unwrap();
        client.submit_credential(&root_grant(&bed, &bob)).unwrap();
        let root = client.remote().root();
        client.client().getattr(&root).unwrap();
        client.client().getattr(&root).unwrap(); // warm: hits

        bed.service().revoke_key(&bob.public(), None);
        let misses_before = bed.service().cache().stats().misses();
        let attr = client.client().getattr(&root).unwrap();
        assert_eq!(attr.mode & 0o777, 0, "revoked key sees mode 000");
        assert!(
            bed.service().cache().stats().misses() > misses_before,
            "first post-revocation decision must be a cache miss"
        );
    }

    #[test]
    fn lapsed_revocation_cannot_pin_a_stale_denial() {
        // A forget_after revocation lapses when virtual time passes its
        // horizon. set_time expires the revocation list *before*
        // bumping the global epoch (mutate-then-bump), so the denial
        // cached while revoked can never be re-learned under the new
        // epoch: the first post-lapse decision re-evaluates cleanly.
        let bed = Testbed::instant();
        let bob = key(2);
        let client = bed.connect(&bob).unwrap();
        client.submit_credential(&root_grant(&bed, &bob)).unwrap();
        let root = client.remote().root();
        client.client().readdir_all(&root).unwrap();

        bed.service().revoke_key(&bob.public(), Some(100));
        // Denied while revoked — and the NONE decision gets cached.
        for _ in 0..3 {
            assert!(client.client().readdir_all(&root).is_err());
        }
        // Time passes the forget horizon: the revocation lapses. Bob's
        // admin-signed credential survived the purge (its authorizer
        // was never revoked), so access must come back immediately.
        bed.service().set_time(150);
        client
            .client()
            .readdir_all(&root)
            .expect("lapsed revocation must not leave a stale cached denial");
    }

    #[test]
    fn wallet_submission_helper() {
        let bed = Testbed::instant();
        let bob = key(2);
        let mut client = bed.connect(&bob).unwrap();
        client.wallet_add(&root_grant(&bed, &bob));
        client.wallet_add("garbage credential");
        let accepted = client.submit_wallet().unwrap();
        assert_eq!(accepted, 1);
        assert_eq!(client.credential_count().unwrap(), 1);
    }
}
