//! The access audit log.
//!
//! Paper §4.2: *"The system may not know that Alice is trying to get at
//! a file, but it can log that key A (Alice's key) was used and that
//! key B (Bob's key) authorized the operation."* Every access decision
//! is recorded with the requesting key and the issuer keys of the
//! credentials that were in the session when the decision was made —
//! the delegation evidence an operator reconstructs chains from.
//!
//! # Concurrency
//!
//! The log is a **fixed-capacity ring**: an atomic cursor assigns each
//! record a sequence number and a slot (`seq % capacity`), and each
//! slot sits behind its own tiny mutex. Appends from N concurrent
//! connections therefore never serialize on one log-wide lock — two
//! appends contend only in the unlikely case they land on the same
//! slot (a full wrap-around apart). The authorizer list is a shared
//! [`Arc`] handle built once per credential change by the server (not
//! re-serialized per operation), so an append allocates only the
//! record's own strings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use discfs_crypto::hex;
use parking_lot::Mutex;

use crate::perm::Perm;

/// One audit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Virtual time of the decision.
    pub time: u64,
    /// Hex of the requesting public key ("key A").
    pub requester: String,
    /// The operation attempted (e.g. `"read"`, `"write"`, `"lookup"`).
    pub op: String,
    /// The file handle string (`ino.generation`).
    pub handle: String,
    /// Permissions the operation needed.
    pub required: Perm,
    /// Permissions the policy granted.
    pub granted: Perm,
    /// Whether the operation proceeded.
    pub allowed: bool,
    /// Hex keys of the credential issuers in the session ("key B" and
    /// any other links of the chain) — a shared handle to the peer's
    /// cached authorizer list, cloned per record as a refcount bump.
    pub authorizers: Arc<Vec<String>>,
}

/// A bounded in-memory audit log (lock-striped ring buffer).
pub struct AuditLog {
    slots: Vec<Mutex<Option<AuditRecord>>>,
    cursor: AtomicU64,
}

impl AuditLog {
    /// Creates a log keeping the most recent `capacity` records.
    pub fn new(capacity: usize) -> AuditLog {
        AuditLog {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Appends a record (overwriting the oldest when full).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        time: u64,
        requester: &[u8; 32],
        op: &str,
        handle: &str,
        required: Perm,
        granted: Perm,
        allowed: bool,
        authorizers: Arc<Vec<String>>,
    ) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed) + 1;
        let record = AuditRecord {
            seq,
            time,
            requester: hex::encode(requester),
            op: op.to_string(),
            handle: handle.to_string(),
            required,
            granted,
            allowed,
            authorizers,
        };
        let slot = &self.slots[((seq - 1) % self.slots.len() as u64) as usize];
        let mut guard = slot.lock();
        // Wrap-around race: a slow writer from a previous lap must not
        // clobber a newer record that already claimed this slot.
        if guard.as_ref().is_none_or(|existing| existing.seq < seq) {
            *guard = Some(record);
        }
    }

    /// A snapshot of the retained records (oldest first).
    pub fn records(&self) -> Vec<AuditRecord> {
        let mut records: Vec<AuditRecord> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().clone())
            .collect();
        records.sort_by_key(|r| r.seq);
        records
    }

    /// Records matching a requester key prefix (hex).
    pub fn by_requester(&self, key_hex_prefix: &str) -> Vec<AuditRecord> {
        self.records()
            .into_iter()
            .filter(|r| r.requester.starts_with(key_hex_prefix))
            .collect()
    }

    /// Denied accesses only — the operator's first question.
    pub fn denials(&self) -> Vec<AuditRecord> {
        self.records().into_iter().filter(|r| !r.allowed).collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        (self.cursor.load(Ordering::Relaxed) as usize).min(self.slots.len())
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) == 0
    }

    /// Total records ever appended (including those the ring dropped).
    pub fn appended(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_authorizers() -> Arc<Vec<String>> {
        Arc::new(Vec::new())
    }

    #[test]
    fn records_accumulate_in_order() {
        let log = AuditLog::new(10);
        log.record(
            1,
            &[0xaa; 32],
            "read",
            "5.1",
            Perm::R,
            Perm::RW,
            true,
            no_authorizers(),
        );
        log.record(
            2,
            &[0xbb; 32],
            "write",
            "5.1",
            Perm::W,
            Perm::NONE,
            false,
            no_authorizers(),
        );
        let records = log.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[1].seq, 2);
        assert!(records[0].allowed);
        assert!(!records[1].allowed);
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let log = AuditLog::new(3);
        for i in 0..5u64 {
            log.record(
                i,
                &[i as u8; 32],
                "read",
                "1.1",
                Perm::R,
                Perm::R,
                true,
                no_authorizers(),
            );
        }
        let records = log.records();
        assert_eq!(records.len(), 3);
        assert_eq!(log.len(), 3);
        assert_eq!(log.appended(), 5);
        assert_eq!(records[0].seq, 3, "two oldest dropped");
    }

    #[test]
    fn filters() {
        let log = AuditLog::new(10);
        log.record(
            1,
            &[0xaa; 32],
            "read",
            "1.1",
            Perm::R,
            Perm::R,
            true,
            no_authorizers(),
        );
        log.record(
            2,
            &[0xbb; 32],
            "write",
            "1.1",
            Perm::W,
            Perm::NONE,
            false,
            no_authorizers(),
        );
        assert_eq!(log.by_requester("aa").len(), 1);
        assert_eq!(log.by_requester("bb").len(), 1);
        assert_eq!(log.denials().len(), 1);
        assert_eq!(log.denials()[0].op, "write");
    }

    #[test]
    fn authorizer_chain_recorded() {
        let log = AuditLog::new(4);
        log.record(
            1,
            &[0x01; 32],
            "read",
            "9.2",
            Perm::R,
            Perm::R,
            true,
            Arc::new(vec!["keyB".into(), "keyAdmin".into()]),
        );
        assert_eq!(*log.records()[0].authorizers, vec!["keyB", "keyAdmin"]);
    }

    #[test]
    fn concurrent_appends_keep_every_recent_record() {
        // 4 threads × 100 appends into a 1024-slot ring: all 400
        // records retained, sequence numbers unique and gap-free.
        let log = Arc::new(AuditLog::new(1024));
        std::thread::scope(|scope| {
            for t in 0..4u8 {
                let log = log.clone();
                scope.spawn(move || {
                    for i in 0..100u64 {
                        log.record(
                            i,
                            &[t; 32],
                            "read",
                            "1.1",
                            Perm::R,
                            Perm::R,
                            true,
                            Arc::new(Vec::new()),
                        );
                    }
                });
            }
        });
        let records = log.records();
        assert_eq!(records.len(), 400);
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (1..=400).collect::<Vec<u64>>());
    }
}
