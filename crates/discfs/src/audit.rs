//! The access audit log.
//!
//! Paper §4.2: *"The system may not know that Alice is trying to get at
//! a file, but it can log that key A (Alice's key) was used and that
//! key B (Bob's key) authorized the operation."* Every access decision
//! is recorded with the requesting key and the issuer keys of the
//! credentials that were in the session when the decision was made —
//! the delegation evidence an operator reconstructs chains from.

use std::collections::VecDeque;

use discfs_crypto::hex;
use parking_lot::Mutex;

use crate::perm::Perm;

/// One audit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Virtual time of the decision.
    pub time: u64,
    /// Hex of the requesting public key ("key A").
    pub requester: String,
    /// The operation attempted (e.g. `"read"`, `"write"`, `"lookup"`).
    pub op: String,
    /// The file handle string (`ino.generation`).
    pub handle: String,
    /// Permissions the operation needed.
    pub required: Perm,
    /// Permissions the policy granted.
    pub granted: Perm,
    /// Whether the operation proceeded.
    pub allowed: bool,
    /// Hex keys of the credential issuers in the session ("key B" and
    /// any other links of the chain).
    pub authorizers: Vec<String>,
}

/// A bounded in-memory audit log.
pub struct AuditLog {
    records: Mutex<VecDeque<AuditRecord>>,
    capacity: usize,
    seq: Mutex<u64>,
}

impl AuditLog {
    /// Creates a log keeping the most recent `capacity` records.
    pub fn new(capacity: usize) -> AuditLog {
        AuditLog {
            records: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity,
            seq: Mutex::new(0),
        }
    }

    /// Appends a record (dropping the oldest when full).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        time: u64,
        requester: &[u8; 32],
        op: &str,
        handle: &str,
        required: Perm,
        granted: Perm,
        allowed: bool,
        authorizers: Vec<String>,
    ) {
        let mut seq_guard = self.seq.lock();
        *seq_guard += 1;
        let record = AuditRecord {
            seq: *seq_guard,
            time,
            requester: hex::encode(requester),
            op: op.to_string(),
            handle: handle.to_string(),
            required,
            granted,
            allowed,
            authorizers,
        };
        drop(seq_guard);
        let mut records = self.records.lock();
        if records.len() == self.capacity {
            records.pop_front();
        }
        records.push_back(record);
    }

    /// A snapshot of the retained records (oldest first).
    pub fn records(&self) -> Vec<AuditRecord> {
        self.records.lock().iter().cloned().collect()
    }

    /// Records matching a requester key prefix (hex).
    pub fn by_requester(&self, key_hex_prefix: &str) -> Vec<AuditRecord> {
        self.records
            .lock()
            .iter()
            .filter(|r| r.requester.starts_with(key_hex_prefix))
            .cloned()
            .collect()
    }

    /// Denied accesses only — the operator's first question.
    pub fn denials(&self) -> Vec<AuditRecord> {
        self.records
            .lock()
            .iter()
            .filter(|r| !r.allowed)
            .cloned()
            .collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_in_order() {
        let log = AuditLog::new(10);
        log.record(
            1,
            &[0xaa; 32],
            "read",
            "5.1",
            Perm::R,
            Perm::RW,
            true,
            vec![],
        );
        log.record(
            2,
            &[0xbb; 32],
            "write",
            "5.1",
            Perm::W,
            Perm::NONE,
            false,
            vec![],
        );
        let records = log.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[1].seq, 2);
        assert!(records[0].allowed);
        assert!(!records[1].allowed);
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let log = AuditLog::new(3);
        for i in 0..5u64 {
            log.record(
                i,
                &[i as u8; 32],
                "read",
                "1.1",
                Perm::R,
                Perm::R,
                true,
                vec![],
            );
        }
        let records = log.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].seq, 3, "two oldest dropped");
    }

    #[test]
    fn filters() {
        let log = AuditLog::new(10);
        log.record(
            1,
            &[0xaa; 32],
            "read",
            "1.1",
            Perm::R,
            Perm::R,
            true,
            vec![],
        );
        log.record(
            2,
            &[0xbb; 32],
            "write",
            "1.1",
            Perm::W,
            Perm::NONE,
            false,
            vec![],
        );
        assert_eq!(log.by_requester("aa").len(), 1);
        assert_eq!(log.by_requester("bb").len(), 1);
        assert_eq!(log.denials().len(), 1);
        assert_eq!(log.denials()[0].op, "write");
    }

    #[test]
    fn authorizer_chain_recorded() {
        let log = AuditLog::new(4);
        log.record(
            1,
            &[0x01; 32],
            "read",
            "9.2",
            Perm::R,
            Perm::R,
            true,
            vec!["keyB".into(), "keyAdmin".into()],
        );
        assert_eq!(log.records()[0].authorizers, vec!["keyB", "keyAdmin"]);
    }
}
