//! CFS cipher suite: seekable content encryption and deterministic
//! name encryption.

use discfs_crypto::chacha20::ChaCha20;
use discfs_crypto::hex;
use discfs_crypto::hmac::Hmac;
use discfs_crypto::sha256::Sha256;

/// Per-attach cipher state.
///
/// * **Content**: a ChaCha20 stream per inode (nonce derived from the
///   inode number), XORed at the exact byte offset so random-access NFS
///   reads and writes commute with encryption.
/// * **Names**: SIV-style deterministic encryption — the nonce is an
///   HMAC of the plaintext name, prepended to the ciphertext and hex
///   encoded. Deterministic so LOOKUP works; invertible so READDIR can
///   show plaintext to the key holder.
#[derive(Clone)]
pub struct CfsCipher {
    content_key: [u8; 32],
    name_key: [u8; 32],
}

impl CfsCipher {
    /// Derives sub-keys from an attach key.
    pub fn new(attach_key: &[u8; 32]) -> CfsCipher {
        let derive = |label: &[u8]| -> [u8; 32] {
            Hmac::<Sha256>::mac(attach_key, label)
                .try_into()
                .expect("HMAC-SHA256 is 32 bytes")
        };
        CfsCipher {
            content_key: derive(b"cfs-content"),
            name_key: derive(b"cfs-names"),
        }
    }

    fn content_nonce(&self, ino: u32) -> [u8; 12] {
        let mut nonce = [0u8; 12];
        nonce[..4].copy_from_slice(&ino.to_be_bytes());
        nonce[4..8].copy_from_slice(b"file");
        nonce
    }

    /// En/decrypts `data` as the bytes at `offset` of file `ino`
    /// (XOR stream: the same operation both ways).
    pub fn apply_content(&self, ino: u32, offset: u64, data: &mut [u8]) {
        if data.is_empty() {
            return;
        }
        let cipher = ChaCha20::new(&self.content_key, &self.content_nonce(ino));
        // ChaCha20 counts 64-byte blocks; we may start mid-block.
        let first_block = (offset / 64) as u32;
        let skip = (offset % 64) as usize;
        let mut pos = 0usize;
        let mut block_idx = first_block;
        let mut in_block = skip;
        while pos < data.len() {
            let ks = cipher.block(block_idx.wrapping_add(1)); // counter 0 reserved
            while in_block < 64 && pos < data.len() {
                data[pos] ^= ks[in_block];
                pos += 1;
                in_block += 1;
            }
            in_block = 0;
            block_idx = block_idx.wrapping_add(1);
        }
    }

    /// Encrypts a file name deterministically.
    pub fn encrypt_name(&self, name: &str) -> String {
        if name == "." || name == ".." {
            return name.to_string();
        }
        let tag = Hmac::<Sha256>::mac(&self.name_key, name.as_bytes());
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&tag[..12]);
        let cipher = ChaCha20::new(&self.name_key, &nonce);
        let ct = cipher.encrypt(1, name.as_bytes());
        let mut out = Vec::with_capacity(12 + ct.len());
        out.extend_from_slice(&nonce);
        out.extend_from_slice(&ct);
        hex::encode(&out)
    }

    /// Decrypts a name produced by [`CfsCipher::encrypt_name`].
    ///
    /// Returns `None` for names that are not valid ciphertexts (e.g.
    /// files written outside CFS).
    pub fn decrypt_name(&self, stored: &str) -> Option<String> {
        if stored == "." || stored == ".." {
            return Some(stored.to_string());
        }
        let bytes = hex::decode(stored).ok()?;
        if bytes.len() <= 12 {
            return None;
        }
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&bytes[..12]);
        let cipher = ChaCha20::new(&self.name_key, &nonce);
        let pt = cipher.encrypt(1, &bytes[12..]);
        let name = String::from_utf8(pt).ok()?;
        // Verify the SIV relation so corrupted names are rejected.
        let tag = Hmac::<Sha256>::mac(&self.name_key, name.as_bytes());
        if tag[..12] != nonce {
            return None;
        }
        Some(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_round_trip_arbitrary_offsets() {
        let cipher = CfsCipher::new(&[1; 32]);
        let original: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut whole = original.clone();
        cipher.apply_content(42, 0, &mut whole);
        assert_ne!(whole, original);

        // Decrypting a sub-range in place matches the original slice.
        let mut tail = whole[300..800].to_vec();
        cipher.apply_content(42, 300, &mut tail);
        assert_eq!(tail, &original[300..800]);
    }

    #[test]
    fn chunked_encryption_equals_whole() {
        let cipher = CfsCipher::new(&[2; 32]);
        let data: Vec<u8> = (0..500u16).map(|i| (i % 256) as u8).collect();
        let mut whole = data.clone();
        cipher.apply_content(7, 0, &mut whole);

        let mut chunked = data.clone();
        let (a, rest) = chunked.split_at_mut(123);
        let (b, c) = rest.split_at_mut(200);
        cipher.apply_content(7, 0, a);
        cipher.apply_content(7, 123, b);
        cipher.apply_content(7, 323, c);
        assert_eq!(chunked, whole);
    }

    #[test]
    fn different_files_different_streams() {
        let cipher = CfsCipher::new(&[3; 32]);
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        cipher.apply_content(1, 0, &mut a);
        cipher.apply_content(2, 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn name_round_trip() {
        let cipher = CfsCipher::new(&[4; 32]);
        for name in ["paper.tex", "a", "file with spaces", "ümlaut.txt"] {
            let enc = cipher.encrypt_name(name);
            assert_ne!(enc, name);
            assert!(enc.chars().all(|c| c.is_ascii_hexdigit()));
            assert_eq!(cipher.decrypt_name(&enc).unwrap(), name);
        }
    }

    #[test]
    fn name_encryption_deterministic() {
        let cipher = CfsCipher::new(&[5; 32]);
        assert_eq!(cipher.encrypt_name("x.txt"), cipher.encrypt_name("x.txt"));
        assert_ne!(cipher.encrypt_name("x.txt"), cipher.encrypt_name("y.txt"));
    }

    #[test]
    fn dot_entries_pass_through() {
        let cipher = CfsCipher::new(&[6; 32]);
        assert_eq!(cipher.encrypt_name("."), ".");
        assert_eq!(cipher.encrypt_name(".."), "..");
        assert_eq!(cipher.decrypt_name(".").unwrap(), ".");
    }

    #[test]
    fn corrupted_name_rejected() {
        let cipher = CfsCipher::new(&[7; 32]);
        let mut enc = cipher.encrypt_name("real.txt");
        enc.replace_range(0..2, "00");
        // Either decodes to a mismatching SIV or fails UTF-8: both None
        // unless the flip is a no-op (it is not, first byte differs).
        assert!(cipher.decrypt_name(&enc).is_none() || enc == cipher.encrypt_name("real.txt"));
        assert!(cipher.decrypt_name("not-hex!").is_none());
        assert!(cipher.decrypt_name("abcd").is_none());
    }

    #[test]
    fn wrong_key_cannot_decrypt_names() {
        let c1 = CfsCipher::new(&[8; 32]);
        let c2 = CfsCipher::new(&[9; 32]);
        let enc = c1.encrypt_name("secret.doc");
        assert!(c2.decrypt_name(&enc).is_none());
    }
}
