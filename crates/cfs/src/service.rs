//! The CFS NFS service: an [`FfsService`] with cipher hooks.

use std::sync::Arc;

use ffs::Ffs;
use nfsv2::{
    DirOpArgs, FHandle, Fattr, FfsService, NfsService, NfsStat, ReaddirEntry, RequestCtx, Sattr,
    StatfsRes,
};

use crate::cipher::CfsCipher;

/// A CFS server: plain NFS semantics with optional server-side
/// encryption of contents and names.
pub struct CfsService {
    inner: FfsService,
    cipher: Option<CfsCipher>,
}

impl CfsService {
    /// An encrypting CFS export.
    pub fn encrypting(fs: Arc<Ffs>, fsid: u32, cipher: CfsCipher) -> CfsService {
        CfsService {
            inner: FfsService::new(fs, fsid),
            cipher: Some(cipher),
        }
    }

    /// The CFS-NE baseline: the CFS code path with a null cipher.
    pub fn passthrough(fs: Arc<Ffs>, fsid: u32) -> CfsService {
        CfsService {
            inner: FfsService::new(fs, fsid),
            cipher: None,
        }
    }

    /// The underlying plain service (test access to server-side bytes).
    pub fn inner(&self) -> &FfsService {
        &self.inner
    }

    fn enc_name(&self, name: &str) -> String {
        match &self.cipher {
            Some(c) => c.encrypt_name(name),
            None => name.to_string(),
        }
    }

    fn enc_args(&self, args: &DirOpArgs) -> DirOpArgs {
        DirOpArgs {
            dir: args.dir,
            name: self.enc_name(&args.name),
        }
    }
}

impl NfsService for CfsService {
    fn mount(&self, ctx: &RequestCtx, path: &str) -> Result<FHandle, NfsStat> {
        // Path components are stored encrypted; translate before resolve.
        match &self.cipher {
            None => self.inner.mount(ctx, path),
            Some(c) => {
                let encrypted: Vec<String> = path
                    .split('/')
                    .filter(|p| !p.is_empty())
                    .map(|p| c.encrypt_name(p))
                    .collect();
                self.inner.mount(ctx, &encrypted.join("/"))
            }
        }
    }

    fn getattr(&self, ctx: &RequestCtx, fh: &FHandle) -> Result<Fattr, NfsStat> {
        self.inner.getattr(ctx, fh)
    }

    fn setattr(&self, ctx: &RequestCtx, fh: &FHandle, sattr: &Sattr) -> Result<Fattr, NfsStat> {
        self.inner.setattr(ctx, fh, sattr)
    }

    fn lookup(&self, ctx: &RequestCtx, args: &DirOpArgs) -> Result<(FHandle, Fattr), NfsStat> {
        self.inner.lookup(ctx, &self.enc_args(args))
    }

    fn readlink(&self, ctx: &RequestCtx, fh: &FHandle) -> Result<String, NfsStat> {
        let stored = self.inner.readlink(ctx, fh)?;
        match &self.cipher {
            None => Ok(stored),
            Some(c) => c.decrypt_name(&stored).ok_or(NfsStat::Io),
        }
    }

    fn read(
        &self,
        ctx: &RequestCtx,
        fh: &FHandle,
        offset: u32,
        count: u32,
    ) -> Result<(Fattr, Vec<u8>), NfsStat> {
        let (attr, mut data) = self.inner.read(ctx, fh, offset, count)?;
        if let Some(c) = &self.cipher {
            let (_, ino, _) = fh.unpack();
            c.apply_content(ino, offset as u64, &mut data);
        }
        Ok((attr, data))
    }

    fn write(
        &self,
        ctx: &RequestCtx,
        fh: &FHandle,
        offset: u32,
        data: &[u8],
    ) -> Result<Fattr, NfsStat> {
        match &self.cipher {
            None => self.inner.write(ctx, fh, offset, data),
            Some(c) => {
                let (_, ino, _) = fh.unpack();
                let mut encrypted = data.to_vec();
                c.apply_content(ino, offset as u64, &mut encrypted);
                self.inner.write(ctx, fh, offset, &encrypted)
            }
        }
    }

    fn create(
        &self,
        ctx: &RequestCtx,
        args: &DirOpArgs,
        sattr: &Sattr,
    ) -> Result<(FHandle, Fattr), NfsStat> {
        self.inner.create(ctx, &self.enc_args(args), sattr)
    }

    fn remove(&self, ctx: &RequestCtx, args: &DirOpArgs) -> Result<(), NfsStat> {
        self.inner.remove(ctx, &self.enc_args(args))
    }

    fn rename(&self, ctx: &RequestCtx, from: &DirOpArgs, to: &DirOpArgs) -> Result<(), NfsStat> {
        self.inner
            .rename(ctx, &self.enc_args(from), &self.enc_args(to))
    }

    fn link(&self, ctx: &RequestCtx, from: &FHandle, to: &DirOpArgs) -> Result<(), NfsStat> {
        self.inner.link(ctx, from, &self.enc_args(to))
    }

    fn symlink(
        &self,
        ctx: &RequestCtx,
        args: &DirOpArgs,
        target: &str,
        sattr: &Sattr,
    ) -> Result<(), NfsStat> {
        let stored_target = self.enc_name(target);
        self.inner
            .symlink(ctx, &self.enc_args(args), &stored_target, sattr)
    }

    fn mkdir(
        &self,
        ctx: &RequestCtx,
        args: &DirOpArgs,
        sattr: &Sattr,
    ) -> Result<(FHandle, Fattr), NfsStat> {
        self.inner.mkdir(ctx, &self.enc_args(args), sattr)
    }

    fn rmdir(&self, ctx: &RequestCtx, args: &DirOpArgs) -> Result<(), NfsStat> {
        self.inner.rmdir(ctx, &self.enc_args(args))
    }

    fn readdir(
        &self,
        ctx: &RequestCtx,
        fh: &FHandle,
        cookie: u32,
        count: u32,
    ) -> Result<(Vec<ReaddirEntry>, bool), NfsStat> {
        let (entries, eof) = self.inner.readdir(ctx, fh, cookie, count)?;
        match &self.cipher {
            None => Ok((entries, eof)),
            Some(c) => {
                let decrypted = entries
                    .into_iter()
                    .map(|e| ReaddirEntry {
                        fileid: e.fileid,
                        // Undecryptable names (foreign files) are shown
                        // in their stored form, as real CFS does.
                        name: c.decrypt_name(&e.name).unwrap_or(e.name),
                        cookie: e.cookie,
                    })
                    .collect();
                Ok((decrypted, eof))
            }
        }
    }

    fn statfs(&self, ctx: &RequestCtx, fh: &FHandle) -> Result<StatfsRes, NfsStat> {
        self.inner.statfs(ctx, fh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffs::FsConfig;
    use ipsec::PlainChannel;
    use netsim::{Link, SimClock};
    use nfsv2::{NfsClient, RemoteFs};

    fn setup(cipher: Option<CfsCipher>) -> (RemoteFs, Arc<Ffs>) {
        let clock = SimClock::new();
        let (client_end, server_end) = Link::loopback(&clock);
        let fs = Arc::new(Ffs::format_in_memory(FsConfig::small()));
        let service = Arc::new(match cipher {
            Some(c) => CfsService::encrypting(fs.clone(), 1, c),
            None => CfsService::passthrough(fs.clone(), 1),
        });
        nfsv2::server::spawn(service, Box::new(PlainChannel::new(server_end)));
        let client = NfsClient::new(Box::new(PlainChannel::new(client_end)));
        (RemoteFs::mount(client, "/").unwrap(), fs)
    }

    #[test]
    fn passthrough_stores_plaintext() {
        let (remote, fs) = setup(None);
        remote.write_file("plain.txt", b"visible bytes").unwrap();
        let ino = fs.lookup(fs.root(), "plain.txt").unwrap();
        assert_eq!(fs.read(ino, 0, 100).unwrap(), b"visible bytes");
    }

    #[test]
    fn encrypting_stores_ciphertext() {
        let (remote, fs) = setup(Some(CfsCipher::new(&[7; 32])));
        remote.write_file("secret.txt", b"hidden bytes!").unwrap();

        // The client sees plaintext.
        assert_eq!(remote.read_file("secret.txt").unwrap(), b"hidden bytes!");

        // The server-side name is encrypted.
        let entries = fs.readdir(fs.root()).unwrap();
        let stored: Vec<&str> = entries
            .iter()
            .filter(|e| e.name != "." && e.name != "..")
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(stored.len(), 1);
        assert_ne!(stored[0], "secret.txt");

        // The server-side content is ciphertext.
        let ino = fs.lookup(fs.root(), stored[0]).unwrap();
        let on_disk = fs.read(ino, 0, 100).unwrap();
        assert_eq!(on_disk.len(), 13);
        assert_ne!(on_disk, b"hidden bytes!");
    }

    #[test]
    fn random_access_through_encryption() {
        let (remote, _) = setup(Some(CfsCipher::new(&[8; 32])));
        let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let fh = remote.write_file("big.bin", &payload).unwrap();
        // Unaligned mid-file read.
        let chunk = remote.client().read_all(&fh, 9_999, 5_000).unwrap();
        assert_eq!(chunk, &payload[9_999..14_999]);
        // Overwrite mid-file, re-read whole.
        remote.client().write_all(&fh, 100, b"PATCH").unwrap();
        let whole = remote.read_file("big.bin").unwrap();
        assert_eq!(&whole[100..105], b"PATCH");
        assert_eq!(&whole[..100], &payload[..100]);
        assert_eq!(&whole[105..], &payload[105..]);
    }

    #[test]
    fn directories_and_dot_entries() {
        let (remote, _) = setup(Some(CfsCipher::new(&[9; 32])));
        remote.mkdir_path("projects").unwrap();
        remote
            .write_file("projects/paper.tex", b"\\begin{document}")
            .unwrap();
        let (dir_fh, _) = remote.resolve("projects").unwrap();
        let names: Vec<String> = remote
            .client()
            .readdir_all(&dir_fh)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert!(names.contains(&".".to_string()));
        assert!(names.contains(&"..".to_string()));
        assert!(names.contains(&"paper.tex".to_string()), "{names:?}");
    }

    #[test]
    fn mount_translates_encrypted_paths() {
        let clock = SimClock::new();
        let (client_end, server_end) = Link::loopback(&clock);
        let fs = Arc::new(Ffs::format_in_memory(FsConfig::small()));
        let cipher = CfsCipher::new(&[10; 32]);
        let service = Arc::new(CfsService::encrypting(fs.clone(), 1, cipher.clone()));
        nfsv2::server::spawn(service, Box::new(PlainChannel::new(server_end)));
        let client = NfsClient::new(Box::new(PlainChannel::new(client_end)));
        let remote = RemoteFs::mount(client, "/").unwrap();
        remote.mkdir_path("exported").unwrap();
        // Mounting the subdirectory by its *plain* name works.
        let fh = remote.client().mount("/exported").unwrap();
        let attr = remote.client().getattr(&fh).unwrap();
        assert_eq!(attr.ftype, nfsv2::FType::Directory);
    }

    #[test]
    fn symlink_targets_encrypted() {
        let (remote, fs) = setup(Some(CfsCipher::new(&[11; 32])));
        remote
            .client()
            .symlink(&remote.root(), "ln", "target-name", &Sattr::unchanged())
            .unwrap();
        let (fh, _) = remote.resolve("ln").unwrap();
        assert_eq!(remote.client().readlink(&fh).unwrap(), "target-name");
        // Stored form differs.
        let entries = fs.readdir(fs.root()).unwrap();
        let stored_name = entries
            .iter()
            .find(|e| e.name != "." && e.name != "..")
            .unwrap();
        let ino = stored_name.ino;
        assert_ne!(fs.readlink(ino).unwrap(), "target-name");
    }

    #[test]
    fn wrong_key_sees_garbage() {
        // Write with key A, then serve the same volume with key B.
        let clock = SimClock::new();
        let fs = Arc::new(Ffs::format_in_memory(FsConfig::small()));
        {
            let (client_end, server_end) = Link::loopback(&clock);
            let service = Arc::new(CfsService::encrypting(
                fs.clone(),
                1,
                CfsCipher::new(&[1; 32]),
            ));
            nfsv2::server::spawn(service, Box::new(PlainChannel::new(server_end)));
            let client = NfsClient::new(Box::new(PlainChannel::new(client_end)));
            let remote = RemoteFs::mount(client, "/").unwrap();
            remote.write_file("doc.txt", b"plaintext body").unwrap();
        }
        let (client_end, server_end) = Link::loopback(&clock);
        let service = Arc::new(CfsService::encrypting(
            fs.clone(),
            1,
            CfsCipher::new(&[2; 32]),
        ));
        nfsv2::server::spawn(service, Box::new(PlainChannel::new(server_end)));
        let client = NfsClient::new(Box::new(PlainChannel::new(client_end)));
        let remote = RemoteFs::mount(client, "/").unwrap();
        // The name does not decrypt under key B: shown in stored form.
        let names = remote.client().readdir_all(&remote.root()).unwrap();
        let foreign = names
            .iter()
            .find(|e| e.name != "." && e.name != "..")
            .unwrap();
        assert_ne!(foreign.name, "doc.txt");
        // Neither the plain name nor the stored name resolves through
        // the key-B layer (LOOKUP re-encrypts whatever name is given),
        // so the file is unreachable without the right key.
        assert!(remote.read_file("doc.txt").is_err());
        assert!(remote.read_file(&foreign.name).is_err());
        // Reading the raw inode directly shows ciphertext, not the body.
        let ino = fs.lookup(fs.root(), &foreign.name).unwrap();
        assert_ne!(fs.read(ino, 0, 100).unwrap(), b"plaintext body");
    }
}
