//! CFS: a Blaze-style cryptographic filesystem layer, and **CFS-NE** —
//! the paper's baseline (CFS with encryption turned off, modified to
//! run remotely).
//!
//! The DisCFS prototype was "built by modifying the existing user-level
//! daemon of the cryptographic file system CFS, replacing the
//! encryption functionality with the access control mechanism" (§5).
//! This crate supplies that lineage: a layered NFS service over `ffs`
//! whose cipher hooks can be
//!
//! * **on** ([`CfsService::encrypting`]) — file contents, names and
//!   symlink targets are encrypted on the server with per-attach keys
//!   (ChaCha20 content streams, SIV-style deterministic name
//!   encryption), or
//! * **off** ([`CfsService::passthrough`]) — the CFS-NE baseline used
//!   in Figures 7–12: the same code path, with a null cipher.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use cfs::{CfsCipher, CfsService};
//! use ffs::{Ffs, FsConfig};
//! use ipsec::PlainChannel;
//! use netsim::{Link, SimClock};
//! use nfsv2::{NfsClient, RemoteFs};
//!
//! let clock = SimClock::new();
//! let (client_end, server_end) = Link::loopback(&clock);
//! let fs = Arc::new(Ffs::format_in_memory(FsConfig::small()));
//! let service = Arc::new(CfsService::encrypting(fs, 1, CfsCipher::new(&[7; 32])));
//! nfsv2::server::spawn(service, Box::new(PlainChannel::new(server_end)));
//!
//! let client = NfsClient::new(Box::new(PlainChannel::new(client_end)));
//! let remote = RemoteFs::mount(client, "/").unwrap();
//! remote.write_file("secret.txt", b"the plans").unwrap();
//! assert_eq!(remote.read_file("secret.txt").unwrap(), b"the plans");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cipher;
mod service;

pub use cipher::CfsCipher;
pub use service::CfsService;
