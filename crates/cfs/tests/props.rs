//! Property tests for the CFS cipher: encryption commutes with
//! arbitrary chunking/offset patterns, and name encryption is a
//! deterministic bijection.

use cfs::CfsCipher;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whole-buffer encryption equals any split into sub-ranges.
    #[test]
    fn content_chunking_invariant(
        key in any::<[u8; 32]>(),
        ino in any::<u32>(),
        base_offset in 0u64..100_000,
        data in proptest::collection::vec(any::<u8>(), 1..800),
        split in any::<prop::sample::Index>(),
    ) {
        let cipher = CfsCipher::new(&key);
        let mut whole = data.clone();
        cipher.apply_content(ino, base_offset, &mut whole);

        let split = split.index(data.len());
        let mut parts = data.clone();
        let (a, b) = parts.split_at_mut(split);
        cipher.apply_content(ino, base_offset, a);
        cipher.apply_content(ino, base_offset + split as u64, b);
        prop_assert_eq!(parts, whole);
    }

    /// Applying twice is the identity (XOR stream).
    #[test]
    fn content_involution(
        key in any::<[u8; 32]>(),
        ino in any::<u32>(),
        offset in 0u64..1_000_000,
        data in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let cipher = CfsCipher::new(&key);
        let mut buf = data.clone();
        cipher.apply_content(ino, offset, &mut buf);
        cipher.apply_content(ino, offset, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// Name encryption round-trips for any valid file name.
    #[test]
    fn name_round_trip(name in "[^/\u{0}]{1,100}") {
        let cipher = CfsCipher::new(&[7; 32]);
        let enc = cipher.encrypt_name(&name);
        if name != "." && name != ".." {
            prop_assert_ne!(&enc, &name);
        }
        prop_assert_eq!(cipher.decrypt_name(&enc).unwrap(), name);
    }

    /// Distinct names map to distinct stored names (injectivity).
    #[test]
    fn name_injective(a in "[a-z]{1,30}", b in "[a-z]{1,30}") {
        let cipher = CfsCipher::new(&[7; 32]);
        if a != b {
            prop_assert_ne!(cipher.encrypt_name(&a), cipher.encrypt_name(&b));
        }
    }

    /// decrypt_name never panics on arbitrary stored strings.
    #[test]
    fn decrypt_never_panics(stored in ".{0,200}") {
        let cipher = CfsCipher::new(&[7; 32]);
        let _ = cipher.decrypt_name(&stored);
    }
}
