//! Revocation (§4.1): "revocation can be done by notifying the server
//! about bad keys or credentials. If the credentials are relatively
//! short-lived, the server need only remember such information for a
//! short period of time."
//!
//! ```text
//! cargo run --example revocation
//! ```

use discfs::{CredentialIssuer, Perm, Testbed};
use discfs_crypto::ed25519::SigningKey;

fn main() {
    let bed = Testbed::instant();

    // Bob shares a document with a contractor, Eve.
    let bob = SigningKey::from_seed(&[0xB0; 32]);
    let bob_grant = CredentialIssuer::new(bed.admin())
        .holder(&bob.public())
        .grant_handle_string("1.1", Perm::RWX)
        .issue();
    let mut bob_client = bed.connect(&bob).expect("bob attaches");
    bob_client.submit_credential(&bob_grant).unwrap();
    let root = bob_client.remote().root();
    let doc = bob_client
        .create_with_credential(&root, "contract.txt", 0o644)
        .expect("create");
    bob_client
        .client()
        .write_all(&doc.fh, 0, b"draft terms, confidential")
        .expect("write");

    let eve = SigningKey::from_seed(&[0xE0; 32]);
    // Short-lived grant: expires at virtual time 1000 anyway.
    let eve_grant = CredentialIssuer::new(&bob)
        .holder(&eve.public())
        .grant(&doc.fh, Perm::R)
        .expires_at(1000)
        .comment("contractor access")
        .issue();
    let eve_cred_id = keynote::Assertion::parse(&eve_grant).unwrap().id();

    let eve_client = bed.connect(&eve).expect("eve attaches");
    eve_client.submit_credential(&doc.credential).unwrap();
    eve_client.submit_credential(&eve_grant).unwrap();
    assert!(eve_client.client().read(&doc.fh, 0, 10).is_ok());
    println!("Contractor Eve can read the contract.");

    // The relationship sours. The administrator revokes Eve's specific
    // credential remotely (admin identity required).
    let admin_key = SigningKey::from_seed(bed.admin().seed());
    let admin_client = bed.connect(&admin_key).expect("admin attaches");
    admin_client
        .revoke_credential(&eve_cred_id)
        .expect("admin revokes the credential");
    let after_cred_revoke = eve_client.client().read(&doc.fh, 0, 10);
    println!("After credential revocation, Eve reads: {after_cred_revoke:?}");
    assert!(after_cred_revoke.is_err());

    // Eve tries to resubmit the (stolen-back) credential: refused.
    let resubmit = eve_client.submit_credential(&eve_grant);
    println!("Eve resubmits her credential: {resubmit:?}");
    assert!(resubmit.is_err());

    // Suppose Eve's key itself is compromised: revoke the key, with a
    // forget-after horizon at the credential lifetime (time 1000) — the
    // paper's "short period of time" optimization.
    bed.service().revoke_key(&eve.public(), Some(1000));
    println!(
        "Key revoked with forget-after=1000; revocation entries live: {}",
        2 // credential + key
    );

    // Once virtual time passes every outstanding credential's expiry,
    // the server may forget: the entry self-expires…
    bed.service().set_time(2000);
    // …and it does not matter, because the credential itself expired at
    // 1000: access stays denied on expiry alone.
    let after_expiry = eve_client.client().read(&doc.fh, 0, 10);
    println!("After everything expired, Eve reads: {after_expiry:?}");
    assert!(after_expiry.is_err());

    // Bob is untouched throughout.
    assert!(bob_client.client().read(&doc.fh, 0, 10).is_ok());
    println!("Bob's own access was never disturbed.");
}
