//! Time-of-day access conditions (§3.1): "the access policy can
//! consider factors such as time-of-day, so that, for example,
//! leisure-related files may not be available during office hours."
//!
//! ```text
//! cargo run --example time_of_day
//! ```

use discfs::{CredentialIssuer, Perm, Testbed};
use discfs_crypto::ed25519::SigningKey;

fn main() {
    let bed = Testbed::instant();

    // Bob owns his home tree and stores a leisure file.
    let bob = SigningKey::from_seed(&[0xB0; 32]);
    let bob_grant = CredentialIssuer::new(bed.admin())
        .holder(&bob.public())
        .grant_handle_string("1.1", Perm::RWX)
        .issue();
    let mut bob_client = bed.connect(&bob).expect("bob attaches");
    bob_client.submit_credential(&bob_grant).unwrap();
    let root = bob_client.remote().root();
    let game = bob_client
        .create_with_credential(&root, "adventure.sav", 0o644)
        .expect("create");
    bob_client
        .client()
        .write_all(&game.fh, 0, b"you are in a maze of twisty little passages")
        .expect("write");

    // Bob lets his colleague Carol read the save file — but only
    // OUTSIDE office hours (before 9, or 17 and later), and only until
    // the project deadline at virtual time 10_000.
    let carol = SigningKey::from_seed(&[0xCA; 32]);
    let evening = CredentialIssuer::new(&bob)
        .holder(&carol.public())
        .grant(&game.fh, Perm::R)
        .valid_hours(17, 24)
        .expires_at(10_000)
        .comment("evening-only game access for carol")
        .issue();
    let morning = CredentialIssuer::new(&bob)
        .holder(&carol.public())
        .grant(&game.fh, Perm::R)
        .valid_hours(0, 9)
        .expires_at(10_000)
        .comment("early-morning game access for carol")
        .issue();

    let carol_client = bed.connect(&carol).expect("carol attaches");
    carol_client.submit_credential(&game.credential).unwrap();
    carol_client.submit_credential(&evening).unwrap();
    carol_client.submit_credential(&morning).unwrap();

    for hour in [8u32, 11, 14, 16, 17, 22] {
        bed.service().set_hour(hour);
        let result = carol_client.client().read(&game.fh, 0, 16);
        println!(
            "{hour:02}:00 — carol reads adventure.sav: {}",
            match &result {
                Ok(_) => "ALLOWED (off hours)",
                Err(_) => "denied (office hours)",
            }
        );
        let in_office_hours = (9..17).contains(&hour);
        assert_eq!(result.is_err(), in_office_hours);
    }

    // After the expiry time, even the evening no longer works.
    bed.service().set_time(20_000);
    bed.service().set_hour(22);
    let expired = carol_client.client().read(&game.fh, 0, 16);
    println!("after deadline, 22:00 — carol reads: {expired:?} (credential expired)");
    assert!(expired.is_err());

    // Bob himself is unaffected by Carol's restrictions.
    bed.service().set_hour(11);
    assert!(bob_client.client().read(&game.fh, 0, 16).is_ok());
    println!("Bob (the owner) still reads fine at 11:00.");
}
