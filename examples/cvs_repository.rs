//! The paper's own war story (§4.2): the authors' host had no Unix
//! group covering all five of them, so the CVS repository had to be
//! made world-writable. With DisCFS, the repository owner simply issues
//! read-write credentials to each co-author.
//!
//! ```text
//! cargo run --example cvs_repository
//! ```

use discfs::{CredentialIssuer, Perm, Testbed};
use discfs_crypto::ed25519::SigningKey;

fn main() {
    let bed = Testbed::instant();

    // The repository owner (first author) sets up the CVS tree.
    let owner = SigningKey::from_seed(&[0x01; 32]);
    let owner_grant = CredentialIssuer::new(bed.admin())
        .holder(&owner.public())
        .grant_handle_string("1.1", Perm::RWX)
        .comment("home tree for the repository owner")
        .issue();
    let mut owner_client = bed.connect(&owner).expect("owner attaches");
    owner_client.submit_credential(&owner_grant).unwrap();

    let root = owner_client.remote().root();
    let repo = owner_client
        .mkdir_with_credential(&root, "cvsroot", 0o755)
        .expect("mkdir cvsroot");
    let paper = owner_client
        .create_with_credential(&repo.fh, "paper.tex,v", 0o644)
        .expect("create paper");
    owner_client
        .client()
        .write_all(
            &paper.fh,
            0,
            b"head 1.1;\n\n1.1\nlog\n@initial import@\ntext\n@\\section{Intro}@\n",
        )
        .expect("write rcs file");
    println!("Owner created cvsroot/ with paper.tex,v");

    // The four co-authors, each with their own key.
    let coauthors: Vec<(&str, SigningKey)> = vec![
        ("vassilis", SigningKey::from_seed(&[0x02; 32])),
        ("sotiris", SigningKey::from_seed(&[0x03; 32])),
        ("angelos", SigningKey::from_seed(&[0x04; 32])),
        ("jms", SigningKey::from_seed(&[0x05; 32])),
    ];

    // "The owner of the repository would simply need to issue
    // read-write certificates to all the other authors."
    for (name, key) in &coauthors {
        let rw = CredentialIssuer::new(&owner)
            .holder(&key.public())
            .grant(&repo.fh, Perm::RWX)
            .grant(&paper.fh, Perm::RW)
            .comment(&format!("cvs access for {name}"))
            .issue();

        let client = bed.connect(key).expect("coauthor attaches");
        client.submit_credential(&repo.credential).unwrap();
        client.submit_credential(&paper.credential).unwrap();
        client.submit_credential(&rw).unwrap();

        // Each co-author appends a revision (read-modify-write, the CVS
        // pattern).
        let current = client
            .client()
            .read_all(&paper.fh, 0, 4096)
            .expect("checkout");
        let mut next = current.clone();
        next.extend_from_slice(format!("% edited by {name}\n").as_bytes());
        client
            .client()
            .write_all(&paper.fh, 0, &next)
            .expect("commit");
        println!("{name}: committed revision ({} bytes total)", next.len());
    }

    // Every edit landed; the file was never world-writable, and the
    // host administrator was never involved.
    let owner_view_client = bed.connect(&owner).expect("owner re-attaches");
    owner_view_client.submit_credential(&owner_grant).unwrap();
    owner_view_client
        .submit_credential(&paper.credential)
        .unwrap();
    let final_text = owner_view_client
        .client()
        .read_all(&paper.fh, 0, 4096)
        .expect("owner reads final");
    let text = String::from_utf8_lossy(&final_text);
    for (name, _) in &coauthors {
        assert!(
            text.contains(&format!("% edited by {name}")),
            "{name}'s edit missing"
        );
    }
    println!(
        "\nFinal file contains all {} co-author edits.",
        coauthors.len()
    );

    // A random user on the same server still cannot read the repository.
    let stranger = SigningKey::from_seed(&[0x66; 32]);
    let stranger_client = bed.connect(&stranger).expect("stranger attaches");
    assert!(stranger_client.client().read(&paper.fh, 0, 10).is_err());
    println!("Strangers remain locked out — no world-writable workaround needed.");
}
