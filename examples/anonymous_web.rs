//! The paper's §7 future-work scenario: "new file sharing policies for
//! unusual scenarios, such as the untrusted users characteristic of the
//! WWW" — anonymous browsing of published files, with credentials still
//! gating everything else.
//!
//! ```text
//! cargo run --example anonymous_web
//! ```

use discfs::{CredentialIssuer, Perm, Testbed};
use discfs_crypto::ed25519::SigningKey;

fn main() {
    let bed = Testbed::instant();

    // The webmaster publishes a site.
    let webmaster = SigningKey::from_seed(&[0x3B; 32]);
    let grant = CredentialIssuer::new(bed.admin())
        .holder(&webmaster.public())
        .grant_handle_string("1.1", Perm::RWX)
        .issue();
    let mut master_client = bed.connect(&webmaster).expect("webmaster attaches");
    master_client.submit_credential(&grant).unwrap();
    let root = master_client.remote().root();

    let index = master_client
        .create_with_credential(&root, "index.html", 0o644)
        .expect("create index");
    master_client
        .client()
        .write_all(&index.fh, 0, b"<h1>Welcome to DisCFS</h1>")
        .expect("write");
    let draft = master_client
        .create_with_credential(&root, "draft.html", 0o600)
        .expect("create draft");
    master_client
        .client()
        .write_all(&draft.fh, 0, b"<h1>Unreleased redesign</h1>")
        .expect("write");

    // Publish index.html to the world: read access for ANY key, no
    // credential needed (like a Web server's anonymous GET).
    bed.service().set_public_access(&index.fh, Perm::R);
    println!("index.html published for anonymous reading.\n");

    // A complete stranger — fresh keypair, no credentials, no account.
    let visitor = SigningKey::from_seed(&[0x77; 32]);
    let browser = bed.connect(&visitor).expect("visitor attaches");

    let page = browser
        .client()
        .read_all(&index.fh, 0, 100)
        .expect("anonymous read of the published page");
    println!(
        "visitor GET index.html → {:?}",
        String::from_utf8_lossy(&page)
    );

    // The unpublished draft stays protected.
    let denied = browser.client().read(&draft.fh, 0, 10);
    println!("visitor GET draft.html → {denied:?} (protected)");
    assert!(denied.is_err());

    // Anonymous visitors cannot deface the published page either.
    let deface = browser.client().write(&index.fh, 0, b"hacked");
    println!("visitor PUT index.html → {deface:?} (read-only publication)");
    assert!(deface.is_err());

    // Every anonymous access was still attributed to the visitor's key
    // in the audit log — accountability without accounts.
    let visits = bed
        .service()
        .audit()
        .by_requester(&discfs_crypto::hex::encode(&visitor.public().0));
    println!(
        "\naudit: {} operations recorded for the visitor's key",
        visits.len()
    );
    assert!(visits.iter().any(|r| r.op == "read" && r.allowed));

    // Unpublishing takes effect immediately.
    bed.service().set_public_access(&index.fh, Perm::NONE);
    let after = browser.client().read(&index.fh, 0, 10);
    println!("after unpublish, visitor GET index.html → {after:?}");
    assert!(after.is_err());
}
