//! Quickstart: store a file on a DisCFS server and share it with a
//! user the server has never heard of.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use discfs::{CredentialIssuer, Perm, Testbed};
use discfs_crypto::ed25519::SigningKey;

fn main() {
    // A server ("Alice" in the paper's Figure 6) with an administrator
    // whose key is the root of the trust graph.
    let bed = Testbed::instant();
    println!("DisCFS server up; administrator key is the policy root.\n");

    // Bob is an internal user: the admin granted him the root directory.
    let bob = SigningKey::from_seed(&[0xB0; 32]);
    let bob_grant = CredentialIssuer::new(bed.admin())
        .holder(&bob.public())
        .grant_handle_string("1.1", Perm::RWX)
        .comment("root directory for bob")
        .issue();
    println!("Administrator issued Bob a credential:\n{bob_grant}");

    // Bob attaches (IKE handshake binds his key to the connection),
    // submits his credential, and stores a paper.
    let mut bob_client = bed.connect(&bob).expect("bob attaches");
    bob_client.submit_credential(&bob_grant).expect("accepted");
    let root = bob_client.remote().root();
    let created = bob_client
        .create_with_credential(&root, "paper.tex", 0o644)
        .expect("create with credential");
    bob_client
        .client()
        .write_all(
            &created.fh,
            0,
            b"\\title{Secure and Flexible Global File Sharing}",
        )
        .expect("write");
    println!(
        "Bob stored paper.tex (handle {}); the server returned him a credential for it.\n",
        created.fh.credential_string()
    );

    // Alice is an *external* user — no account, unknown to the server.
    // Bob shares the paper by issuing a credential and emailing it to
    // her, together with his own chain link. Nobody talks to the admin.
    let alice = SigningKey::from_seed(&[0xA1; 32]);
    let to_alice = CredentialIssuer::new(&bob)
        .holder(&alice.public())
        .grant(&created.fh, Perm::R)
        .comment("read access to my paper for alice")
        .issue();
    println!("Bob issued Alice read access:\n{to_alice}");

    // Alice attaches with her own key and presents the chain.
    let alice_client = bed.connect(&alice).expect("alice attaches");
    alice_client
        .submit_credential(&created.credential)
        .expect("chain link: server -> bob");
    alice_client
        .submit_credential(&to_alice)
        .expect("chain link: bob -> alice");

    let text = alice_client
        .client()
        .read_all(&created.fh, 0, 100)
        .expect("alice reads");
    println!("Alice read the paper: {:?}", String::from_utf8_lossy(&text));

    // But writing is denied: Bob delegated R only.
    let denied = alice_client.client().write(&created.fh, 0, b"edit");
    println!("Alice's write attempt: {denied:?} (denied, as expected)");

    // The audit log shows key A used, key B authorized (§4.2).
    let denials = bed.service().audit().denials();
    println!(
        "\nAudit log recorded {} denial(s); last: op={} requester={}…",
        denials.len(),
        denials.last().map(|r| r.op.as_str()).unwrap_or("-"),
        &denials
            .last()
            .map(|r| r.requester.clone())
            .unwrap_or_default()[..16],
    );
}
