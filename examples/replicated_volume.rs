//! Distributed volume tour: a 4-node replicated block volume that
//! survives a node death, then the same tier carrying a full DisCFS
//! workload through the `StoreBackend::Replicated` preset.
//!
//! Part one drives the block layer directly: write through a 4-node
//! R=2 volume with a hot spare, kill a node mid-read, and watch the
//! reads fail over to the surviving replicas while the spare is
//! rebuilt to full strength. Part two mounts DisCFS on top of the
//! same tier (journaled files per node) and reports the wire-level
//! counters the RPC clients collect.
//!
//! Run with `cargo run --release --example replicated_volume`.

use discfs::{CredentialIssuer, Perm, Testbed};
use discfs_crypto::ed25519::SigningKey;
use ffs::{FsConfig, StoreBackend};
use netsim::{LinkConfig, SimClock};
use store::{BlockStore, RemoteOptions, RemoteStore, ReplicatedStore, SimStore, BLOCK_SIZE};

const NODES: usize = 4;
const REPLICAS: usize = 2;
const BLOCKS: u64 = 64;

/// One storage node: an in-memory store served over a simulated
/// 100 Mbps Ethernet link by a `BlockServer` thread.
fn node(clock: &SimClock, blocks: u64) -> RemoteStore {
    RemoteStore::serve_local(
        SimStore::untimed(blocks),
        clock,
        LinkConfig::ethernet_100mbps(),
        RemoteOptions::default(),
    )
}

fn block_layer_tour() {
    println!("-- block layer: 4 nodes, R=2, one hot spare --");
    let clock = SimClock::new();
    let node_bc = ReplicatedStore::node_block_count(BLOCKS, NODES, REPLICAS);
    let store = ReplicatedStore::new(
        (0..NODES).map(|_| node(&clock, node_bc)).collect(),
        vec![node(&clock, node_bc)],
        BLOCKS,
        REPLICAS,
    );

    let payload = |i: u64| {
        let mut b = vec![0u8; BLOCK_SIZE];
        b[..8].copy_from_slice(&i.to_le_bytes());
        b
    };
    for i in 0..BLOCKS {
        store.write_block(i, &payload(i));
    }
    store.flush().expect("commit epoch 1");
    println!(
        "  wrote {BLOCKS} blocks, committed epoch {} across {} nodes",
        store.epoch(),
        store.live_nodes()
    );

    store.kill_node(2);
    println!("  killed node 2; reading the whole volume back ...");
    let mut failed = 0;
    for i in 0..BLOCKS {
        if store.read_block(i) != payload(i) {
            failed += 1;
        }
    }
    let stats = store.stats();
    println!(
        "  {failed} failed reads; {} served by a non-primary replica; \
         {} rebuild(s) onto the spare; back to {} live nodes",
        stats.replica_reads,
        stats.rebuilds,
        store.live_nodes()
    );
    assert_eq!(failed, 0, "a single node death must not fail any read");
    assert_eq!(store.live_nodes(), NODES);
}

fn discfs_on_replicated_tour(dir: &std::path::Path) {
    println!("\n-- DisCFS on StoreBackend::Replicated (journaled file per node) --");
    let backend = StoreBackend::Replicated {
        nodes: 4,
        replicas: 2,
        spares: 1,
        ethernet: true,
        opts: RemoteOptions::default(),
        inner: Box::new(StoreBackend::FileJournal {
            dir: dir.to_path_buf(),
        }),
    };
    let bed = Testbed::with_backend(FsConfig::small(), LinkConfig::instant(), 128, &backend);
    let bob = SigningKey::from_seed(&[0xB0; 32]);
    let mut client = bed.connect(&bob).expect("connect");
    let grant = CredentialIssuer::new(bed.admin())
        .holder(&bob.public())
        .grant_handle_string("1.1", Perm::RWX)
        .issue();
    client.submit_credential(&grant).expect("grant");

    let payload = vec![0x42u8; 2 * BLOCK_SIZE];
    let root = client.remote().root();
    for i in 0..4 {
        let created = client
            .create_with_credential(&root, &format!("report-{i}.dat"), 0o644)
            .expect("create");
        client
            .client()
            .write_all(&created.fh, 0, &payload)
            .expect("write");
    }
    bed.fs().sync().expect("flush to the volume");
    bed.fs().check().expect("volume consistent");

    let stats = bed.store_stats();
    println!(
        "  backend `{}`: {} RPC round-trips, {} bytes on wire, {} block writes, {} retries",
        backend.label(),
        stats.rpc_calls,
        stats.bytes_on_wire,
        stats.writes,
        stats.retries,
    );
}

fn main() {
    block_layer_tour();
    let dir = std::env::temp_dir().join(format!("discfs-example-repl-{}", std::process::id()));
    discfs_on_replicated_tour(&dir);
    std::fs::remove_dir_all(&dir).ok();
    println!("\nA node can die mid-workload and the volume keeps serving every read.");
}
