//! Distributed volume tour: a 4-node replicated block volume that
//! survives a node death, then the same tier carrying a full DisCFS
//! workload through the `StoreBackend::Replicated` preset.
//!
//! Part one drives the block layer directly: write through a 4-node
//! R=2 volume with a hot spare, kill a node mid-read, and watch the
//! reads fail over to the surviving replicas while the spare is
//! rebuilt to full strength. Part two walks a coordinator handoff:
//! A owns the volume under a server-side lease, falls silent, B takes
//! over at expiry, A's zombie writes bounce off the fence, and the
//! fenced A re-acquires and rejoins. Part three mounts DisCFS on top
//! of the same tier (journaled files per node) and reports the
//! wire-level counters the RPC clients collect.
//!
//! Run with `cargo run --release --example replicated_volume`.

use std::sync::Arc;
use std::time::Duration;

use discfs::{CredentialIssuer, Perm, Testbed};
use discfs_crypto::ed25519::SigningKey;
use ffs::{FsConfig, StoreBackend};
use netsim::{LinkConfig, SimClock};
use store::{
    BlockStore, NodeLease, RemoteError, RemoteOptions, RemoteStore, ReplicatedStore, SimStore,
    BLOCK_SIZE,
};

const NODES: usize = 4;
const REPLICAS: usize = 2;
const BLOCKS: u64 = 64;

/// One storage node: an in-memory store served over a simulated
/// 100 Mbps Ethernet link by a `BlockServer` thread.
fn node(clock: &SimClock, blocks: u64) -> RemoteStore {
    RemoteStore::serve_local(
        SimStore::untimed(blocks),
        clock,
        LinkConfig::ethernet_100mbps(),
        RemoteOptions::default(),
    )
}

fn block_layer_tour() {
    println!("-- block layer: 4 nodes, R=2, one hot spare --");
    let clock = SimClock::new();
    let node_bc = ReplicatedStore::node_block_count(BLOCKS, NODES, REPLICAS);
    let store = ReplicatedStore::new(
        (0..NODES).map(|_| node(&clock, node_bc)).collect(),
        vec![node(&clock, node_bc)],
        BLOCKS,
        REPLICAS,
    );

    let payload = |i: u64| {
        let mut b = vec![0u8; BLOCK_SIZE];
        b[..8].copy_from_slice(&i.to_le_bytes());
        b
    };
    for i in 0..BLOCKS {
        store.write_block(i, &payload(i));
    }
    store.flush().expect("commit epoch 1");
    println!(
        "  wrote {BLOCKS} blocks, committed epoch {} across {} nodes",
        store.epoch(),
        store.live_nodes()
    );

    store.kill_node(2);
    println!("  killed node 2; reading the whole volume back ...");
    let mut failed = 0;
    for i in 0..BLOCKS {
        if store.read_block(i) != payload(i) {
            failed += 1;
        }
    }
    let stats = store.stats();
    println!(
        "  {failed} failed reads; {} served by a non-primary replica; \
         {} rebuild(s) onto the spare; back to {} live nodes",
        stats.replica_reads,
        stats.rebuilds,
        store.live_nodes()
    );
    assert_eq!(failed, 0, "a single node death must not fail any read");
    assert_eq!(store.live_nodes(), NODES);
}

/// Part three: coordinator handoff under lease fencing. Coordinator A
/// owns the volume, falls silent, and B takes over once A's lease
/// expires — while A's zombie writes bounce off the server-side fence
/// and clients keep reading throughout.
fn coordinator_handoff_tour() {
    println!("\n-- coordinator handoff: leases, fencing, zero lost reads --");
    let clock = SimClock::new();
    let node_bc = ReplicatedStore::node_block_count(BLOCKS, NODES, REPLICAS);
    // The nodes outlive any coordinator: each is a store plus a lease
    // table, and every coordinator brings its own connections.
    let backing: Vec<(Arc<SimStore>, Arc<NodeLease>)> = (0..NODES)
        .map(|_| {
            (
                Arc::new(SimStore::untimed(node_bc)),
                Arc::new(NodeLease::default()),
            )
        })
        .collect();
    let connect = |()| -> Vec<RemoteStore> {
        backing
            .iter()
            .map(|(node, lease)| {
                RemoteStore::serve_shared(
                    Arc::clone(node) as Arc<dyn BlockStore>,
                    Arc::clone(lease),
                    &clock,
                    LinkConfig::ethernet_100mbps(),
                    RemoteOptions::default(),
                    None,
                )
            })
            .collect()
    };
    let payload = |i: u64, tag: u8| {
        let mut b = vec![tag; BLOCK_SIZE];
        b[..8].copy_from_slice(&i.to_le_bytes());
        b
    };

    // Coordinator A acquires the lease and commits a workload.
    let ttl = Duration::from_secs(30);
    let store_a = ReplicatedStore::new(connect(()), Vec::new(), BLOCKS, REPLICAS);
    store_a
        .try_acquire_lease(1, ttl)
        .expect("A leases the volume");
    for i in 0..BLOCKS {
        store_a.write_block(i, &payload(i, 0xA1));
    }
    store_a.flush().expect("A commits");
    println!("  A holds the lease, committed epoch {}", store_a.epoch());

    // B cannot steal the lease while A's is unexpired.
    let store_b = ReplicatedStore::new(connect(()), Vec::new(), BLOCKS, REPLICAS);
    match store_b.try_acquire_lease(2, ttl) {
        Err(RemoteError::LeaseHeld { holder, .. }) => {
            println!("  B's takeover refused: lease held by coordinator {holder}");
        }
        other => panic!("expected LeaseHeld, got {other:?}"),
    }

    // A falls silent; its lease expires on the virtual clock, B
    // acquires, and B's mount adopts A's committed history.
    clock.advance(ttl + Duration::from_secs(1));
    store_b.try_acquire_lease(2, ttl).expect("B takes over");
    println!(
        "  A silent for {ttl:?}: B holds the lease at epoch {}",
        store_b.epoch()
    );
    store_b.write_block(0, &payload(0, 0xB2));
    store_b.flush().expect("B commits");

    // A comes back as a zombie: every straggler write is fenced at
    // the nodes, nothing lands, and A latches read-only.
    store_a.write_block(1, &payload(1, 0xEE));
    let fenced = store_a.flush();
    assert!(fenced.is_err(), "A's straggler must be fenced");
    assert!(store_a.is_fenced());
    println!(
        "  A's straggler flush: \"{}\" ({} frames refused at the nodes)",
        fenced.unwrap_err(),
        backing
            .iter()
            .map(|(_, lease)| lease.fenced_rejections())
            .sum::<u64>()
    );

    // Clients kept reading throughout — B serves every block, with
    // A's fenced junk nowhere to be seen.
    let mut failed = 0;
    for i in 0..BLOCKS {
        let expect = if i == 0 {
            payload(0, 0xB2)
        } else {
            payload(i, 0xA1)
        };
        if store_b.read_block(i) != expect {
            failed += 1;
        }
    }
    assert_eq!(failed, 0, "handoff must not lose or corrupt a block");
    println!(
        "  0 failed reads across the handoff, epoch {}",
        store_b.epoch()
    );

    // The fenced A can rejoin properly: wait out B's lease, then
    // re-acquire under its remembered terms and re-sync in one step.
    clock.advance(ttl + Duration::from_secs(1));
    store_a.reacquire().expect("A re-leases and re-syncs");
    assert!(!store_a.is_fenced());
    store_a.write_block(2, &payload(2, 0xA3));
    store_a.flush().expect("A writes under its fresh lease");
    println!(
        "  A re-acquired and resumed writing at epoch {}",
        store_a.epoch()
    );
}

fn discfs_on_replicated_tour(dir: &std::path::Path) {
    println!("\n-- DisCFS on StoreBackend::Replicated (journaled file per node) --");
    let backend = StoreBackend::Replicated {
        nodes: 4,
        replicas: 2,
        spares: 1,
        ethernet: true,
        opts: RemoteOptions::default(),
        inner: Box::new(StoreBackend::FileJournal {
            dir: dir.to_path_buf(),
        }),
    };
    let bed = Testbed::with_backend(FsConfig::small(), LinkConfig::instant(), 128, &backend);
    let bob = SigningKey::from_seed(&[0xB0; 32]);
    let mut client = bed.connect(&bob).expect("connect");
    let grant = CredentialIssuer::new(bed.admin())
        .holder(&bob.public())
        .grant_handle_string("1.1", Perm::RWX)
        .issue();
    client.submit_credential(&grant).expect("grant");

    let payload = vec![0x42u8; 2 * BLOCK_SIZE];
    let root = client.remote().root();
    for i in 0..4 {
        let created = client
            .create_with_credential(&root, &format!("report-{i}.dat"), 0o644)
            .expect("create");
        client
            .client()
            .write_all(&created.fh, 0, &payload)
            .expect("write");
    }
    bed.fs().sync().expect("flush to the volume");
    bed.fs().check().expect("volume consistent");

    let stats = bed.store_stats();
    println!(
        "  backend `{}`: {} RPC round-trips, {} bytes on wire, {} block writes, {} retries",
        backend.label(),
        stats.rpc_calls,
        stats.bytes_on_wire,
        stats.writes,
        stats.retries,
    );
}

fn main() {
    block_layer_tour();
    coordinator_handoff_tour();
    let dir = std::env::temp_dir().join(format!("discfs-example-repl-{}", std::process::id()));
    discfs_on_replicated_tour(&dir);
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "\nA node can die mid-workload, a coordinator can die mid-ownership — \
         the volume keeps serving every read either way."
    );
}
