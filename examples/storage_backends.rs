//! Storage-backend tour: the same DisCFS workload on each block-store
//! backend, showing what each one adds — dedup hit ratios, journaled
//! persistence with crash replay, encryption at rest, and the full
//! persistent-volume reboot cycle (`Ffs::mount` via
//! `Testbed::reboot`).
//!
//! Run with `cargo run --release --example storage_backends`.

use discfs::{CredentialIssuer, Perm, Testbed};
use discfs_crypto::ed25519::SigningKey;
use ffs::{FsConfig, StoreBackend};
use netsim::LinkConfig;
use store::{BlockStore, FileStore, BLOCK_SIZE};

/// Writes eight identical 16 KB files through a full DisCFS stack
/// (IKE handshake, credentials, NFS over the simulated wire) on the
/// given backend and reports the storage counters.
fn run_workload(backend: &StoreBackend) {
    let bed = Testbed::with_backend(FsConfig::small(), LinkConfig::instant(), 128, backend);
    let bob = SigningKey::from_seed(&[0xB0; 32]);
    let mut client = bed.connect(&bob).expect("connect");
    let grant = CredentialIssuer::new(bed.admin())
        .holder(&bob.public())
        .grant_handle_string("1.1", Perm::RWX)
        .issue();
    client.submit_credential(&grant).expect("grant");

    let payload = vec![0x42u8; 2 * BLOCK_SIZE];
    let root = client.remote().root();
    for i in 0..8 {
        let created = client
            .create_with_credential(&root, &format!("report-{i}.dat"), 0o644)
            .expect("create");
        client
            .client()
            .write_all(&created.fh, 0, &payload)
            .expect("write");
    }

    let stats = bed.store_stats();
    println!(
        "  {:<16} writes {:>4}  dedup hits {:>4}  zero elisions {:>4}  unique blocks {:>4}  hit ratio {:.3}",
        backend.label(),
        stats.writes,
        stats.dedup_hits,
        stats.zero_elisions,
        stats.unique_blocks,
        stats.dedup_hit_ratio()
    );
    bed.fs().check().expect("volume consistent");
    bed.fs().sync().expect("flush backend");
}

fn main() {
    println!("Eight identical 16 KB files through the full DisCFS stack:");
    let dir = std::env::temp_dir().join(format!("discfs-example-store-{}", std::process::id()));
    let backends = [
        StoreBackend::SimInstant,
        StoreBackend::FileJournal {
            dir: dir.join("tour"),
        },
        StoreBackend::Dedup,
        StoreBackend::DedupPersistent {
            dir: dir.join("tour-dedup"),
        },
        StoreBackend::DedupEncrypted { key: [0x0D; 32] },
        StoreBackend::EncryptedJournal {
            dir: dir.join("tour-enc"),
            key: [0x0E; 32],
        },
        // Composable wrappers: a write-back cache, a 4-way stripe, and
        // a cache over a striped persistent volume.
        StoreBackend::Cached {
            capacity: 256,
            inner: Box::new(StoreBackend::SimInstant),
        },
        StoreBackend::Sharded {
            shards: 4,
            workers: false,
            inner: Box::new(StoreBackend::SimInstant),
        },
        StoreBackend::Cached {
            capacity: 256,
            inner: Box::new(StoreBackend::Sharded {
                shards: 4,
                workers: true,
                inner: Box::new(StoreBackend::FileJournal {
                    dir: dir.join("tour-cached-sharded"),
                }),
            }),
        },
    ];
    for backend in &backends {
        run_workload(backend);
    }

    // The buffer cache at work: re-reading a hot working set through
    // the timing-model disk costs virtual time uncached and nothing
    // cached.
    println!("\nBuffer cache vs the timing-model disk (64 blocks re-read 4x):");
    use netsim::SimClock;
    use store::CachedStore;
    let clock = SimClock::new();
    let raw = store::SimStore::new(&clock, store::DiskModel::quantum_fireball_ct10(), 64);
    for i in 0..64 {
        raw.write_block_meta(i, &vec![i as u8; BLOCK_SIZE]);
    }
    clock.reset();
    for _ in 0..4 {
        for i in 0..64 {
            std::hint::black_box(raw.read_block(i));
        }
    }
    println!("  uncached: {:?} of virtual disk time", clock.now());
    let clock = SimClock::new();
    let cached = CachedStore::new(
        store::SimStore::new(&clock, store::DiskModel::quantum_fireball_ct10(), 64),
        64,
    );
    for i in 0..64 {
        cached
            .inner()
            .write_block_meta(i, &vec![i as u8; BLOCK_SIZE]);
    }
    for i in 0..64 {
        std::hint::black_box(cached.read_block(i)); // warm the cache
    }
    clock.reset();
    for _ in 0..4 {
        for i in 0..64 {
            std::hint::black_box(cached.read_block(i));
        }
    }
    let stats = cached.stats();
    println!(
        "  cached:   {:?} — {} hits, {} misses (hit ratio {:.3}) ✓",
        clock.now(),
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_hit_ratio()
    );

    // Crash consistency demo at the block level: journaled writes
    // survive a drop-before-flush.
    println!("\nWrite-ahead journal crash replay:");
    let crash_dir = dir.join("crash-demo");
    let block = vec![0xABu8; BLOCK_SIZE];
    {
        let fstore = FileStore::open(&crash_dir, 16).expect("open");
        fstore.write_block(3, &block);
        println!("  wrote block 3, then crashed without flushing");
        fstore.crash();
    }
    let fstore = FileStore::open(&crash_dir, 16).expect("reopen");
    assert_eq!(fstore.read_block(3), block);
    println!("  reopened: block 3 recovered from the journal ✓");
    drop(fstore);

    // Full persistent-volume reboot cycle: a DisCFS server writes a
    // file through the credential stack, syncs, reboots, and the new
    // instance *mounts* the surviving volume (Ffs::mount) — same
    // files, same file handles, same admin trust root.
    println!("\nServer reboot cycle on a persistent volume:");
    let backend = StoreBackend::FileJournal {
        dir: dir.join("reboot-demo"),
    };
    let bed = Testbed::with_backend(FsConfig::small(), LinkConfig::instant(), 128, &backend);
    let bob = SigningKey::from_seed(&[0xB1; 32]);
    let mut client = bed.connect(&bob).expect("connect");
    let grant = CredentialIssuer::new(bed.admin())
        .holder(&bob.public())
        .grant_handle_string("1.1", Perm::RWX)
        .issue();
    client.submit_credential(&grant).expect("grant");
    let root = client.remote().root();
    let created = client
        .create_with_credential(&root, "persistent.dat", 0o644)
        .expect("create");
    let message = b"survives the reboot";
    client
        .client()
        .write_all(&created.fh, 0, message)
        .expect("write");
    println!("  wrote /persistent.dat, syncing and rebooting the server");
    // reboot() joins the old connection's server thread and syncs
    // before the new instance mounts the volume.
    drop(client);
    let bed = bed.reboot();
    bed.fs().check().expect("mounted volume is consistent");
    let client = bed.connect(&bob).expect("reconnect");
    // The admin key is the same trust root, so a credential for the
    // *pre-reboot* file handle still authorizes access.
    let cred = CredentialIssuer::new(bed.admin())
        .holder(&bob.public())
        .grant(&created.fh, Perm::R)
        .issue();
    client.submit_credential(&cred).expect("grant old handle");
    let data = client
        .client()
        .read_all(&created.fh, 0, message.len())
        .expect("read after reboot");
    assert_eq!(data, message);
    println!("  rebooted: volume mounted, /persistent.dat intact, old handle still valid ✓");

    std::fs::remove_dir_all(&dir).ok();
}
