//! The paper's §2 motivating scenario: Bob the salesman shares advance
//! product literature with designated external clients — no accounts,
//! no administrator intervention, one credential per client batch.
//!
//! ```text
//! cargo run --example sales_clients
//! ```

use discfs::{CredentialIssuer, Perm, Testbed};
use discfs_crypto::ed25519::SigningKey;

fn main() {
    let bed = Testbed::instant();

    // Bob, the salesman, holds the product-literature directory.
    let bob = SigningKey::from_seed(&[0xB0; 32]);
    let bob_grant = CredentialIssuer::new(bed.admin())
        .holder(&bob.public())
        .grant_handle_string("1.1", Perm::RWX)
        .comment("corporate web tree for bob")
        .issue();
    let mut bob_client = bed.connect(&bob).expect("bob attaches");
    bob_client.submit_credential(&bob_grant).unwrap();

    // Bob uploads the restricted literature.
    let root = bob_client.remote().root();
    let dir = bob_client
        .mkdir_with_credential(&root, "advance-info", 0o755)
        .expect("mkdir");
    let mut document_handles = Vec::new();
    for (name, body) in [
        ("roadmap.txt", "Q3: the new widget ships."),
        ("pricing.txt", "Volume tier: $99/unit."),
        ("specs.txt", "Widget v2: 42 gigaflops."),
    ] {
        let created = bob_client
            .create_with_credential(&dir.fh, name, 0o644)
            .expect("create");
        bob_client
            .client()
            .write_all(&created.fh, 0, body.as_bytes())
            .expect("write");
        document_handles.push((name, created));
    }
    println!(
        "Bob uploaded {} documents under advance-info/.",
        document_handles.len()
    );

    // The designated clients: external users with nothing but keypairs.
    let clients: Vec<(&str, SigningKey)> = vec![
        ("acme-corp", SigningKey::from_seed(&[0xC1; 32])),
        ("globex", SigningKey::from_seed(&[0xC2; 32])),
        ("initech", SigningKey::from_seed(&[0xC3; 32])),
    ];

    // ONE credential per client covers the whole document set (plus
    // read+traverse on the directory so ls works). Compare the paper's
    // account-per-client, ACL-per-file alternative.
    for (client_name, client_key) in &clients {
        let mut issuer = CredentialIssuer::new(&bob)
            .holder(&client_key.public())
            .comment(&format!("advance literature for {client_name}"))
            .grant(&dir.fh, Perm::RX);
        for (_, created) in &document_handles {
            issuer = issuer.grant(&created.fh, Perm::R);
        }
        let credential = issuer.issue();

        // The client attaches and presents the chain: admin→bob links
        // come from Bob's create-credentials; bob→client is the new one.
        let client = bed.connect(client_key).expect("client attaches");
        client.submit_credential(&dir.credential).unwrap();
        for (_, created) in &document_handles {
            client.submit_credential(&created.credential).unwrap();
        }
        client.submit_credential(&credential).unwrap();

        // Browse and read.
        let listing = client
            .client()
            .readdir_all(&dir.fh)
            .expect("client lists advance-info");
        let names: Vec<&str> = listing
            .iter()
            .filter(|e| e.name != "." && e.name != "..")
            .map(|e| e.name.as_str())
            .collect();
        let roadmap = client
            .client()
            .read_all(&document_handles[0].1.fh, 0, 100)
            .expect("client reads roadmap");
        println!(
            "{client_name}: sees {names:?}; roadmap says {:?}",
            String::from_utf8_lossy(&roadmap)
        );

        // Clients cannot modify the documents…
        let write_attempt = client
            .client()
            .write(&document_handles[0].1.fh, 0, b"forged");
        assert!(write_attempt.is_err());
        // …and a non-designated competitor sees nothing at all.
    }

    let outsider = SigningKey::from_seed(&[0xEE; 32]);
    let outsider_client = bed.connect(&outsider).expect("outsider attaches");
    let denied = outsider_client.client().readdir_all(&dir.fh);
    println!("Competitor without a credential: {denied:?} (denied)");
}
