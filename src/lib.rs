//! Top-level integration crate for the DisCFS reproduction.
//!
//! The real library surface lives in the workspace crates:
//!
//! * [`discfs`] — the paper's system (core crate),
//! * [`keynote`] — the RFC 2704 trust-management engine,
//! * [`nfsv2`], [`ffs`], [`ipsec`], [`netsim`], [`onc_rpc`] — substrates,
//! * [`cfs`] — the CFS / CFS-NE baseline,
//! * [`bonnie`] — the evaluation workloads.
//!
//! This crate hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). See README.md for the
//! quickstart and DESIGN.md for the system inventory.

#![forbid(unsafe_code)]

pub use bonnie;
pub use cfs;
pub use discfs;
pub use discfs_crypto;
pub use ffs;
pub use ipsec;
pub use keynote;
pub use netsim;
pub use nfsv2;
pub use onc_rpc;
